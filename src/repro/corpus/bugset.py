"""The "public Go concurrency bug set" for the coverage study (§5.2).

The paper evaluates GCatch's coverage on 49 BMOC bugs from the bug set
released with the Tu et al. ASPLOS'19 study, finding 33 detectable (67%).
This module synthesizes a 49-bug set with the same composition: 33 bugs in
shapes GCatch detects, and 16 in the four shapes the paper says it misses:

* 2  — the channel operation sits in a critical section whose lock lives in
       a *caller* of the LCA function, outside the analysis scope;
* 3  — the blocked goroutine waits for a *particular value*, which needs
       dynamic information;
* 9  — the bug is caused by primitives/libraries GCatch does not model
       (WaitGroup, Cond, time);
* 2  — a nil channel is assigned and then used, which needs data-flow
       analysis GCatch does not perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.corpus import templates as T

MISS_LCA = "critical-section-above-lca"
MISS_DYNAMIC = "needs-dynamic-value"
MISS_UNMODELED = "unmodeled-primitive"
MISS_NIL = "nil-channel-dataflow"


@dataclass
class BugCase:
    """One bug of the public set, as a standalone MiniGo program."""

    case_id: str
    source: str
    detectable: bool
    miss_reason: Optional[str] = None
    driver: Optional[str] = None


def _wrap(code: str) -> str:
    return "package main\n" + code


# ---------------------------------------------------------------------------
# the four miss shapes


def miss_lca_critical(uid: str) -> BugCase:
    code = f"""
type guard{uid} struct {{
	mu sync.Mutex
}}

func (g *guard{uid}) locked{uid}() {{
	g.mu.Lock()
	notify{uid}(g)
	g.mu.Unlock()
}}

func notify{uid}(g *guard{uid}) {{
	ch{uid} := make(chan int)
	go func() {{
		g.mu.Lock()
		ch{uid} <- 1
		g.mu.Unlock()
	}}()
	<-ch{uid}
}}

func drive{uid}() {{
	g{uid} := guard{uid}{{}}
	g{uid}.locked{uid}()
}}
"""
    return BugCase(
        case_id=uid,
        source=_wrap(code),
        detectable=False,
        miss_reason=MISS_LCA,
        driver=f"drive{uid}",
    )


def miss_dynamic_value(uid: str) -> BugCase:
    code = f"""
func waitReady{uid}() {{
	st{uid} := make(chan int, 2)
	st{uid} <- 1
	st{uid} <- 1
	for {{
		v := <-st{uid}
		st{uid} <- v
		if v == 2 {{
			return
		}}
	}}
}}

func drive{uid}() {{
	waitReady{uid}()
}}
"""
    return BugCase(
        case_id=uid,
        source=_wrap(code),
        detectable=False,
        miss_reason=MISS_DYNAMIC,
        driver=f"drive{uid}",
    )


def miss_waitgroup_add(uid: str) -> BugCase:
    code = f"""
func task{uid}() int {{
	return 1
}}

func gatherAll{uid}() {{
	var wg{uid} sync.WaitGroup
	wg{uid}.Add(2)
	go func() {{
		task{uid}()
		wg{uid}.Done()
	}}()
	wg{uid}.Wait()
}}

func drive{uid}() {{
	gatherAll{uid}()
}}
"""
    return BugCase(
        case_id=uid,
        source=_wrap(code),
        detectable=False,
        miss_reason=MISS_UNMODELED,
        driver=f"drive{uid}",
    )


def miss_waitgroup_branch(uid: str) -> BugCase:
    code = f"""
func fanIn{uid}(fail bool) {{
	var wg{uid} sync.WaitGroup
	wg{uid}.Add(1)
	go func() {{
		if fail {{
			return
		}}
		wg{uid}.Done()
	}}()
	wg{uid}.Wait()
}}

func drive{uid}() {{
	fanIn{uid}(true)
}}
"""
    return BugCase(
        case_id=uid,
        source=_wrap(code),
        detectable=False,
        miss_reason=MISS_UNMODELED,
        driver=f"drive{uid}",
    )


def miss_nil_channel(uid: str) -> BugCase:
    code = f"""
func nilSend{uid}() {{
	var ch{uid} chan int
	go func() {{
		ch{uid} <- 1
	}}()
	println("started")
}}

func drive{uid}() {{
	nilSend{uid}()
}}
"""
    return BugCase(
        case_id=uid,
        source=_wrap(code),
        detectable=False,
        miss_reason=MISS_NIL,
        driver=f"drive{uid}",
    )


# ---------------------------------------------------------------------------
# assembly


def build_bug_set() -> List[BugCase]:
    """The 49-bug coverage set: 33 detectable + 16 missed."""
    cases: List[BugCase] = []

    detectable_templates = (
        [T.bmocc_s1_ctx] * 14
        + [T.bmocc_s1_race] * 5
        + [T.bmocc_s2_fatal] * 4
        + [T.bmocc_s3_loop] * 5
        + [T.bmocc_unfix_parent] * 2
        + [T.bmocc_unfix_complex] * 1
        + [T.bmocc_unfix_recvused] * 1
        + [T.bmocm_real] * 1
    )
    for i, template in enumerate(detectable_templates):
        instance = template(f"Set{i:02d}")
        cases.append(
            BugCase(
                case_id=f"Set{i:02d}",
                source=_wrap(instance.code),
                detectable=True,
                driver=instance.driver,
            )
        )

    missed = (
        [miss_lca_critical] * 2
        + [miss_dynamic_value] * 3
        + [miss_waitgroup_add] * 5
        + [miss_waitgroup_branch] * 4
        + [miss_nil_channel] * 2
    )
    for i, factory in enumerate(missed):
        cases.append(factory(f"Miss{i:02d}"))

    assert len(cases) == 49
    assert sum(1 for c in cases if c.detectable) == 33
    return cases
