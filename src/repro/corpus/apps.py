"""Assembly of the 21 synthetic evaluation applications.

Each application is one MiniGo source file seeded with exactly the bug and
false-positive populations of its Table 1 row (see
:mod:`repro.corpus.specs`), padded with benign background code proportional
to the real application's size. False-positive causes are distributed
globally to match §5.2's breakdown: 20 infeasible-path (9 unsatisfiable
conditions + 11 loop-unroll), 17 alias (15 channel-through-channel + 2
slice-stored), 14 call-graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from repro.corpus.specs import TABLE1, AppSpec
from repro.corpus import templates as T
from repro.ssa import ir
from repro.ssa.builder import build_program


@dataclass
class CorpusApp:
    """One synthetic application: source, seeded instances, and its spec."""

    name: str
    spec: AppSpec
    source: str
    instances: List[T.TemplateInstance] = field(default_factory=list)
    _program: Optional[ir.Program] = None

    def program(self) -> ir.Program:
        if self._program is None:
            self._program = build_program(self.source, f"{self.name}.go")
        return self._program

    def instances_of(self, category: str, real: bool) -> List[T.TemplateInstance]:
        return [i for i in self.instances if i.category == category and i.real == real]

    def instance_for_function(self, function: str) -> Optional[T.TemplateInstance]:
        """Locate the seeded instance whose code contains ``function``."""
        best = None
        for instance in self.instances:
            if instance.marker and instance.marker in function:
                if best is None or len(instance.marker) > len(best.marker):
                    best = instance
        return best

    def loc(self) -> int:
        return len(self.source.split("\n"))


def _sanitize(name: str) -> str:
    return "".join(ch for ch in name if ch.isalnum())


class _FpFeed:
    """Deterministic, globally balanced feed of FP template constructors.

    The per-cause totals match the paper exactly; a greedy balancer spreads
    the causes across the applications in Table 1 order.
    """

    def __init__(self):
        self._pool: List[Tuple[Callable[[str], T.TemplateInstance], int]] = [
            (T.fp_nonreadonly, 4),
            (T.fp_loop_unroll, 11),
            (T.fp_chan_through_chan, 15),
            (T.fp_slice_store, 2),
            (T.fp_interface, 14),
        ]
        self._remaining = {fn.__name__: count for fn, count in self._pool}

    def take(self) -> Callable[[str], T.TemplateInstance]:
        best = max(self._pool, key=lambda entry: self._remaining[entry[0].__name__])
        name = best[0].__name__
        if self._remaining[name] <= 0:
            raise RuntimeError("FP feed exhausted")
        self._remaining[name] -= 1
        return best[0]


def build_app(spec: AppSpec, fp_feed: _FpFeed) -> CorpusApp:
    abbrev = _sanitize(spec.name)
    counter = [0]

    def uid() -> str:
        counter[0] += 1
        return f"{abbrev}{counter[0]}"

    instances: List[T.TemplateInstance] = []

    # real BMOC-channel bugs: fixable per strategy, then unfixable by reason
    for strategy, count in (("buffer", spec.fix_s1), ("defer", spec.fix_s2), ("stop", spec.fix_s3)):
        variants = T.REAL_BMOCC_BY_STRATEGY[strategy]
        for i in range(count):
            instances.append(variants[i % len(variants)](uid()))
    for reason, count in spec.unfixable:
        for _ in range(count):
            instances.append(T.UNFIXABLE_BY_REASON[reason](uid()))

    # real BMOC channel+mutex bugs
    for _ in range(spec.bmoc_m.real):
        instances.append(T.bmocm_real(uid()))

    # BMOC false positives
    for _ in range(spec.bmoc_c.fp):
        instances.append(fp_feed.take()(uid()))
    for _ in range(spec.bmoc_m.fp):
        instances.append(T.fp_bmocm(uid()))

    # traditional bugs and their FPs
    traditional = [
        ("forget_unlock", T.FORGET_UNLOCK),
        ("double_lock", T.DOUBLE_LOCK),
        ("conflict_lock", T.CONFLICT_LOCK),
        ("struct_field", T.STRUCT_RACE),
    ]
    for attr, category in traditional:
        cell = getattr(spec, attr)
        for _ in range(cell.real):
            instances.append(T.TRADITIONAL_REAL[category](uid()))
        for _ in range(cell.fp):
            instances.append(T.TRADITIONAL_FP[category](uid()))
    for _ in range(spec.fatal.real):
        instances.append(T.TRADITIONAL_REAL[T.FATAL](uid()))

    # benign background, proportional to the real application's size
    for _ in range(spec.size_weight):
        for benign in T.BENIGN_TEMPLATES:
            instances.append(benign(uid()))

    source = _assemble(spec.name, instances)
    return CorpusApp(name=spec.name, spec=spec, source=source, instances=instances)


def _assemble(name: str, instances: List[T.TemplateInstance]) -> str:
    parts = [f"// synthetic corpus application: {name}", "package main", ""]
    for instance in instances:
        parts.append(instance.code.strip("\n"))
        parts.append("")
    # main() exercises every non-test driver so the whole-program ablation
    # (disentangle=False) has an entry point reaching all the code
    calls = [
        f"\t{instance.driver}()"
        for instance in instances
        if instance.driver and not instance.driver.startswith("Test")
    ]
    parts.append("func main() {")
    parts.extend(calls)
    parts.append("}")
    return "\n".join(parts) + "\n"


@lru_cache(maxsize=1)
def build_corpus() -> Tuple[CorpusApp, ...]:
    """All 21 applications, in Table 1 order."""
    feed = _FpFeed()
    return tuple(build_app(spec, feed) for spec in TABLE1)


def corpus_app(name: str) -> CorpusApp:
    for app in build_corpus():
        if app.name == name:
            return app
    raise KeyError(name)
