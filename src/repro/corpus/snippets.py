"""The paper's figure examples as MiniGo programs.

Figure 1 (Docker ``Exec``), Figure 3 (etcd ``TestRWDialer``) and Figure 4
(Go-Ethereum ``Interactive``) in directly analyzable, runnable form. Each
snippet records the expected detection and fix outcome so tests and
examples can assert against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Snippet:
    name: str
    figure: str
    source: str
    buggy_line_marker: str  # source text on the line that blocks forever
    expected_strategy: str
    entry: str  # function to run for dynamic validation
    description: str


FIGURE1 = Snippet(
    name="docker_exec",
    figure="Figure 1",
    description=(
        "Docker's Exec(): the child sends its error on an unbuffered channel; "
        "if the parent takes the ctx.Done() case, the child blocks forever. "
        "GFix bumps the buffer size to one."
    ),
    buggy_line_marker="outDone <- err",
    expected_strategy="buffer",
    entry="Exec",
    source="""package main

func StdCopy() int {
	return 0
}

func Exec(ctx context.Context) int {
	outDone := make(chan int)
	go func() {
		err := StdCopy()
		outDone <- err
	}()
	select {
	case err := <-outDone:
		if err != 0 {
			return err
		}
	case <-ctx.Done():
		return 1
	}
	return 0
}

func main() {
	ctx, cancel := context.WithCancel()
	cancel()
	r := Exec(ctx)
	println("exec result", r)
}
""",
)


FIGURE3 = Snippet(
    name="etcd_dialer",
    figure="Figure 3",
    description=(
        "etcd's TestRWDialer(): t.Fatalf() exits the test before the stop "
        "send executes, leaving the child blocked. GFix defers the send."
    ),
    buggy_line_marker="<-stop",
    expected_strategy="defer",
    entry="TestRWDialer",
    source="""package main

func Dial() (int, int) {
	e := 0
	flip := make(chan struct{}, 1)
	go func() {
		e = 1
		flip <- struct{}{}
	}()
	select {
	case <-flip:
	default:
	}
	return 0, e
}

func Start(stop chan struct{}) {
	<-stop
}

func TestRWDialer(t *testing.T) {
	stop := make(chan struct{})
	go Start(stop)
	conn, err := Dial()
	if err != 0 {
		t.Fatalf("dial failed")
	}
	println("dialed", conn)
	stop <- struct{}{}
}
""",
)


FIGURE4 = Snippet(
    name="ethereum_interactive",
    figure="Figure 4",
    description=(
        "Go-Ethereum's Interactive(): the child keeps sending lines in a "
        "loop; once the parent returns via abort, the child blocks at the "
        "next send. GFix adds a stop channel closed via defer."
    ),
    buggy_line_marker="scheduler <- line",
    expected_strategy="stop",
    entry="Interactive",
    source="""package main

func Input() (string, int) {
	return "line", 0
}

func Interactive(abort chan struct{}) {
	scheduler := make(chan string)
	go func() {
		for {
			line, err := Input()
			if err != 0 {
				close(scheduler)
				return
			}
			scheduler <- line
		}
	}()
	for {
		select {
		case <-abort:
			return
		case _, ok := <-scheduler:
			if !ok {
				return
			}
		}
	}
}

func main() {
	abort := make(chan struct{})
	close(abort)
	Interactive(abort)
}
""",
)


ALL_SNIPPETS = (FIGURE1, FIGURE3, FIGURE4)


def snippet(name: str) -> Snippet:
    for candidate in ALL_SNIPPETS:
        if candidate.name == name:
            return candidate
    raise KeyError(name)
