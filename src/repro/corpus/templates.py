"""Parameterized MiniGo code templates for the synthetic corpus.

Every template instantiates one seeded behaviour with a unique identifier
woven into all its names, so instances never interfere through the call
graph, alias analysis, or CHA method resolution:

* real BMOC bugs in the shapes the paper describes — single-sending
  (Figure 1), missing-interaction (Figure 3), multiple-operations
  (Figure 4), the four GFix-unfixable shapes, and channel+mutex deadlocks;
* false-positive inducers reproducing GCatch's documented FP causes —
  non-read-only branch conditions, loop-unroll miscounts,
  channels-through-channels, slice-stored channels, and interface-callee
  ambiguity;
* the five traditional bug categories and their FP shapes;
* benign background code that must produce no reports.

Each instance records what the detector/fixer are expected to do with it,
so the Table 1 harness and the test suite can verify seeded-vs-detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

# categories use the BugReport category slugs
BMOC_CHAN = "bmoc-chan"
BMOC_MUTEX = "bmoc-mutex"
FORGET_UNLOCK = "forget-unlock"
DOUBLE_LOCK = "double-lock"
CONFLICT_LOCK = "conflict-lock"
STRUCT_RACE = "struct-race"
FATAL = "fatal-goroutine"

# FP causes (§5.2 breakdown)
CAUSE_INFEASIBLE = "infeasible-path"
CAUSE_ALIAS = "alias-analysis"
CAUSE_CALLGRAPH = "call-graph"


@dataclass
class TemplateInstance:
    """One instantiated template plus the behaviour it seeds."""

    uid: str
    code: str
    category: str
    real: bool
    template: str
    fix_strategy: Optional[str] = None  # 'buffer' | 'defer' | 'stop' | None
    unfix_reason: Optional[str] = None
    fp_cause: Optional[str] = None
    driver: Optional[str] = None  # entry function for dynamic validation
    marker: str = ""  # substring identifying this instance's functions

    def __post_init__(self):
        if not self.marker:
            self.marker = self.uid


# ---------------------------------------------------------------------------
# real BMOC-channel bugs


def bmocc_s1_ctx(uid: str) -> TemplateInstance:
    """Figure 1: single-sending bug, parent may take the ctx.Done() case."""
    code = f"""
func copyStream{uid}() int {{
	return 0
}}

func execAttach{uid}(ctx context.Context) int {{
	outDone{uid} := make(chan int)
	go func() {{
		err := copyStream{uid}()
		outDone{uid} <- err
	}}()
	select {{
	case err := <-outDone{uid}:
		if err != 0 {{
			return err
		}}
	case <-ctx.Done():
		return 1
	}}
	return 0
}}

func driveExec{uid}() {{
	ctx{uid}, cancel{uid} := context.WithCancel()
	cancel{uid}()
	execAttach{uid}(ctx{uid})
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_s1_ctx",
        fix_strategy="buffer",
        driver=f"driveExec{uid}",
    )


def bmocc_s1_race(uid: str) -> TemplateInstance:
    """Single-sending bug: result loses a select race against a quit signal."""
    code = f"""
func loadData{uid}() int {{
	return 7
}}

func fetchPage{uid}() int {{
	result{uid} := make(chan int)
	quit{uid} := make(chan struct{{}})
	go func() {{
		data := loadData{uid}()
		result{uid} <- data
	}}()
	go func() {{
		close(quit{uid})
	}}()
	select {{
	case v := <-result{uid}:
		return v
	case <-quit{uid}:
		return 0
	}}
}}

func driveFetch{uid}() {{
	fetchPage{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_s1_race",
        fix_strategy="buffer",
        driver=f"driveFetch{uid}",
    )


def bmocc_s2_fatal(uid: str) -> TemplateInstance:
    """Figure 3: missing-interaction; t.Fatalf skips the unblocking send.

    ``dialPeer`` fails nondeterministically (a racing goroutine flips the
    error flag), so the bug actually triggers on some schedules.
    """
    code = f"""
func dialPeer{uid}() (int, int) {{
	e{uid} := 0
	ready{uid} := make(chan struct{{}}, 1)
	go func() {{
		e{uid} = 1
		ready{uid} <- struct{{}}{{}}
	}}()
	select {{
	case <-ready{uid}:
	default:
	}}
	return 0, e{uid}
}}

func waitStop{uid}(stop chan struct{{}}) {{
	<-stop
}}

func TestDialer{uid}(t *testing.T) {{
	stop{uid} := make(chan struct{{}})
	go waitStop{uid}(stop{uid})
	conn, err := dialPeer{uid}()
	if err != 0 {{
		t.Fatalf("dial failed")
	}}
	println("conn", conn)
	stop{uid} <- struct{{}}{{}}
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_s2_fatal",
        fix_strategy="defer",
        driver=f"TestDialer{uid}",
    )


def bmocc_s2_panic(uid: str) -> TemplateInstance:
    """Missing-interaction via panic: a bad config aborts the parent before
    the unblocking send (the paper's other Strategy-II trigger)."""
    code = f"""
func waitFin{uid}(fin chan struct{{}}) {{
	<-fin
}}

func loadAll{uid}(bad bool) {{
	fin{uid} := make(chan struct{{}})
	go waitFin{uid}(fin{uid})
	if bad {{
		panic("bad config")
	}}
	fin{uid} <- struct{{}}{{}}
}}

func driveLoad{uid}() {{
	bad{uid} := 0
	flip{uid} := make(chan struct{{}}, 1)
	go func() {{
		bad{uid} = 1
		flip{uid} <- struct{{}}{{}}
	}}()
	select {{
	case <-flip{uid}:
	default:
	}}
	loadAll{uid}(bad{uid} == 1)
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_s2_panic",
        fix_strategy="defer",
        driver=f"driveLoad{uid}",
    )


def bmocc_s3_pump(uid: str) -> TemplateInstance:
    """Multiple-operations variant: a counted producer loop left behind when
    the consumer quits early."""
    code = f"""
func pump{uid}(quit chan struct{{}}) {{
	feed{uid} := make(chan int)
	go func() {{
		for i{uid} := 0; i{uid} < 8; i{uid}++ {{
			feed{uid} <- i{uid}
		}}
		close(feed{uid})
	}}()
	for {{
		select {{
		case <-quit:
			return
		case v, ok := <-feed{uid}:
			if !ok {{
				return
			}}
			println("v", v)
		}}
	}}
}}

func drivePump{uid}() {{
	quit{uid} := make(chan struct{{}})
	close(quit{uid})
	pump{uid}(quit{uid})
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_s3_pump",
        fix_strategy="stop",
        driver=f"drivePump{uid}",
    )


def bmocc_s3_loop(uid: str) -> TemplateInstance:
    """Figure 4: multiple-operations; child keeps sending after parent left."""
    code = f"""
func readLine{uid}() (string, int) {{
	return "line", 0
}}

func interactive{uid}(abort chan struct{{}}) {{
	sched{uid} := make(chan string)
	go func() {{
		for {{
			line, err := readLine{uid}()
			if err != 0 {{
				close(sched{uid})
				return
			}}
			sched{uid} <- line
		}}
	}}()
	for {{
		select {{
		case <-abort:
			return
		case _, ok := <-sched{uid}:
			if !ok {{
				return
			}}
		}}
	}}
}}

func driveLoop{uid}() {{
	abort{uid} := make(chan struct{{}})
	close(abort{uid})
	interactive{uid}(abort{uid})
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_s3_loop",
        fix_strategy="stop",
        driver=f"driveLoop{uid}",
    )


def bmocc_unfix_parent(uid: str) -> TemplateInstance:
    """Real bug where the *parent* blocks: the child may skip its send."""
    code = f"""
func waitSignal{uid}() {{
	sig{uid} := make(chan int)
	go func() {{
		select {{
		case sig{uid} <- 1:
		default:
		}}
	}}()
	<-sig{uid}
}}

func driveSignal{uid}() {{
	waitSignal{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_unfix_parent",
        unfix_reason="parent-blocked",
        driver=f"driveSignal{uid}",
    )


def bmocc_unfix_side(uid: str) -> TemplateInstance:
    """Single-sending shape, but the child has side effects after o2."""
    code = f"""
func computeSum{uid}() int {{
	return 3
}}

func collect{uid}(ctx context.Context) int {{
	out{uid} := make(chan int)
	flag{uid} := 0
	go func() {{
		v := computeSum{uid}()
		out{uid} <- v
		flag{uid} = 1
	}}()
	select {{
	case v := <-out{uid}:
		return v + flag{uid}
	case <-ctx.Done():
		return 0
	}}
}}

func driveCollect{uid}() {{
	ctx{uid}, cancel{uid} := context.WithCancel()
	cancel{uid}()
	collect{uid}(ctx{uid})
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_unfix_side",
        unfix_reason="side-effects",
        driver=f"driveCollect{uid}",
    )


def bmocc_unfix_complex(uid: str) -> TemplateInstance:
    """Real bug involving more than two goroutines: two racing senders."""
    code = f"""
func firstSrc{uid}() int {{
	return 1
}}

func secondSrc{uid}() int {{
	return 2
}}

func race2{uid}(ctx context.Context) int {{
	res{uid} := make(chan int)
	go func() {{
		res{uid} <- firstSrc{uid}()
	}}()
	go func() {{
		res{uid} <- secondSrc{uid}()
	}}()
	select {{
	case v := <-res{uid}:
		return v
	case <-ctx.Done():
		return 0
	}}
}}

func driveRace{uid}() {{
	ctx{uid}, cancel{uid} := context.WithCancel()
	cancel{uid}()
	race2{uid}(ctx{uid})
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_unfix_complex",
        unfix_reason="complex-goroutines",
        driver=f"driveRace{uid}",
    )


def bmocc_unfix_recvused(uid: str) -> TemplateInstance:
    """Unknown buffer size + o1 is a receive whose value is used."""
    code = f"""
func batchSize{uid}() int {{
	return 0
}}

func produceItem{uid}() int {{
	return 5
}}

func pipeline{uid}() int {{
	n{uid} := batchSize{uid}()
	data{uid} := make(chan int, n{uid})
	go func() {{
		data{uid} <- produceItem{uid}()
	}}()
	if n{uid} > 0 {{
		v := <-data{uid}
		return v
	}}
	return 0
}}

func drivePipe{uid}() {{
	pipeline{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=True,
        template="bmocc_unfix_recvused",
        unfix_reason="recv-value-used",
        driver=f"drivePipe{uid}",
    )


def bmocm_real(uid: str) -> TemplateInstance:
    """Channel + mutex circular wait (a BMOC_M bug)."""
    code = f"""
func syncPair{uid}() {{
	var mu{uid} sync.Mutex
	ch{uid} := make(chan int)
	go func() {{
		mu{uid}.Lock()
		ch{uid} <- 1
		mu{uid}.Unlock()
	}}()
	mu{uid}.Lock()
	<-ch{uid}
	mu{uid}.Unlock()
}}

func drivePair{uid}() {{
	syncPair{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_MUTEX,
        real=True,
        template="bmocm_real",
        driver=f"drivePair{uid}",
    )


# ---------------------------------------------------------------------------
# BMOC false positives


def fp_nonreadonly(uid: str) -> TemplateInstance:
    """Infeasible path over a mutable flag GCatch cannot prune."""
    code = f"""
func offSwitch{uid}() int {{
	return 0
}}

func guarded{uid}() {{
	ready{uid} := true
	if offSwitch{uid}() != 0 {{
		ready{uid} = false
	}}
	ch{uid} := make(chan int)
	go func() {{
		<-ch{uid}
	}}()
	if ready{uid} {{
		ch{uid} <- 1
	}}
}}

func driveGuard{uid}() {{
	guarded{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=False,
        template="fp_nonreadonly",
        fp_cause=CAUSE_INFEASIBLE,
        driver=f"driveGuard{uid}",
    )


def fp_loop_unroll(uid: str) -> TemplateInstance:
    """Matched producer/consumer loops; bounded unrolling miscounts them."""
    code = f"""
func itemCount{uid}() int {{
	return 0
}}

func batchRun{uid}() {{
	n{uid} := itemCount{uid}()
	ch{uid} := make(chan int)
	go func() {{
		for i{uid} := 0; i{uid} < n{uid}; i{uid}++ {{
			ch{uid} <- i{uid}
		}}
	}}()
	for j{uid} := 0; j{uid} < n{uid}; j{uid}++ {{
		<-ch{uid}
	}}
}}

func driveBatch{uid}() {{
	batchRun{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=False,
        template="fp_loop_unroll",
        fp_cause=CAUSE_INFEASIBLE,
        driver=f"driveBatch{uid}",
    )


def fp_chan_through_chan(uid: str) -> TemplateInstance:
    """A channel passed through another channel; aliasing loses the link."""
    code = f"""
func relay{uid}() {{
	inner{uid} := make(chan int)
	carrier{uid} := make(chan chan int, 1)
	go func() {{
		c{uid} := <-carrier{uid}
		c{uid} <- 1
	}}()
	carrier{uid} <- inner{uid}
	<-inner{uid}
}}

func driveRelay{uid}() {{
	relay{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=False,
        template="fp_chan_through_chan",
        fp_cause=CAUSE_ALIAS,
        driver=f"driveRelay{uid}",
    )


def fp_slice_store(uid: str) -> TemplateInstance:
    """A channel stored in a slice; loads are not unified with the store."""
    code = f"""
func poolStart{uid}() {{
	ch{uid} := make(chan int)
	slots{uid} := make([]chan int, 1)
	slots{uid}[0] = ch{uid}
	go func() {{
		c{uid} := slots{uid}[0]
		c{uid} <- 9
	}}()
	<-ch{uid}
}}

func drivePool{uid}() {{
	poolStart{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=False,
        template="fp_slice_store",
        fp_cause=CAUSE_ALIAS,
        driver=f"drivePool{uid}",
    )


def fp_interface(uid: str) -> TemplateInstance:
    """The unblocking send hides behind an ambiguous interface method."""
    code = f"""
type alphaN{uid} struct {{
	pad int
}}

func (a *alphaN{uid}) Notify{uid}(ch chan int) {{
	ch <- 1
}}

type betaN{uid} struct {{
	pad int
}}

func (b *betaN{uid}) Notify{uid}(ch chan int) {{
	ch <- 2
}}

func dispatch{uid}(w interface{{}}) {{
	ch{uid} := make(chan int)
	go func() {{
		w.Notify{uid}(ch{uid})
	}}()
	<-ch{uid}
}}

func driveDispatch{uid}() {{
	a{uid} := alphaN{uid}{{}}
	dispatch{uid}(a{uid})
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_CHAN,
        real=False,
        template="fp_interface",
        fp_cause=CAUSE_CALLGRAPH,
        driver=f"driveDispatch{uid}",
    )


def fp_bmocm(uid: str) -> TemplateInstance:
    """Mutex-involving false positive behind a mutable guard flag."""
    code = f"""
func darkMode{uid}() int {{
	return 0
}}

func guardedLock{uid}() {{
	var mu{uid} sync.Mutex
	ch{uid} := make(chan int)
	live{uid} := true
	if darkMode{uid}() != 0 {{
		live{uid} = false
	}}
	go func() {{
		mu{uid}.Lock()
		<-ch{uid}
		mu{uid}.Unlock()
	}}()
	if live{uid} {{
		ch{uid} <- 1
	}}
	mu{uid}.Lock()
	mu{uid}.Unlock()
}}

func driveGLock{uid}() {{
	guardedLock{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=BMOC_MUTEX,
        real=False,
        template="fp_bmocm",
        fp_cause=CAUSE_INFEASIBLE,
        driver=f"driveGLock{uid}",
    )


# ---------------------------------------------------------------------------
# traditional bugs


def forget_unlock_real(uid: str) -> TemplateInstance:
    code = f"""
func flushCache{uid}(dirty bool) {{
	var mu{uid} sync.Mutex
	mu{uid}.Lock()
	if dirty {{
		return
	}}
	mu{uid}.Unlock()
}}

func driveFlush{uid}() {{
	flushCache{uid}(false)
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=FORGET_UNLOCK,
        real=True,
        template="forget_unlock_real",
        driver=f"driveFlush{uid}",
    )


def double_lock_real(uid: str) -> TemplateInstance:
    code = f"""
type registry{uid} struct {{
	mu sync.Mutex
	n int
}}

func (r *registry{uid}) size{uid}() int {{
	r.mu.Lock()
	n := r.n
	r.mu.Unlock()
	return n
}}

func (r *registry{uid}) report{uid}() int {{
	r.mu.Lock()
	n := r.size{uid}()
	r.mu.Unlock()
	return n
}}

func driveRegistry{uid}() {{
	r{uid} := registry{uid}{{}}
	r{uid}.size{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=DOUBLE_LOCK,
        real=True,
        template="double_lock_real",
        driver=f"driveRegistry{uid}",
    )


def conflict_lock_real(uid: str) -> TemplateInstance:
    code = f"""
type shard{uid} struct {{
	muA sync.Mutex
	muB sync.Mutex
	hits int
}}

func (s *shard{uid}) readPath{uid}() {{
	s.muA.Lock()
	s.muB.Lock()
	s.hits = s.hits + 1
	s.muB.Unlock()
	s.muA.Unlock()
}}

func (s *shard{uid}) writePath{uid}() {{
	s.muB.Lock()
	s.muA.Lock()
	s.hits = s.hits + 2
	s.muA.Unlock()
	s.muB.Unlock()
}}

func driveShard{uid}() {{
	s{uid} := shard{uid}{{}}
	s{uid}.readPath{uid}()
	s{uid}.writePath{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=CONFLICT_LOCK,
        real=True,
        template="conflict_lock_real",
        driver=f"driveShard{uid}",
    )


def struct_race_real(uid: str) -> TemplateInstance:
    code = f"""
type ledger{uid} struct {{
	mu sync.Mutex
	total int
}}

func (l *ledger{uid}) add{uid}(v int) {{
	l.mu.Lock()
	l.total = l.total + v
	l.mu.Unlock()
}}

func (l *ledger{uid}) read{uid}() int {{
	l.mu.Lock()
	v := l.total
	l.mu.Unlock()
	return v
}}

func (l *ledger{uid}) resetRacy{uid}() {{
	l.total = 0
}}

func driveLedger{uid}() {{
	l{uid} := ledger{uid}{{}}
	l{uid}.add{uid}(4)
	l{uid}.read{uid}()
	l{uid}.resetRacy{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=STRUCT_RACE,
        real=True,
        template="struct_race_real",
        driver=f"driveLedger{uid}",
    )


def fatal_real(uid: str) -> TemplateInstance:
    code = f"""
func probe{uid}() int {{
	return 1
}}

func TestProbe{uid}(t *testing.T) {{
	var wg{uid} sync.WaitGroup
	wg{uid}.Add(1)
	go func() {{
		ok := probe{uid}()
		if ok == 0 {{
			t.Fatalf("probe failed")
		}}
		wg{uid}.Done()
	}}()
	wg{uid}.Wait()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=FATAL,
        real=True,
        template="fatal_real",
        driver=f"TestProbe{uid}",
    )


# ---------------------------------------------------------------------------
# traditional false positives


def forget_unlock_fp(uid: str) -> TemplateInstance:
    """Semantic FP: lock and unlock live in wrapper methods."""
    code = f"""
type session{uid} struct {{
	mu sync.Mutex
	open int
}}

func (s *session{uid}) begin{uid}() {{
	s.mu.Lock()
}}

func (s *session{uid}) end{uid}() {{
	s.mu.Unlock()
}}

func transact{uid}() {{
	s{uid} := session{uid}{{}}
	s{uid}.begin{uid}()
	s{uid}.end{uid}()
}}

func driveSession{uid}() {{
	transact{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=FORGET_UNLOCK,
        real=False,
        template="forget_unlock_fp",
        driver=f"driveSession{uid}",
    )


def double_lock_fp(uid: str) -> TemplateInstance:
    """Infeasible-path FP: the re-lock only happens after the unlock."""
    code = f"""
func rescan{uid}(mode int) {{
	var mu{uid} sync.Mutex
	mu{uid}.Lock()
	defer mu{uid}.Unlock()
	if mode == 0 {{
		mu{uid}.Unlock()
	}}
	if mode == 0 {{
		mu{uid}.Lock()
	}}
}}

func driveRescan{uid}() {{
	rescan{uid}(1)
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=DOUBLE_LOCK,
        real=False,
        template="double_lock_fp",
        driver=f"driveRescan{uid}",
    )


def conflict_lock_fp(uid: str) -> TemplateInstance:
    """FP: conflicting orders guarded by exclusive conditions, sequential."""
    code = f"""
func rebalance{uid}(asc bool) {{
	var a{uid} sync.Mutex
	var b{uid} sync.Mutex
	if asc {{
		a{uid}.Lock()
		b{uid}.Lock()
		b{uid}.Unlock()
		a{uid}.Unlock()
	}}
	if !asc {{
		b{uid}.Lock()
		a{uid}.Lock()
		a{uid}.Unlock()
		b{uid}.Unlock()
	}}
}}

func driveRebalance{uid}() {{
	rebalance{uid}(true)
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=CONFLICT_LOCK,
        real=False,
        template="conflict_lock_fp",
        driver=f"driveRebalance{uid}",
    )


def struct_race_fp(uid: str) -> TemplateInstance:
    """Calling-context FP: the 'unprotected' setter only runs under lock."""
    code = f"""
type counter{uid} struct {{
	mu sync.Mutex
	val int
}}

func (c *counter{uid}) set{uid}(v int) {{
	c.val = v
}}

func (c *counter{uid}) bump{uid}() {{
	c.mu.Lock()
	c.val = c.val + 1
	c.mu.Unlock()
}}

func (c *counter{uid}) snap{uid}() int {{
	c.mu.Lock()
	v := c.val
	c.mu.Unlock()
	return v
}}

func (c *counter{uid}) assign{uid}() {{
	c.mu.Lock()
	c.set{uid}(9)
	c.mu.Unlock()
}}

func driveCounter{uid}() {{
	c{uid} := counter{uid}{{}}
	c{uid}.bump{uid}()
	c{uid}.snap{uid}()
	c{uid}.assign{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category=STRUCT_RACE,
        real=False,
        template="struct_race_fp",
        driver=f"driveCounter{uid}",
    )


# ---------------------------------------------------------------------------
# benign background code


def benign_worker_pool(uid: str) -> TemplateInstance:
    code = f"""
func poolWork{uid}(v int) int {{
	return v * 2
}}

func runPool{uid}() int {{
	var wg{uid} sync.WaitGroup
	var mu{uid} sync.Mutex
	total{uid} := 0
	for i{uid} := 0; i{uid} < 3; i{uid}++ {{
		wg{uid}.Add(1)
		go func() {{
			v := poolWork{uid}(2)
			mu{uid}.Lock()
			total{uid} = total{uid} + v
			mu{uid}.Unlock()
			wg{uid}.Done()
		}}()
	}}
	wg{uid}.Wait()
	return total{uid}
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category="benign",
        real=False,
        template="benign_worker_pool",
        driver=f"runPool{uid}",
    )


def benign_buffered_result(uid: str) -> TemplateInstance:
    code = f"""
func slowOp{uid}() int {{
	return 11
}}

func asyncResult{uid}() int {{
	done{uid} := make(chan int, 1)
	go func() {{
		done{uid} <- slowOp{uid}()
	}}()
	v := <-done{uid}
	return v
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category="benign",
        real=False,
        template="benign_buffered_result",
        driver=f"asyncResult{uid}",
    )


def benign_compute(uid: str) -> TemplateInstance:
    code = f"""
func checksum{uid}(n int) int {{
	acc{uid} := 0
	for i{uid} := 0; i{uid} < n; i{uid}++ {{
		acc{uid} = acc{uid} + i{uid}*i{uid}
	}}
	return acc{uid}
}}

func normalize{uid}(v int) int {{
	if v < 0 {{
		return -v
	}}
	if v > 1000 {{
		return 1000
	}}
	return v
}}

func scale{uid}(v int, k int) int {{
	return normalize{uid}(checksum{uid}(v) + k)
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category="benign",
        real=False,
        template="benign_compute",
        driver=f"scale{uid}",
    )


def benign_guarded_state(uid: str) -> TemplateInstance:
    code = f"""
type vault{uid} struct {{
	mu sync.Mutex
	keys int
}}

func (v *vault{uid}) put{uid}() {{
	v.mu.Lock()
	v.keys = v.keys + 1
	v.mu.Unlock()
}}

func (v *vault{uid}) count{uid}() int {{
	v.mu.Lock()
	n := v.keys
	v.mu.Unlock()
	return n
}}

func driveVault{uid}() int {{
	v{uid} := vault{uid}{{}}
	v{uid}.put{uid}()
	return v{uid}.count{uid}()
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category="benign",
        real=False,
        template="benign_guarded_state",
        driver=f"driveVault{uid}",
    )


def benign_rendezvous(uid: str) -> TemplateInstance:
    code = f"""
func ping{uid}() int {{
	hello{uid} := make(chan int)
	go func() {{
		v := <-hello{uid}
		println("got", v)
	}}()
	hello{uid} <- 42
	return 0
}}
"""
    return TemplateInstance(
        uid=uid,
        code=code,
        category="benign",
        real=False,
        template="benign_rendezvous",
        driver=f"ping{uid}",
    )


BENIGN_TEMPLATES: List[Callable[[str], TemplateInstance]] = [
    benign_worker_pool,
    benign_buffered_result,
    benign_compute,
    benign_guarded_state,
    benign_rendezvous,
]

REAL_BMOCC_BY_STRATEGY: Dict[str, List[Callable[[str], TemplateInstance]]] = {
    "buffer": [bmocc_s1_ctx, bmocc_s1_race],
    "defer": [bmocc_s2_fatal, bmocc_s2_panic],
    "stop": [bmocc_s3_loop, bmocc_s3_pump],
}

UNFIXABLE_BY_REASON: Dict[str, Callable[[str], TemplateInstance]] = {
    "parent-blocked": bmocc_unfix_parent,
    "side-effects": bmocc_unfix_side,
    "complex-goroutines": bmocc_unfix_complex,
    "recv-value-used": bmocc_unfix_recvused,
}

FP_BMOCC_BY_CAUSE: Dict[str, List[Callable[[str], TemplateInstance]]] = {
    CAUSE_INFEASIBLE: [fp_nonreadonly, fp_loop_unroll],
    CAUSE_ALIAS: [fp_chan_through_chan, fp_slice_store],
    CAUSE_CALLGRAPH: [fp_interface],
}

TRADITIONAL_REAL: Dict[str, Callable[[str], TemplateInstance]] = {
    FORGET_UNLOCK: forget_unlock_real,
    DOUBLE_LOCK: double_lock_real,
    CONFLICT_LOCK: conflict_lock_real,
    STRUCT_RACE: struct_race_real,
    FATAL: fatal_real,
}

TRADITIONAL_FP: Dict[str, Callable[[str], TemplateInstance]] = {
    FORGET_UNLOCK: forget_unlock_fp,
    DOUBLE_LOCK: double_lock_fp,
    CONFLICT_LOCK: conflict_lock_fp,
    STRUCT_RACE: struct_race_fp,
}

#: every template factory by name, in deterministic order — the motif
#: library the generative fuzzer (:mod:`repro.fuzz.generator`) draws from
ALL_TEMPLATES: Dict[str, Callable[[str], TemplateInstance]] = {
    factory.__name__: factory
    for factory in sorted(
        {f for group in REAL_BMOCC_BY_STRATEGY.values() for f in group}
        | set(UNFIXABLE_BY_REASON.values())
        | {f for group in FP_BMOCC_BY_CAUSE.values() for f in group}
        | set(TRADITIONAL_REAL.values())
        | set(TRADITIONAL_FP.values())
        | set(BENIGN_TEMPLATES)
        | {bmocm_real, fp_bmocm},
        key=lambda factory: factory.__name__,
    )
}
