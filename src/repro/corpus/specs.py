"""Table 1 of the paper as data: the 21 evaluated applications with their
per-category real-bug and false-positive counts and GFix strategy totals.

The synthetic corpus seeds each application with exactly these populations,
so the Table 1 harness regenerates the table's *shape* (who has how many
bugs of which kind, which strategies fix them) on our MiniGo substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Cell:
    """One Table 1 cell: x real bugs, y false positives (the paper's x_y)."""

    real: int = 0
    fp: int = 0

    def __str__(self) -> str:
        if self.real == 0 and self.fp == 0:
            return "-"
        return f"{self.real}({self.fp})"


@dataclass(frozen=True)
class AppSpec:
    """One row of Table 1."""

    name: str
    bmoc_c: Cell = Cell()
    bmoc_m: Cell = Cell()
    forget_unlock: Cell = Cell()
    double_lock: Cell = Cell()
    conflict_lock: Cell = Cell()
    struct_field: Cell = Cell()
    fatal: Cell = Cell()
    fix_s1: int = 0
    fix_s2: int = 0
    fix_s3: int = 0
    # distribution of GFix-unfixable BMOC-channel bugs by reason
    unfixable: Tuple[Tuple[str, int], ...] = ()
    # relative code-size weight (Kubernetes is the largest; drives the
    # amount of benign background code, for the scalability benchmark)
    size_weight: int = 1

    @property
    def gcatch_total(self) -> Cell:
        cells = [
            self.bmoc_c,
            self.bmoc_m,
            self.forget_unlock,
            self.double_lock,
            self.conflict_lock,
            self.struct_field,
            self.fatal,
        ]
        return Cell(sum(c.real for c in cells), sum(c.fp for c in cells))

    @property
    def gfix_total(self) -> int:
        return self.fix_s1 + self.fix_s2 + self.fix_s3

    @property
    def unfixed_count(self) -> int:
        return self.bmoc_c.real - self.gfix_total


# unfixable reasons (see repro.fixer.safety)
PARENT = "parent-blocked"
SIDE = "side-effects"
RECVUSED = "recv-value-used"
COMPLEX = "complex-goroutines"

# Table 1, verbatim. x_y cells become Cell(x, y).
TABLE1: List[AppSpec] = [
    AppSpec(
        "Go",
        bmoc_c=Cell(21, 2),
        bmoc_m=Cell(1, 1),
        forget_unlock=Cell(8, 3),
        double_lock=Cell(0, 2),
        conflict_lock=Cell(1, 0),
        struct_field=Cell(2, 5),
        fatal=Cell(3, 0),
        fix_s1=12,
        fix_s2=0,
        fix_s3=2,
        unfixable=((PARENT, 3), (SIDE, 3), (RECVUSED, 1)),
        size_weight=6,
    ),
    AppSpec(
        "Kubernetes",
        bmoc_c=Cell(14, 5),
        bmoc_m=Cell(1, 0),
        forget_unlock=Cell(1, 0),
        double_lock=Cell(1, 0),
        struct_field=Cell(5, 6),
        fatal=Cell(10, 0),
        fix_s1=8,
        unfixable=((PARENT, 2), (SIDE, 3), (COMPLEX, 1)),
        size_weight=10,
    ),
    AppSpec(
        "Docker",
        bmoc_c=Cell(49, 8),
        forget_unlock=Cell(1, 1),
        double_lock=Cell(2, 3),
        conflict_lock=Cell(1, 0),
        struct_field=Cell(3, 1),
        fix_s1=40,
        fix_s2=1,
        fix_s3=6,
        unfixable=((PARENT, 1), (SIDE, 1)),
        size_weight=7,
    ),
    AppSpec(
        "HUGO",
        forget_unlock=Cell(2, 0),
        double_lock=Cell(0, 1),
        struct_field=Cell(2, 1),
        size_weight=2,
    ),
    AppSpec("Gin", size_weight=1),
    AppSpec("frp", forget_unlock=Cell(1, 0), size_weight=1),
    AppSpec("Gogs", size_weight=1),
    AppSpec(
        "Syncthing",
        bmoc_c=Cell(0, 1),
        forget_unlock=Cell(3, 1),
        struct_field=Cell(1, 2),
        size_weight=2,
    ),
    AppSpec(
        "etcd",
        bmoc_c=Cell(39, 8),
        forget_unlock=Cell(6, 1),
        double_lock=Cell(1, 2),
        conflict_lock=Cell(0, 1),
        struct_field=Cell(7, 2),
        fatal=Cell(4, 0),
        fix_s1=24,
        fix_s2=1,
        fix_s3=9,
        unfixable=((PARENT, 2), (SIDE, 2), (COMPLEX, 1)),
        size_weight=5,
    ),
    AppSpec(
        "v2ray-core",
        bmoc_m=Cell(0, 1),
        double_lock=Cell(2, 1),
        conflict_lock=Cell(2, 1),
        struct_field=Cell(3, 0),
        size_weight=2,
    ),
    AppSpec(
        "Prometheus",
        bmoc_c=Cell(2, 1),
        forget_unlock=Cell(1, 1),
        double_lock=Cell(1, 1),
        conflict_lock=Cell(0, 2),
        struct_field=Cell(0, 2),
        fix_s1=2,
        size_weight=3,
    ),
    AppSpec("fzf", forget_unlock=Cell(0, 1), size_weight=1),
    AppSpec("traefik", size_weight=1),
    AppSpec("Caddy", size_weight=1),
    AppSpec(
        "Go-Ethereum",
        bmoc_c=Cell(9, 19),
        bmoc_m=Cell(0, 3),
        forget_unlock=Cell(4, 1),
        double_lock=Cell(9, 1),
        struct_field=Cell(6, 7),
        fatal=Cell(3, 0),
        fix_s1=6,
        fix_s3=2,
        unfixable=((SIDE, 1),),
        size_weight=4,
    ),
    AppSpec("Beego", struct_field=Cell(3, 0), size_weight=2),
    AppSpec("mkcert", size_weight=1),
    AppSpec(
        "TiDB",
        bmoc_c=Cell(1, 0),
        forget_unlock=Cell(0, 6),
        double_lock=Cell(3, 0),
        conflict_lock=Cell(2, 0),
        struct_field=Cell(0, 2),
        fix_s1=1,
        size_weight=4,
    ),
    AppSpec(
        "CockroachDB",
        bmoc_c=Cell(4, 2),
        forget_unlock=Cell(5, 0),
        double_lock=Cell(0, 4),
        conflict_lock=Cell(2, 1),
        struct_field=Cell(0, 3),
        fix_s1=1,
        fix_s2=2,
        unfixable=((PARENT, 1),),
        size_weight=4,
    ),
    AppSpec(
        "gRPC",
        bmoc_c=Cell(6, 0),
        double_lock=Cell(0, 1),
        conflict_lock=Cell(1, 0),
        struct_field=Cell(1, 0),
        fatal=Cell(2, 0),
        fix_s1=4,
        fix_s3=1,
        unfixable=((COMPLEX, 1),),
        size_weight=3,
    ),
    AppSpec(
        "bbolt",
        bmoc_c=Cell(2, 0),
        fatal=Cell(4, 0),
        fix_s1=1,
        fix_s3=1,
        size_weight=1,
    ),
]


def spec_by_name(name: str) -> AppSpec:
    for spec in TABLE1:
        if spec.name == name:
            return spec
    raise KeyError(name)


def totals() -> Dict[str, Cell]:
    out: Dict[str, Cell] = {}
    for column in (
        "bmoc_c",
        "bmoc_m",
        "forget_unlock",
        "double_lock",
        "conflict_lock",
        "struct_field",
        "fatal",
    ):
        real = sum(getattr(spec, column).real for spec in TABLE1)
        fp = sum(getattr(spec, column).fp for spec in TABLE1)
        out[column] = Cell(real, fp)
    return out


# consistency guards (checked by the test suite as well)
assert sum(s.bmoc_c.real for s in TABLE1) == 147
assert sum(s.bmoc_c.fp for s in TABLE1) == 46
assert sum(s.bmoc_m.real for s in TABLE1) == 2
assert sum(s.bmoc_m.fp for s in TABLE1) == 5
assert sum(s.fix_s1 for s in TABLE1) == 99
assert sum(s.fix_s2 for s in TABLE1) == 4
assert sum(s.fix_s3 for s in TABLE1) == 21
assert sum(s.gfix_total for s in TABLE1) == 124
assert sum(count for s in TABLE1 for _, count in s.unfixable) == 23
for _spec in TABLE1:
    assert _spec.unfixed_count == sum(c for _, c in _spec.unfixable), _spec.name
