"""Checked-in fuzz findings: minimized unexplained disagreements.

The seed→minimize→regress workflow (see DESIGN.md): when a fuzz campaign
surfaces an unexplained disagreement between the static and dynamic
oracles, the program is replayed from its ``(campaign_seed, index)``
provenance, shrunk with :func:`repro.fuzz.minimize.minimize_program` to
the smallest recipe that still reproduces the finding, and checked in
here. Each entry is a live detector-gap: ``tests/test_fuzz_regressions``
locks today's (wrong) triage so the gap cannot silently move, and marks
the *desired* agreement as a strict ``xfail`` so closing the gap flips
the test and forces this file to shrink.

The entries below are the finding *shapes* from a 25-seed ×
200-program hunt (40 raw findings, every one an instance of these
shapes; zero campaign crashes). Closing a gap moves its record from
``FUZZ_REGRESSIONS`` into ``CLOSED_REGRESSIONS`` — provenance and
diagnosis are kept so the fix stays regression-tested (the oracles
must keep agreeing on the very programs that once split them).

Open: none — every shape from the hunt is closed.

Closed:

* ``bmocc_s3_pump``/``bmocc_s3_loop`` + ``buffer-grow`` — BMOC used to
  miss the multiple-operations leak once the channel got a buffer: the
  buffered model satisfied the first send and never chased the later
  sends that still block. Closed by the repeatable-send blocking rule
  (``repro.constraints.encoding.repeat_attempts``): a send truncated by
  the unroll limit carries its remaining loop-trip attempts into Φ_B,
  so ``attempts > BS - CB`` reports the leak the buffer was hiding.
* ``bmocc_s1_race`` + ``drop-close`` — removing the ``close`` left a
  select arm reading a channel that no goroutine will ever send on or
  close; BMOC kept reporting the original blocking pattern even though
  the select's data arm always rescues the goroutine and exhaustive
  search proves no leak. Closed by the dead-select-arm pruning rule
  (``repro.detector.paths.PathEnumerator._select_arm_dead``): a receive
  arm whose channel has zero send/close operations anywhere in the
  program can never fire, so paths taking it are infeasible and are no
  longer enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.fuzz.campaign import CampaignConfig, ProgramTriage, triage_program
from repro.fuzz.generator import INLINE, NESTED, GeneratedProgram, MotifSpec, realize


@dataclass(frozen=True)
class FuzzRegression:
    """One minimized finding with full replay provenance."""

    name: str
    campaign_seed: int  # `repro fuzz --seed` that surfaced it
    index: int  # `--only` index within that campaign
    motifs: Tuple[MotifSpec, ...]  # the minimized recipe
    classification: str  # today's (wrong) reconciliation
    diagnosis: str  # one-line root cause of the detector gap

    def program(self) -> GeneratedProgram:
        """The minimal program, re-rendered from the checked-in recipe."""
        return realize(self.campaign_seed, self.index, self.motifs)

    def triage(self, config: Optional[CampaignConfig] = None) -> ProgramTriage:
        return triage_program(self.program(), config=config or CampaignConfig())


@dataclass(frozen=True)
class ClosedRegression:
    """A retired finding: the gap it pinned has been fixed.

    The original record is kept whole — ``case.program()`` still
    replays the minimized recipe and ``(campaign_seed, index)`` still
    replays the raw campaign program, so the fix is locked from both
    directions. ``case.classification`` records the *historical* wrong
    verdict; today's triage must land in ``resolved_bucket``.
    """

    case: FuzzRegression
    resolved_bucket: str  # the bucket today's triage must produce
    resolved_classification: str  # the reconciliation today must produce
    resolution: str  # one-line description of what closed the gap


FUZZ_REGRESSIONS: Tuple[FuzzRegression, ...] = ()

CLOSED_REGRESSIONS: Tuple[ClosedRegression, ...] = (
    ClosedRegression(
        case=FuzzRegression(
            name="buffered-pump-missed-leak",
            campaign_seed=1,
            index=12,
            motifs=(
                MotifSpec(
                    template="bmocc_s3_pump",
                    uid="M0",
                    placement=NESTED,
                    mutations=("buffer-grow",),
                    arg=2,
                ),
            ),
            classification="dynamic-only",
            diagnosis=(
                "BMOC modeled only the first blocking operation; a buffer "
                "absorbed it and the later send that still leaks went "
                "unchased"
            ),
        ),
        resolved_bucket="agree",
        resolved_classification="agree-bug",
        resolution=(
            "repeatable-send blocking rule: a cut-path send carries its "
            "remaining trip-count attempts, so attempts > BS - CB flags "
            "the sends the buffer was absorbing"
        ),
    ),
    ClosedRegression(
        case=FuzzRegression(
            name="buffered-loop-missed-leak",
            campaign_seed=4,
            index=185,
            motifs=(
                MotifSpec(
                    template="bmocc_s3_loop",
                    uid="M0",
                    placement=INLINE,
                    mutations=("buffer-grow",),
                    arg=3,
                ),
            ),
            classification="dynamic-only",
            diagnosis=(
                "same gap as buffered-pump-missed-leak via the loop "
                "variant: the buffered first iteration hid the blocking "
                "tail"
            ),
        ),
        resolved_bucket="agree",
        resolved_classification="agree-bug",
        resolution="closed by the same repeatable-send blocking rule",
    ),
    ClosedRegression(
        case=FuzzRegression(
            name="closeless-select-false-alarm",
            campaign_seed=8,
            index=137,
            motifs=(
                MotifSpec(
                    template="bmocc_s1_race",
                    uid="M0",
                    placement=INLINE,
                    mutations=("drop-close",),
                    arg=2,
                ),
            ),
            classification="static-only",
            diagnosis=(
                "with the close() dropped the select's quit arm is dead, "
                "but its data arm still always rescues the goroutine; BMOC "
                "kept reporting the original pattern while exhaustive "
                "search proves no schedule leaks"
            ),
        ),
        resolved_bucket="agree",
        resolved_classification="agree-clean",
        resolution=(
            "dead-select-arm pruning: a receive arm on a channel with no "
            "send or close anywhere in the program can never fire, so the "
            "path that took it (and skipped the rescuing data arm) is no "
            "longer enumerated"
        ),
    ),
)

REGRESSIONS_BY_NAME = {case.name: case for case in FUZZ_REGRESSIONS}

CLOSED_BY_NAME = {closed.case.name: closed for closed in CLOSED_REGRESSIONS}
