"""Scheduling loop and execution results for the MiniGo runtime.

``run_program`` is the dynamic oracle used throughout the reproduction: it
plays the role of the paper's unit-test-plus-random-sleep validation
(§5.1's patch-correctness methodology). A seeded RNG picks which runnable
goroutine steps next, so distinct seeds explore distinct interleavings and
repeated seeds replay identical executions.

Outcomes of interest:

* ``leaked`` — goroutines still blocked when the program finishes: the
  dynamic symptom of a BMOC bug (a child goroutine parked forever);
* ``global_deadlock`` — every live goroutine blocked (Go's fatal
  "all goroutines are asleep" error);
* ``panicked`` / ``output`` / per-goroutine step counts for patch-overhead
  measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runtime.choices import Choice, ChoicePolicy, RandomPolicy, ReplayPolicy
from repro.runtime.interp import BLOCKED, RUNNABLE, Goroutine, Interpreter
from repro.runtime.values import (
    Channel,
    ContextVal,
    Env,
    SliceVal,
    StructVal,
    TestingT,
    reset_runtime_ids,
)
from repro.ssa import ir


@dataclass
class LeakedGoroutine:
    gid: int
    function: str
    blocked_line: int
    blocked_kind: str


@dataclass
class ExecutionResult:
    """Everything observable about one seeded execution."""

    seed: int
    steps: int = 0
    output: List[str] = field(default_factory=list)
    leaked: List[LeakedGoroutine] = field(default_factory=list)
    global_deadlock: bool = False
    deadlock_lines: List[int] = field(default_factory=list)
    panicked: bool = False
    panic_message: Optional[str] = None
    test_failed: bool = False
    hit_step_limit: bool = False
    goroutine_steps: Dict[int, int] = field(default_factory=dict)
    # every scheduling/select decision this execution made, in order;
    # feeding it back through a ReplayPolicy reproduces the run exactly
    choice_trace: List[Choice] = field(default_factory=list)

    @property
    def blocked_forever(self) -> bool:
        """True when some goroutine ended up permanently stuck."""
        return self.global_deadlock or bool(self.leaked)

    def blocked_lines(self) -> List[int]:
        lines = list(self.deadlock_lines)
        lines.extend(leak.blocked_line for leak in self.leaked)
        return sorted(set(lines))


def _synthesize_arg(kind: str) -> Any:
    """Default argument values when running an entry function directly."""
    if kind == "testing":
        return TestingT()
    if kind == "context":
        return ContextVal(Channel(0, "unit"))
    if kind == "chan":
        return Channel(0, "any")
    if kind == "int":
        return 0
    if kind == "bool":
        return False
    if kind == "string":
        return ""
    if kind.startswith("slice"):
        return SliceVal([])
    if kind.startswith("struct:"):
        return StructVal(kind.split(":", 1)[1])
    return None


def run_program(
    program: ir.Program,
    entry: str = "main",
    seed: int = 0,
    max_steps: int = 100_000,
    arg_kinds: Optional[Dict[str, str]] = None,
    args: Optional[List[Any]] = None,
    policy: Optional[ChoicePolicy] = None,
    collector=None,
) -> ExecutionResult:
    """Execute ``entry`` under one schedule.

    Without an explicit ``policy`` the schedule is drawn from a seeded RNG
    (the paper's random-sleep-style sampling); passing a policy lets the
    replayer and the systematic explorer drive the very same loop.
    ``collector`` (a :class:`repro.obs.Collector`) receives run counters;
    when ``None`` the scheduling loop pays no instrumentation cost.
    """
    reset_runtime_ids()
    rng = random.Random(seed)
    if policy is None:
        policy = RandomPolicy(rng)
    interp = Interpreter(program, rng, policy=policy, collector=collector)
    entry_func = program.functions.get(entry)
    if entry_func is None:
        raise KeyError(f"no entry function {entry!r}")
    env = Env()
    if args is not None:
        for name, value in zip(entry_func.params, args):
            env.vars[name] = value
    else:
        kinds = arg_kinds or {}
        for name in entry_func.params:
            env.vars[name] = _synthesize_arg(kinds.get(name, "any"))
    main = interp.spawn(entry_func, env)
    result = ExecutionResult(seed=seed)

    steps = 0
    while steps < max_steps:
        if interp.panicked:
            break
        if main.done:
            if not _drain(interp, main, result, max_steps - steps):
                result.hit_step_limit = True
            break
        runnable = _runnable(interp)
        if not runnable:
            if _only_sleepers(interp):
                interp.clock += 1  # let time pass
                continue
            result.global_deadlock = True
            break
        goroutine = runnable[policy.pick("sched", runnable, interp)]
        interp.step(goroutine)
        steps += 1

    if steps >= max_steps:
        result.hit_step_limit = True

    _collect(interp, main, result, steps)
    result.choice_trace = list(policy.trace)
    if collector:
        collector.count("run.programs")
        collector.count("run.steps", result.steps)
        if result.blocked_forever:
            collector.count("run.blocked")
        if result.panicked:
            collector.count("run.panics")
    return result


def _runnable(interp: Interpreter) -> List[Goroutine]:
    return [
        g
        for g in interp.goroutines.values()
        if g.status == RUNNABLE and g.sleep_until <= interp.clock
    ]


def _only_sleepers(interp: Interpreter) -> bool:
    has_sleeper = False
    for goroutine in interp.goroutines.values():
        if goroutine.status == RUNNABLE:
            if goroutine.sleep_until > interp.clock:
                has_sleeper = True
            else:
                return False
    return has_sleeper


def _drain(interp: Interpreter, main: Goroutine, result: ExecutionResult, budget: int) -> bool:
    """After main exits, let remaining goroutines run until quiescent.

    Whatever is still blocked afterwards is blocked *forever* — the leaked
    goroutines a BMOC bug produces.
    """
    steps = 0
    while steps < budget:
        if interp.panicked:
            return True
        runnable = [g for g in _runnable(interp) if g is not main]
        if not runnable:
            if _only_sleepers(interp):
                interp.clock += 1
                continue
            return True
        interp.step(runnable[interp.policy.pick("sched", runnable, interp)])
        steps += 1
    return False


def _collect(interp: Interpreter, main: Goroutine, result: ExecutionResult, steps: int) -> None:
    result.steps = steps
    result.output = list(interp.output)
    result.panicked = interp.panicked
    result.panic_message = interp.panic_message
    result.test_failed = interp.test_failed
    result.goroutine_steps = {gid: g.steps for gid, g in interp.goroutines.items()}
    for gid, goroutine in interp.goroutines.items():
        if goroutine.status == BLOCKED:
            func_name = goroutine.frames[-1].func.name if goroutine.frames else "?"
            leak = LeakedGoroutine(
                gid=gid,
                function=func_name,
                blocked_line=goroutine.blocked_line,
                blocked_kind=goroutine.blocked_kind,
            )
            if result.global_deadlock:
                result.deadlock_lines.append(goroutine.blocked_line)
            if gid != main.gid or not result.global_deadlock:
                result.leaked.append(leak)


def explore_schedules(
    program: ir.Program,
    entry: str = "main",
    seeds: int = 20,
    max_steps: int = 100_000,
    args: Optional[List[Any]] = None,
    collector=None,
) -> List[ExecutionResult]:
    """Run many seeds, mimicking the paper's random-sleep stress validation."""
    return [
        run_program(
            program, entry=entry, seed=seed, max_steps=max_steps, args=args, collector=collector
        )
        for seed in range(seeds)
    ]


def any_blocks(results: List[ExecutionResult]) -> bool:
    return any(r.blocked_forever for r in results)


def replay_trace(
    program: ir.Program,
    trace: List[Choice],
    entry: str = "main",
    seed: int = 0,
    max_steps: int = 100_000,
    args: Optional[List[Any]] = None,
    collector=None,
) -> ExecutionResult:
    """Re-execute a recorded choice trace; the result is bit-identical.

    ``seed`` only labels the result (the RNG is never consulted during a
    replay); pass the original run's seed to make the dataclasses compare
    equal field-for-field.
    """
    result = run_program(
        program,
        entry=entry,
        seed=seed,
        max_steps=max_steps,
        args=args,
        policy=ReplayPolicy(trace),
        collector=collector,
    )
    if collector:
        collector.count("replay.runs")
        collector.count("replay.steps", result.steps)
    return result
