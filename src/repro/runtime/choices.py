"""Choice policies: the single source of scheduling nondeterminism.

Every nondeterministic decision the runtime makes — which runnable
goroutine steps next, which ready ``select`` case commits — flows through a
:class:`ChoicePolicy`. The policy both *makes* the decision and *records*
it, so any execution (random or systematic) leaves behind a choice trace
that deterministically replays the identical schedule.

Three policies cover the repo's dynamic-oracle modes:

* :class:`RandomPolicy` — the paper's random-sleep-style sampling; draws
  from a seeded RNG exactly the way the pre-refactor scheduler did, so the
  schedule reached by ``seed=k`` is unchanged;
* :class:`ReplayPolicy` — replays a recorded trace, validating at every
  step that the set of options matches what was recorded;
* the explorer's directed policy (see :mod:`repro.runtime.explorer`) —
  forces a prefix, then extends it depth-first.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Sequence


@dataclass(frozen=True)
class Choice:
    """One recorded decision: ``index`` out of ``options`` alternatives."""

    kind: str  # 'sched' | 'select'
    options: int
    index: int


class ReplayDivergence(Exception):
    """A replayed trace no longer matches the program's choice points."""


class ChoicePolicy:
    """Base class: subclasses decide, the base records."""

    def __init__(self) -> None:
        self.trace: List[Choice] = []

    def pick(self, kind: str, options: Sequence[Any], interp: Any) -> int:
        index = self._decide(kind, options, interp)
        self.trace.append(Choice(kind, len(options), index))
        return index

    def _decide(self, kind: str, options: Sequence[Any], interp: Any) -> int:
        raise NotImplementedError


class RandomPolicy(ChoicePolicy):
    """Seeded random choices, draw-for-draw compatible with the old RNG use.

    ``rng.choice(range(n))`` consumes the generator identically to the old
    ``rng.choice(seq)`` calls, so every seed reproduces the exact schedule
    it produced before policies existed.
    """

    def __init__(self, rng: random.Random):
        super().__init__()
        self.rng = rng

    def _decide(self, kind: str, options: Sequence[Any], interp: Any) -> int:
        return self.rng.choice(range(len(options)))


class ReplayPolicy(ChoicePolicy):
    """Deterministically re-issue a recorded choice trace."""

    def __init__(self, trace: Sequence[Choice]):
        super().__init__()
        self._replay = list(trace)
        self._pos = 0

    def _decide(self, kind: str, options: Sequence[Any], interp: Any) -> int:
        if self._pos >= len(self._replay):
            raise ReplayDivergence(
                f"trace exhausted after {self._pos} choices; "
                f"program wants another {kind!r} choice"
            )
        recorded = self._replay[self._pos]
        self._pos += 1
        if recorded.kind != kind or recorded.options != len(options):
            raise ReplayDivergence(
                f"choice {self._pos - 1}: recorded {recorded.kind}/"
                f"{recorded.options} options, program offers {kind}/{len(options)}"
            )
        if not 0 <= recorded.index < len(options):
            raise ReplayDivergence(f"choice {self._pos - 1}: index out of range")
        return recorded.index
