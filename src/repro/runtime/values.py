"""Runtime value representations for the MiniGo interpreter.

Channel, mutex and waitgroup values implement exactly the Go semantics the
paper's constraint system models statically (§2.1/§3.4): buffered/unbuffered
channels with FIFO buffers, close semantics with zero values, rendezvous
between parked senders and receivers, and mutexes as ownership flags.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple


class _RuntimeIds(threading.local):
    """Per-thread serial counters for sync objects and env frames.

    Thread-local on purpose: a daemon fleet runs whole campaigns
    concurrently in one process (thread-mode daemons), and a shared
    counter would let one run's allocations perturb another's object
    ids — and through them the explorer's footprint pruning — making
    ``total_steps`` depend on co-scheduled work. Each interpreter run
    resets only its own thread's counters, so concurrent runs mint the
    same ids they would alone.
    """

    def __init__(self):
        self.counts: Dict[str, int] = {}


_IDS = _RuntimeIds()


def _next_id(kind: str) -> int:
    n = _IDS.counts.get(kind, 0) + 1
    _IDS.counts[kind] = n
    return n


def reset_runtime_ids() -> None:
    """Restart the per-run serial counters for sync objects and env frames.

    Called at the top of every ``run_program``: two executions that make the
    same scheduling choices then mint identical ids, so the explorer can
    compare footprints recorded in one run against objects seen in a sibling
    run that shares its choice prefix.
    """
    _IDS.counts.clear()


class GoPanic(Exception):
    """Raised inside the interpreter when a goroutine panics."""

    def __init__(self, message: Any):
        super().__init__(str(message))
        self.message = message


def zero_value(elem_type: str) -> Any:
    if elem_type == "int":
        return 0
    if elem_type == "bool":
        return False
    if elem_type == "string":
        return ""
    if elem_type == "unit":
        return ()
    return None


class Channel:
    """A Go channel: bounded FIFO buffer plus parked sender/receiver queues."""

    def __init__(self, capacity: int, elem_type: str = "any", create_line: int = 0):
        self.id = _next_id("chan")
        self.capacity = capacity
        self.elem_type = elem_type
        self.create_line = create_line
        self.buffer: Deque[Any] = deque()
        self.closed = False
        # parked goroutine ids with pending values: [(gid, value)]
        self.send_waiters: List[Tuple[int, Any]] = []
        self.recv_waiters: List[int] = []

    # -- readiness probes (used by select and by blocked-op retries) -----

    def can_send(self) -> bool:
        if self.closed:
            return True  # proceeds by panicking
        return len(self.buffer) < self.capacity or bool(self.recv_waiters)

    def can_recv(self) -> bool:
        return bool(self.buffer) or self.closed or bool(self.send_waiters)

    # -- operations -------------------------------------------------------

    def try_send(self, value: Any) -> Tuple[bool, Optional[int]]:
        """Attempt a send.

        Returns ``(True, woken_gid)`` on success — ``woken_gid`` is a
        receiver goroutine unparked by a rendezvous, or None. Returns
        ``(False, None)`` when the send must block. Raises GoPanic when the
        channel is closed (Go's send-on-closed semantics).
        """
        if self.closed:
            raise GoPanic("send on closed channel")
        if self.recv_waiters:
            gid = self.recv_waiters.pop(0)
            self.buffer.append(value)
            return True, gid
        if len(self.buffer) < self.capacity:
            self.buffer.append(value)
            return True, None
        return False, None

    def try_recv(self) -> Tuple[bool, Any, bool, Optional[int]]:
        """Attempt a receive.

        Returns ``(ok_to_proceed, value, received_ok_flag, woken_gid)``.
        ``received_ok_flag`` is Go's second receive result: False only when
        the channel is closed and drained.
        """
        if self.send_waiters:
            gid, value = self.send_waiters.pop(0)
            if self.buffer:
                # buffered channel: parked sender refills the buffer slot
                out = self.buffer.popleft()
                self.buffer.append(value)
                return True, out, True, gid
            return True, value, True, gid
        if self.buffer:
            return True, self.buffer.popleft(), True, None
        if self.closed:
            return True, zero_value(self.elem_type), False, None
        return False, None, False, None

    def close(self) -> List[int]:
        """Close the channel; returns goroutine ids to wake."""
        if self.closed:
            raise GoPanic("close of closed channel")
        self.closed = True
        woken = list(self.recv_waiters)
        self.recv_waiters.clear()
        # parked senders on a closed channel will panic when they resume
        woken.extend(gid for gid, _ in self.send_waiters)
        self.send_waiters.clear()
        return woken

    def forget_waiter(self, gid: int) -> None:
        """Remove a goroutine from wait queues (used when a select commits)."""
        self.recv_waiters = [g for g in self.recv_waiters if g != gid]
        self.send_waiters = [(g, v) for g, v in self.send_waiters if g != gid]

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self.buffer)}/{self.capacity}"
        return f"<chan#{self.id} {state}>"


class MutexVal:

    def __init__(self, rw: bool = False, create_line: int = 0):
        self.id = _next_id("mutex")
        self.rw = rw
        self.create_line = create_line
        self.locked_by: Optional[int] = None
        self.readers: int = 0

    def can_lock(self) -> bool:
        return self.locked_by is None and self.readers == 0

    def can_rlock(self) -> bool:
        return self.locked_by is None

    def __repr__(self) -> str:
        return f"<mutex#{self.id} locked_by={self.locked_by} readers={self.readers}>"


class WaitGroupVal:

    def __init__(self, create_line: int = 0):
        self.id = _next_id("wg")
        self.create_line = create_line
        self.count = 0

    def __repr__(self) -> str:
        return f"<wg#{self.id} count={self.count}>"


class CondVal:
    """A condition variable: parked waiter set, woken by Signal/Broadcast.

    MiniGo's Cond has no associated Locker (callers manage their own
    mutexes); Wait parks until a Signal/Broadcast arrives — signals are
    not buffered, exactly like Go's sync.Cond.
    """

    def __init__(self, create_line: int = 0):
        self.id = _next_id("cond")
        self.create_line = create_line

    def __repr__(self) -> str:
        return f"<cond#{self.id}>"


class ContextVal:
    """A context whose Done() channel is closed by its cancel function."""

    def __init__(self, done: Channel):
        self.done = done

    def __repr__(self) -> str:
        return f"<context done={self.done!r}>"


class CancelFunc:
    def __init__(self, ctx: ContextVal):
        self.ctx = ctx


class StructVal:

    def __init__(self, type_name: str, fields: Optional[Dict[str, Any]] = None):
        self.id = _next_id("struct")
        self.type_name = type_name
        self.fields: Dict[str, Any] = dict(fields or {})

    def __repr__(self) -> str:
        return f"<{self.type_name} {self.fields}>"


class SliceVal:

    def __init__(self, elems: List[Any]):
        self.id = _next_id("slice")
        self.elems = elems

    def __repr__(self) -> str:
        return f"<slice len={len(self.elems)}>"


class Closure:
    """A function value paired with its defining environment."""

    def __init__(self, func_name: str, env: "Env"):
        self.func_name = func_name
        self.env = env

    def __repr__(self) -> str:
        return f"<closure {self.func_name}>"


class TestingT:
    def __init__(self):
        self.failed = False


class Env:
    """A lexical environment frame; closures chain to their parent.

    ``shared`` marks frames that a closure has captured: variables living in
    a shared frame are potentially visible to other goroutines, which the
    systematic explorer uses to decide whether two steps commute.
    """

    __slots__ = ("vars", "parent", "shared", "shared_serial")

    def __init__(self, parent: Optional["Env"] = None):
        self.vars: Dict[str, Any] = {}
        self.parent = parent
        self.shared = False
        self.shared_serial = 0

    def mark_shared(self) -> None:
        env: Optional[Env] = self
        while env is not None and not env.shared:
            env.shared = True
            env.shared_serial = _next_id("env")
            env = env.parent

    def owner_of(self, name: str) -> Optional["Env"]:
        """The frame in the chain that holds ``name``, or None."""
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                return env
            env = env.parent
        return None

    def lookup(self, name: str) -> Any:
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise KeyError(name)

    def assign(self, name: str, value: Any) -> None:
        """Write through to the defining frame, creating locally if new."""
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return
            env = env.parent
        self.vars[name] = value
