"""MiniGo dynamic runtime: interpreter, schedulers, and the dynamic oracle.

* :mod:`repro.runtime.scheduler` — seeded random scheduling (the paper's
  sampling validation) and trace replay;
* :mod:`repro.runtime.explorer` — bounded systematic schedule enumeration
  with sleep-set partial-order pruning;
* :mod:`repro.runtime.choices` — the choice-policy abstraction both share.
"""

from repro.runtime.choices import Choice, ChoicePolicy, RandomPolicy, ReplayDivergence, ReplayPolicy
from repro.runtime.explorer import (
    Exploration,
    ReplayScheduler,
    explore,
    independent,
    outcome_signature,
    step_footprint,
)
from repro.runtime.scheduler import (
    ExecutionResult,
    LeakedGoroutine,
    explore_schedules,
    replay_trace,
    run_program,
)

__all__ = [
    "Choice",
    "ChoicePolicy",
    "ExecutionResult",
    "Exploration",
    "LeakedGoroutine",
    "RandomPolicy",
    "ReplayDivergence",
    "ReplayPolicy",
    "ReplayScheduler",
    "explore",
    "explore_schedules",
    "independent",
    "outcome_signature",
    "replay_trace",
    "run_program",
    "step_footprint",
]
