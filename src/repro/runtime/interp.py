"""IR interpreter: executes MiniGo programs goroutine by goroutine.

The interpreter is the reproduction's testbed. Blocking semantics are
implemented with *offers*: a goroutine that cannot complete a channel/mutex
operation parks, publishing what it is waiting for; a running goroutine
completes a parked partner's offer directly (rendezvous), matching the Go
runtime. A seeded RNG drives both goroutine scheduling and ``select``'s
choice among ready cases — the nondeterminism at the heart of bugs like
Figure 1 of the paper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import random

from repro.runtime.choices import ChoicePolicy, RandomPolicy
from repro.ssa import ir
from repro.ssa.builder import (
    DEFER_CLOSE,
    DEFER_LOCK,
    DEFER_RLOCK,
    DEFER_RUNLOCK,
    DEFER_SEND,
    DEFER_UNLOCK,
    DEFER_WG_DONE,
)
from repro.runtime.values import (
    CancelFunc,
    Channel,
    CondVal,
    Closure,
    ContextVal,
    Env,
    GoPanic,
    MutexVal,
    SliceVal,
    StructVal,
    TestingT,
    WaitGroupVal,
    zero_value,
)

RUNNABLE = "runnable"
BLOCKED = "blocked"
DONE = "done"
PANICKED = "panicked"


class Offer:
    """What a parked goroutine is waiting for."""

    __slots__ = ("kind", "obj", "value")

    def __init__(self, kind: str, obj: Any, value: Any = None):
        self.kind = kind  # 'send' | 'recv' | 'lock' | 'rlock' | 'wg'
        self.obj = obj
        self.value = value

    def __repr__(self) -> str:
        return f"Offer({self.kind}, {self.obj!r})"


class Frame:
    """One function activation."""

    __slots__ = ("func", "env", "block", "idx", "deferred", "dsts", "returning", "ret_values")

    def __init__(self, func: ir.Function, env: Env, dsts: Optional[List[ir.Var]] = None):
        self.func = func
        self.env = env
        self.block: ir.Block = func.entry  # type: ignore[assignment]
        self.idx = 0
        self.deferred: List[Tuple[Any, List[Any]]] = []
        self.dsts = dsts or []
        self.returning = False
        self.ret_values: List[Any] = []

    def current_instr(self) -> Optional[ir.Instr]:
        if self.idx < len(self.block.instrs):
            return self.block.instrs[self.idx]
        return self.block.terminator


class Goroutine:
    def __init__(self, gid: int, frame: Frame):
        self.gid = gid
        self.frames: List[Frame] = [frame]
        self.status = RUNNABLE
        self.offers: List[Offer] = []
        self.resume_action: Optional[Tuple] = None
        self.park_time = 0
        self.sleep_until = 0
        self.steps = 0
        self.blocked_line = 0
        self.blocked_kind = ""
        self.panic_message: Optional[str] = None

    @property
    def frame(self) -> Frame:
        return self.frames[-1]

    @property
    def done(self) -> bool:
        return self.status in (DONE, PANICKED)

    def park(self, offers: List[Offer], line: int, kind: str, clock: int) -> None:
        self.status = BLOCKED
        self.offers = offers
        self.park_time = clock
        self.blocked_line = line
        self.blocked_kind = kind

    def wake(self, resume_action: Optional[Tuple] = None) -> None:
        self.status = RUNNABLE
        self.offers = []
        if resume_action is not None:
            self.resume_action = resume_action


class Interpreter:
    """Holds all goroutines and executes single instructions."""

    def __init__(
        self,
        program: ir.Program,
        rng: random.Random,
        policy: Optional[ChoicePolicy] = None,
        collector=None,
    ):
        self.program = program
        self.rng = rng
        self.policy = policy if policy is not None else RandomPolicy(rng)
        self.collector = collector  # repro.obs.Collector | None (hot path: one check)
        self.goroutines: Dict[int, Goroutine] = {}
        self._next_gid = 0
        self.clock = 0
        self.output: List[str] = []
        self.panicked = False
        self.panic_message: Optional[str] = None
        self.test_failed = False

    # -- goroutine management ---------------------------------------------

    def spawn(self, func: ir.Function, env: Env) -> Goroutine:
        gid = self._next_gid
        self._next_gid += 1
        goroutine = Goroutine(gid, Frame(func, env))
        self.goroutines[gid] = goroutine
        if self.collector is not None:
            self.collector.count("run.goroutines")
        return goroutine

    def parked(self, kind: str, obj: Any) -> List[Goroutine]:
        """Blocked goroutines with a matching offer, oldest first."""
        matches = [
            g
            for g in self.goroutines.values()
            if g.status == BLOCKED and any(o.kind == kind and o.obj is obj for o in g.offers)
        ]
        matches.sort(key=lambda g: g.park_time)
        return matches

    def _wake_all_on(self, obj: Any) -> None:
        for goroutine in self.goroutines.values():
            if goroutine.status == BLOCKED and any(o.obj is obj for o in goroutine.offers):
                goroutine.wake()

    # -- operand evaluation -------------------------------------------------

    def value_of(self, op: ir.Operand, env: Env) -> Any:
        if isinstance(op, ir.Const):
            return op.value
        if isinstance(op, ir.Var):
            try:
                return env.lookup(op.name)
            except KeyError:
                return None
        if isinstance(op, ir.FuncRef):
            func = self.program.functions.get(op.name)
            if func is not None and func.is_closure:
                # the closure may outlive this frame and run on another
                # goroutine: everything it captures becomes shared state
                env.mark_shared()
                return Closure(op.name, env)
            return op
        if isinstance(op, ir.MethodRef):
            return op
        raise TypeError(f"unknown operand {op!r}")

    def _store(self, env: Env, var: Optional[ir.Var], value: Any) -> None:
        if var is not None:
            env.assign(var.name, value)

    # -- stepping -------------------------------------------------------------

    def step(self, goroutine: Goroutine) -> None:
        """Execute one instruction (or defer-drain action) of a goroutine."""
        self.clock += 1
        goroutine.steps += 1
        frame = goroutine.frame
        try:
            if frame.returning:
                self._drain_defer(goroutine)
                return
            instr = frame.current_instr()
            if instr is None:
                # fell off a block with no terminator: treat as return
                self._begin_return(goroutine, [])
                return
            self._exec(goroutine, instr)
        except GoPanic as panic:
            self._handle_panic(goroutine, str(panic))

    def _advance(self, frame: Frame) -> None:
        frame.idx += 1

    def _jump(self, frame: Frame, block: ir.Block) -> None:
        frame.block = block
        frame.idx = 0

    # -- panic / return / defer --------------------------------------------

    def _handle_panic(self, goroutine: Goroutine, message: str) -> None:
        # Run deferred ops of every frame, then kill the goroutine. A panic
        # in any goroutine crashes the whole Go program; the scheduler
        # observes `panicked` and stops.
        while goroutine.frames:
            frame = goroutine.frames[-1]
            while frame.deferred:
                target, args = frame.deferred.pop()
                try:
                    self._run_defer_nonblocking(target, args, goroutine)
                except GoPanic:
                    pass
            goroutine.frames.pop()
        goroutine.status = PANICKED
        goroutine.panic_message = message
        self.panicked = True
        if self.panic_message is None:
            self.panic_message = message

    def _run_defer_nonblocking(self, target: Any, args: List[Any], goroutine: Goroutine) -> None:
        """Best-effort execution of a deferred op during panic unwinding."""
        if isinstance(target, ir.FuncRef) and target.name == DEFER_CLOSE:
            chan = args[0]
            if isinstance(chan, Channel) and not chan.closed:
                chan.closed = True
                self._wake_all_on(chan)
            return
        if isinstance(target, ir.FuncRef) and target.name in (DEFER_UNLOCK, DEFER_RUNLOCK):
            self._unlock(args[0], read=target.name == DEFER_RUNLOCK)
            return
        if isinstance(target, ir.FuncRef) and target.name == DEFER_WG_DONE:
            self._wg_done(args[0])
            return
        # deferred function calls during a panic are skipped if they block

    def _begin_return(self, goroutine: Goroutine, values: List[Any]) -> None:
        frame = goroutine.frame
        frame.returning = True
        frame.ret_values = values

    def _drain_defer(self, goroutine: Goroutine) -> None:
        frame = goroutine.frame
        if frame.deferred:
            target, args = frame.deferred.pop()
            self._invoke_deferred(goroutine, target, args)
            return
        # all defers done: pop the frame and deliver results
        goroutine.frames.pop()
        if not goroutine.frames:
            goroutine.status = DONE
            return
        caller = goroutine.frame
        values = frame.ret_values
        for i, dst in enumerate(frame.dsts):
            value = values[i] if i < len(values) else 0
            caller.env.assign(dst.name, value)
        self._advance(caller)

    def _invoke_deferred(self, goroutine: Goroutine, target: Any, args: List[Any]) -> None:
        if isinstance(target, ir.FuncRef) and target.name == DEFER_CLOSE:
            self._close_channel(args[0])
            return
        if isinstance(target, ir.FuncRef) and target.name in (DEFER_UNLOCK, DEFER_RUNLOCK):
            self._unlock(args[0], read=target.name == DEFER_RUNLOCK)
            return
        if isinstance(target, ir.FuncRef) and target.name == DEFER_WG_DONE:
            self._wg_done(args[0])
            return
        if isinstance(target, ir.FuncRef) and target.name == DEFER_SEND:
            # deferred sends can block: push the op back until it completes
            chan, value = args
            if not self._try_send(goroutine, chan, value, line=0):
                goroutine.frame.deferred.append((target, args))
            return
        if isinstance(target, ir.FuncRef) and target.name in (DEFER_LOCK, DEFER_RLOCK):
            mutex = args[0]
            if isinstance(mutex, MutexVal):
                if target.name == DEFER_RLOCK:
                    if mutex.can_rlock():
                        mutex.readers += 1
                    else:
                        goroutine.frame.deferred.append((target, args))
                elif mutex.can_lock():
                    mutex.locked_by = goroutine.gid
                else:
                    goroutine.frame.deferred.append((target, args))
            return
        self._push_call(goroutine, target, args, dsts=[])

    # -- instruction dispatch ------------------------------------------------

    def _exec(self, goroutine: Goroutine, instr: ir.Instr) -> None:
        frame = goroutine.frame
        env = frame.env
        if isinstance(instr, ir.MakeChan):
            size = self.value_of(instr.size, env) or 0
            self._store(env, instr.dst, Channel(int(size), instr.elem_type, instr.line))
            self._advance(frame)
        elif isinstance(instr, ir.MakeMutex):
            self._store(env, instr.dst, MutexVal(rw=instr.rw, create_line=instr.line))
            self._advance(frame)
        elif isinstance(instr, ir.MakeWaitGroup):
            self._store(env, instr.dst, WaitGroupVal(create_line=instr.line))
            self._advance(frame)
        elif isinstance(instr, ir.MakeCond):
            self._store(env, instr.dst, CondVal(create_line=instr.line))
            self._advance(frame)
        elif isinstance(instr, ir.CondWait):
            cond = self.value_of(instr.cond, env)
            if goroutine.resume_action is not None and goroutine.resume_action[0] == "cond_done":
                goroutine.resume_action = None
                self._advance(frame)
            else:
                goroutine.park([Offer("condwait", cond)], instr.line, "cond-wait", self.clock)
        elif isinstance(instr, ir.CondSignal):
            cond = self.value_of(instr.cond, env)
            waiters = self.parked("condwait", cond)
            if waiters:
                targets = waiters if instr.broadcast else waiters[:1]
                for waiter in targets:
                    waiter.wake(("cond_done",))
            self._advance(frame)
        elif isinstance(instr, ir.MakeContext):
            ctx = ContextVal(Channel(0, "unit", instr.line))
            self._store(env, instr.dst, ctx)
            if instr.cancel_dst is not None:
                self._store(env, instr.cancel_dst, CancelFunc(ctx))
            self._advance(frame)
        elif isinstance(instr, ir.MakeSlice):
            size = int(self.value_of(instr.size, env) or 0)
            self._store(env, instr.dst, SliceVal([zero_value(instr.elem_type)] * size))
            self._advance(frame)
        elif isinstance(instr, ir.MakeStruct):
            fields = {name: self.value_of(op, env) for name, op in instr.fields}
            self._store(env, instr.dst, StructVal(instr.type_name, fields))
            self._advance(frame)
        elif isinstance(instr, ir.Send):
            self._exec_send(goroutine, instr)
        elif isinstance(instr, ir.Recv):
            self._exec_recv(goroutine, instr)
        elif isinstance(instr, ir.Close):
            self._close_channel(self.value_of(instr.chan, env))
            self._advance(frame)
        elif isinstance(instr, ir.Lock):
            self._exec_lock(goroutine, instr)
        elif isinstance(instr, ir.Unlock):
            self._unlock(self.value_of(instr.mutex, env), read=instr.read)
            self._advance(frame)
        elif isinstance(instr, ir.WgAdd):
            wg = self.value_of(instr.wg, env)
            if isinstance(wg, WaitGroupVal):
                wg.count += int(self.value_of(instr.delta, env) or 0)
            self._advance(frame)
        elif isinstance(instr, ir.WgDone):
            self._wg_done(self.value_of(instr.wg, env))
            self._advance(frame)
        elif isinstance(instr, ir.WgWait):
            self._exec_wg_wait(goroutine, instr)
        elif isinstance(instr, ir.Go):
            self._exec_go(goroutine, instr)
        elif isinstance(instr, ir.Call):
            self._exec_call(goroutine, instr)
        elif isinstance(instr, ir.Defer):
            target = self.value_of(instr.func_op, env)
            if isinstance(instr.func_op, ir.FuncRef) and instr.func_op.name.startswith("$"):
                target = instr.func_op
            args = [self.value_of(a, env) for a in instr.args]
            frame.deferred.append((target, args))
            self._advance(frame)
        elif isinstance(instr, ir.Fatal):
            testing = self.value_of(instr.testing, env)
            if isinstance(testing, TestingT):
                testing.failed = True
            self.test_failed = True
            self._advance(frame)
        elif isinstance(instr, ir.Sleep):
            duration = int(self.value_of(instr.duration, env) or 1)
            if goroutine.sleep_until > self.clock:
                pass  # already sleeping; nothing to do
            goroutine.sleep_until = self.clock + max(duration, 1)
            self._advance(frame)
        elif isinstance(instr, ir.Println):
            parts = [str(self.value_of(a, env)) for a in instr.args]
            self.output.append(" ".join(parts))
            self._advance(frame)
        elif isinstance(instr, ir.BinOp):
            self._store(env, instr.dst, self._binop(instr.op, instr, env))
            self._advance(frame)
        elif isinstance(instr, ir.UnOp):
            self._store(env, instr.dst, self._unop(instr, env))
            self._advance(frame)
        elif isinstance(instr, ir.Assign):
            self._store(env, instr.dst, self.value_of(instr.src, env))
            self._advance(frame)
        elif isinstance(instr, ir.FieldGet):
            obj = self.value_of(instr.obj, env)
            value = obj.fields.get(instr.field_name) if isinstance(obj, StructVal) else None
            self._store(env, instr.dst, value)
            self._advance(frame)
        elif isinstance(instr, ir.FieldSet):
            obj = self.value_of(instr.obj, env)
            if isinstance(obj, StructVal):
                obj.fields[instr.field_name] = self.value_of(instr.value, env)
            self._advance(frame)
        elif isinstance(instr, ir.IndexGet):
            seq = self.value_of(instr.seq, env)
            index = int(self.value_of(instr.index, env) or 0)
            value = seq.elems[index] if isinstance(seq, SliceVal) else None
            self._store(env, instr.dst, value)
            self._advance(frame)
        elif isinstance(instr, ir.IndexSet):
            seq = self.value_of(instr.seq, env)
            if isinstance(seq, SliceVal):
                index = int(self.value_of(instr.index, env) or 0)
                seq.elems[index] = self.value_of(instr.value, env)
            self._advance(frame)
        elif isinstance(instr, ir.CtxDone):
            ctx = self.value_of(instr.ctx, env)
            done = ctx.done if isinstance(ctx, ContextVal) else Channel(0, "unit")
            self._store(env, instr.dst, done)
            self._advance(frame)
        elif isinstance(instr, ir.Jump):
            self._jump(frame, instr.target)
        elif isinstance(instr, ir.CondJump):
            cond = self.value_of(instr.cond, env)
            self._jump(frame, instr.true_block if cond else instr.false_block)
        elif isinstance(instr, ir.Select):
            self._exec_select(goroutine, instr)
        elif isinstance(instr, ir.RangeNext):
            self._exec_range_next(goroutine, instr)
        elif isinstance(instr, ir.Return):
            values = [self.value_of(v, env) for v in instr.values]
            self._begin_return(goroutine, values)
        elif isinstance(instr, ir.Panic):
            raise GoPanic(self.value_of(instr.message, env))
        else:
            raise GoPanic(f"unknown instruction {type(instr).__name__}")

    # -- arithmetic ------------------------------------------------------------

    def _binop(self, op: str, instr: ir.BinOp, env: Env) -> Any:
        left = self.value_of(instr.left, env)
        right = self.value_of(instr.right, env)
        if op == "+":
            return (left or 0) + (right or 0) if not isinstance(left, str) else left + str(right)
        if op == "-":
            return (left or 0) - (right or 0)
        if op == "*":
            return (left or 0) * (right or 0)
        if op == "/":
            if not right:
                raise GoPanic("integer divide by zero")
            return (left or 0) // right
        if op == "%":
            if not right:
                raise GoPanic("integer divide by zero")
            return (left or 0) % right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return (left or 0) < (right or 0)
        if op == "<=":
            return (left or 0) <= (right or 0)
        if op == ">":
            return (left or 0) > (right or 0)
        if op == ">=":
            return (left or 0) >= (right or 0)
        if op == "&&":
            return bool(left) and bool(right)
        if op == "||":
            return bool(left) or bool(right)
        raise GoPanic(f"unknown binary op {op}")

    def _unop(self, instr: ir.UnOp, env: Env) -> Any:
        value = self.value_of(instr.operand, env)
        if instr.op == "!":
            return not value
        if instr.op == "-":
            return -(value or 0)
        if instr.op in ("len", "cap"):
            if isinstance(value, SliceVal):
                return len(value.elems)
            if isinstance(value, Channel):
                return len(value.buffer) if instr.op == "len" else value.capacity
            if isinstance(value, str):
                return len(value)
            return 0
        raise GoPanic(f"unknown unary op {instr.op}")

    # -- channel operations -------------------------------------------------

    def _exec_send(self, goroutine: Goroutine, instr: ir.Send) -> None:
        frame = goroutine.frame
        if goroutine.resume_action is not None and goroutine.resume_action[0] == "send_done":
            goroutine.resume_action = None
            self._advance(frame)
            return
        chan = self.value_of(instr.chan, frame.env)
        value = self.value_of(instr.value, frame.env)
        if not isinstance(chan, Channel):
            # sending to a nil channel blocks the goroutine forever (Go spec)
            goroutine.park([Offer("send", None, value)], instr.line, "send-nil", self.clock)
            return
        if self._try_send(goroutine, chan, value, instr.line):
            self._advance(frame)
        else:
            goroutine.park([Offer("send", chan, value)], instr.line, "send", self.clock)

    def _try_send(self, goroutine: Goroutine, chan: Channel, value: Any, line: int) -> bool:
        if chan.closed:
            raise GoPanic("send on closed channel")
        receivers = self.parked("recv", chan)
        if receivers:
            partner = receivers[0]
            self._complete_recv(partner, chan, value, True)
            return True
        if len(chan.buffer) < chan.capacity:
            chan.buffer.append(value)
            return True
        return False

    def _exec_recv(self, goroutine: Goroutine, instr: ir.Recv) -> None:
        frame = goroutine.frame
        if goroutine.resume_action is not None and goroutine.resume_action[0] == "recv_done":
            _, _, value, ok = goroutine.resume_action
            goroutine.resume_action = None
            self._store(frame.env, instr.dst, value)
            self._store(frame.env, instr.ok_dst, ok)
            self._advance(frame)
            return
        chan = self.value_of(instr.chan, frame.env)
        if not isinstance(chan, Channel):
            # receive on nil channel blocks forever
            goroutine.park([Offer("recv", None)], instr.line, "recv-nil", self.clock)
            return
        ready, value, ok = self._try_recv(chan)
        if ready:
            self._store(frame.env, instr.dst, value)
            self._store(frame.env, instr.ok_dst, ok)
            self._advance(frame)
        else:
            goroutine.park([Offer("recv", chan)], instr.line, "recv", self.clock)

    def _try_recv(self, chan: Channel) -> Tuple[bool, Any, bool]:
        if chan.buffer:
            value = chan.buffer.popleft()
            # refill the freed slot from a parked sender, if any
            senders = self.parked("send", chan)
            if senders:
                partner = senders[0]
                offer = next(o for o in partner.offers if o.kind == "send" and o.obj is chan)
                chan.buffer.append(offer.value)
                partner.wake(("send_done", chan))
            return True, value, True
        senders = self.parked("send", chan)
        if senders:
            partner = senders[0]
            offer = next(o for o in partner.offers if o.kind == "send" and o.obj is chan)
            partner.wake(("send_done", chan))
            return True, offer.value, True
        if chan.closed:
            return True, zero_value(chan.elem_type), False
        return False, None, False

    def _complete_recv(self, partner: Goroutine, chan: Channel, value: Any, ok: bool) -> None:
        partner.wake(("recv_done", chan, value, ok))

    def _close_channel(self, chan: Any) -> None:
        if not isinstance(chan, Channel):
            raise GoPanic("close of nil channel")
        if chan.closed:
            raise GoPanic("close of closed channel")
        chan.closed = True
        self._wake_all_on(chan)

    # -- select ------------------------------------------------------------

    def _exec_select(self, goroutine: Goroutine, instr: ir.Select) -> None:
        frame = goroutine.frame
        if goroutine.resume_action is not None:
            action = goroutine.resume_action
            goroutine.resume_action = None
            if action[0] == "recv_done":
                _, chan, value, ok = action
                case = next(
                    c
                    for c in instr.cases
                    if c.kind == "recv" and self.value_of(c.chan, frame.env) is chan
                )
                self._store(frame.env, case.dst, value)
                self._store(frame.env, case.ok_dst, ok)
                self._jump(frame, case.target)
                return
            if action[0] == "send_done":
                chan = action[1]
                case = next(
                    c
                    for c in instr.cases
                    if c.kind == "send" and self.value_of(c.chan, frame.env) is chan
                )
                self._jump(frame, case.target)
                return
        ready: List[ir.SelectCase] = []
        for case in instr.cases:
            chan = self.value_of(case.chan, frame.env)
            if not isinstance(chan, Channel):
                continue  # nil channel case: never ready
            if case.kind == "recv":
                if chan.buffer or chan.closed or self.parked("send", chan):
                    ready.append(case)
            else:
                if chan.closed or len(chan.buffer) < chan.capacity or self.parked("recv", chan):
                    ready.append(case)
        if ready:
            case = ready[self.policy.pick("select", ready, self)]
            chan = self.value_of(case.chan, frame.env)
            if case.kind == "recv":
                ok_ready, value, ok = self._try_recv(chan)
                if not ok_ready:  # racy wakeups cannot happen (sequential), but be safe
                    goroutine.park(self._select_offers(instr, frame), instr.line, "select", self.clock)
                    return
                self._store(frame.env, case.dst, value)
                self._store(frame.env, case.ok_dst, ok)
            else:
                value = self.value_of(case.value, frame.env) if case.value is not None else None
                if not self._try_send(goroutine, chan, value, instr.line):
                    goroutine.park(self._select_offers(instr, frame), instr.line, "select", self.clock)
                    return
            self._jump(frame, case.target)
            return
        if instr.default_target is not None:
            self._jump(frame, instr.default_target)
            return
        goroutine.park(self._select_offers(instr, frame), instr.line, "select", self.clock)

    def _select_offers(self, instr: ir.Select, frame: Frame) -> List[Offer]:
        offers: List[Offer] = []
        for case in instr.cases:
            chan = self.value_of(case.chan, frame.env)
            if not isinstance(chan, Channel):
                continue
            if case.kind == "recv":
                offers.append(Offer("recv", chan))
            else:
                value = self.value_of(case.value, frame.env) if case.value is not None else None
                offers.append(Offer("send", chan, value))
        return offers

    def _exec_range_next(self, goroutine: Goroutine, instr: ir.RangeNext) -> None:
        frame = goroutine.frame
        if goroutine.resume_action is not None and goroutine.resume_action[0] == "recv_done":
            _, _, value, ok = goroutine.resume_action
            goroutine.resume_action = None
            if ok:
                self._store(frame.env, instr.dst, value)
                self._jump(frame, instr.body)
            else:
                self._jump(frame, instr.done)
            return
        chan = self.value_of(instr.chan, frame.env)
        if not isinstance(chan, Channel):
            goroutine.park([Offer("recv", None)], instr.line, "recv-nil", self.clock)
            return
        ready, value, ok = self._try_recv(chan)
        if not ready:
            goroutine.park([Offer("recv", chan)], instr.line, "range", self.clock)
            return
        if ok:
            self._store(frame.env, instr.dst, value)
            self._jump(frame, instr.body)
        else:
            self._jump(frame, instr.done)

    # -- locks / waitgroups ---------------------------------------------------

    def _exec_lock(self, goroutine: Goroutine, instr: ir.Lock) -> None:
        frame = goroutine.frame
        mutex = self.value_of(instr.mutex, frame.env)
        if not isinstance(mutex, MutexVal):
            raise GoPanic("lock of non-mutex value")
        if instr.read:
            if mutex.can_rlock():
                mutex.readers += 1
                self._advance(frame)
            else:
                goroutine.park([Offer("rlock", mutex)], instr.line, "rlock", self.clock)
            return
        if mutex.can_lock():
            mutex.locked_by = goroutine.gid
            self._advance(frame)
        else:
            goroutine.park([Offer("lock", mutex)], instr.line, "lock", self.clock)

    def _unlock(self, mutex: Any, read: bool) -> None:
        if not isinstance(mutex, MutexVal):
            raise GoPanic("unlock of non-mutex value")
        if read:
            if mutex.readers <= 0:
                raise GoPanic("RUnlock of unlocked RWMutex")
            mutex.readers -= 1
        else:
            if mutex.locked_by is None:
                raise GoPanic("unlock of unlocked mutex")
            mutex.locked_by = None
        self._wake_all_on(mutex)

    def _wg_done(self, wg: Any) -> None:
        if not isinstance(wg, WaitGroupVal):
            raise GoPanic("Done on non-WaitGroup")
        wg.count -= 1
        if wg.count < 0:
            raise GoPanic("negative WaitGroup counter")
        if wg.count == 0:
            self._wake_all_on(wg)

    def _exec_wg_wait(self, goroutine: Goroutine, instr: ir.WgWait) -> None:
        frame = goroutine.frame
        wg = self.value_of(instr.wg, frame.env)
        if not isinstance(wg, WaitGroupVal) or wg.count == 0:
            self._advance(frame)
        else:
            goroutine.park([Offer("wg", wg)], instr.line, "wg-wait", self.clock)

    # -- calls / goroutines --------------------------------------------------

    def _exec_go(self, goroutine: Goroutine, instr: ir.Go) -> None:
        frame = goroutine.frame
        target = self.value_of(instr.func_op, frame.env)
        args = [self.value_of(a, frame.env) for a in instr.args]
        func, env = self._resolve_callable(target, args)
        if func is not None:
            child = self.spawn(func, env)
            child.park_time = self.clock
        self._advance(frame)

    def _exec_call(self, goroutine: Goroutine, instr: ir.Call) -> None:
        frame = goroutine.frame
        target = self.value_of(instr.func_op, frame.env)
        args = [self.value_of(a, frame.env) for a in instr.args]
        if isinstance(target, CancelFunc):
            if not target.ctx.done.closed:
                target.ctx.done.closed = True
                self._wake_all_on(target.ctx.done)
            self._advance(frame)
            return
        func, env = self._resolve_callable(target, args)
        if func is None:
            # external stub: zero results
            for dst in instr.dsts:
                frame.env.assign(dst.name, 0)
            self._advance(frame)
            return
        new_frame = Frame(func, env, dsts=instr.dsts)
        goroutine.frames.append(new_frame)
        # note: caller PC advances when the callee frame returns

    def _push_call(self, goroutine: Goroutine, target: Any, args: List[Any], dsts: List[ir.Var]) -> None:
        func, env = self._resolve_callable(target, args)
        if func is None:
            return
        goroutine.frames.append(Frame(func, env, dsts=dsts))

    def _resolve_callable(self, target: Any, args: List[Any]) -> Tuple[Optional[ir.Function], Optional[Env]]:
        """Resolve a call target into (function, prepared environment)."""
        if isinstance(target, Closure):
            func = self.program.functions.get(target.func_name)
            if func is None:
                return None, None
            env = Env(parent=target.env)
            self._bind_params(func, env, args)
            return func, env
        if isinstance(target, ir.FuncRef):
            func = self.program.functions.get(target.name)
            if func is None:
                return None, None
            env = Env()
            self._bind_params(func, env, args)
            return func, env
        if isinstance(target, ir.MethodRef):
            # dynamic dispatch on the receiver's struct type
            if args and isinstance(args[0], StructVal):
                qualified = f"{args[0].type_name}.{target.name}"
                func = self.program.functions.get(qualified)
                if func is not None:
                    env = Env()
                    self._bind_params(func, env, args)
                    return func, env
            return None, None
        return None, None

    def _bind_params(self, func: ir.Function, env: Env, args: List[Any]) -> None:
        for i, param in enumerate(func.params):
            env.vars[param] = args[i] if i < len(args) else None
