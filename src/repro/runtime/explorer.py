"""Systematic schedule exploration: the dynamic oracle as a *checker*.

``run_program`` samples interleavings from a seeded RNG — the paper's
random-sleep validation (§5.1). Sampling can miss rare interleavings, so a
"no schedule leaks" claim built on it is only probabilistic. This module
replaces sampling with bounded systematic search:

* every nondeterministic decision (which goroutine steps, which ``select``
  case commits) is a *choice point*; the explorer runs the program to
  completion, records the choice points it passed, and then backtracks
  depth-first over the untried alternatives — stateless model checking in
  the style of VeriSoft/GoAT;
* commuting steps are not explored in both orders. Each pending step gets a
  *footprint* (the channels/mutexes/waitgroups/shared variables it touches);
  steps with disjoint footprints are independent, and a sleep-set discipline
  (Godefroid) prunes the redundant orderings. Steps with an *empty*
  footprint (pure goroutine-local work) never branch at all;
* exploration is bounded by a run budget, a per-run branching (depth) bound
  and an optional preemption bound; :class:`Exploration.complete` reports
  honestly whether the whole space within the program's semantics was
  covered or the bound was hit.

Every explored outcome carries its choice trace, and
:class:`ReplayScheduler` re-executes any trace deterministically — a
discovered leaking schedule is a reproducible artifact, not a lucky seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.runtime.choices import Choice, ChoicePolicy, ReplayDivergence
from repro.runtime.interp import RUNNABLE, Goroutine, Interpreter
from repro.runtime.scheduler import ExecutionResult, replay_trace, run_program
from repro.runtime.values import (
    CancelFunc,
    Channel,
    CondVal,
    Env,
    MutexVal,
    SliceVal,
    StructVal,
    WaitGroupVal,
)
from repro.ssa import ir
from repro.ssa.builder import (
    DEFER_CLOSE,
    DEFER_LOCK,
    DEFER_RLOCK,
    DEFER_RUNLOCK,
    DEFER_SEND,
    DEFER_UNLOCK,
    DEFER_WG_DONE,
)

Footprint = FrozenSet[Hashable]

#: footprint token that conflicts with every other footprint
CONFLICT_ALL = "*"

_EMPTY: Footprint = frozenset()
_WILD: Footprint = frozenset({CONFLICT_ALL})


def independent(a: Footprint, b: Footprint) -> bool:
    """Two steps commute iff their footprints are disjoint and bounded."""
    if CONFLICT_ALL in a or CONFLICT_ALL in b:
        return False
    return not (a & b)


# ---------------------------------------------------------------------------
# footprints


def _operand_value(op: Optional[ir.Operand], env: Env) -> Any:
    """Resolve an operand *without* interpreter side effects (no closures)."""
    if isinstance(op, ir.Var):
        try:
            return env.lookup(op.name)
        except KeyError:
            return None
    if isinstance(op, ir.Const):
        return op.value
    return None


def _sync_token(value: Any) -> Hashable:
    if isinstance(value, (Channel, MutexVal, WaitGroupVal, CondVal)):
        return (type(value).__name__, value.id)
    # nil channels / unresolved primitives: one shared bucket is conservative
    return ("nil-primitive",)


def _cells(env: Env, *operands: Optional[ir.Operand]) -> set:
    """Shared-variable cells an instruction reads or writes.

    A cell only matters when its owning frame has been captured by a
    closure (``Env.shared``): variables in never-captured frames cannot be
    reached by any other goroutine, so touching them commutes with
    everything.
    """
    cells: set = set()
    for op in operands:
        if not isinstance(op, ir.Var):
            continue
        owner = env.owner_of(op.name)
        if owner is not None and owner.shared:
            cells.add(("var", owner.shared_serial, op.name))
    return cells


def step_footprint(interp: Interpreter, goroutine: Goroutine) -> Footprint:
    """Shared state the goroutine's *next* step may touch.

    Empty means the step is invisible to every other goroutine and need
    never be reordered against anything; ``{CONFLICT_ALL}`` means "assume it
    touches everything".
    """
    frame = goroutine.frame
    env = frame.env
    if frame.returning:
        if frame.deferred:
            target, dargs = frame.deferred[-1]
            if isinstance(target, ir.FuncRef):
                if target.name in (
                    DEFER_CLOSE,
                    DEFER_SEND,
                    DEFER_UNLOCK,
                    DEFER_RUNLOCK,
                    DEFER_LOCK,
                    DEFER_RLOCK,
                    DEFER_WG_DONE,
                ):
                    return frozenset({_sync_token(dargs[0] if dargs else None)})
            return _EMPTY  # a deferred call just pushes a frame
        # frame pop: return values land in the caller's env
        if len(goroutine.frames) >= 2 and frame.dsts:
            caller_env = goroutine.frames[-2].env
            return frozenset(_cells(caller_env, *frame.dsts))
        return _EMPTY
    instr = frame.current_instr()
    if instr is None:
        return _EMPTY
    return _instr_footprint(instr, env)


def _instr_footprint(instr: ir.Instr, env: Env) -> Footprint:
    if isinstance(instr, (ir.Send, ir.Recv, ir.Close, ir.RangeNext)):
        chan = _sync_token(_operand_value(instr.chan, env))
        extra: List[Optional[ir.Operand]] = [instr.chan]
        if isinstance(instr, ir.Send):
            extra.append(instr.value)
        if isinstance(instr, ir.Recv):
            extra.extend([instr.dst, instr.ok_dst])
        if isinstance(instr, ir.RangeNext):
            extra.append(instr.dst)
        return frozenset({chan} | _cells(env, *extra))
    if isinstance(instr, ir.Select):
        tokens: set = set()
        ops: List[Optional[ir.Operand]] = []
        for case in instr.cases:
            tokens.add(_sync_token(_operand_value(case.chan, env)))
            ops.extend([case.chan, case.value, case.dst, case.ok_dst])
        return frozenset(tokens | _cells(env, *ops))
    if isinstance(instr, (ir.Lock, ir.Unlock)):
        return frozenset({_sync_token(_operand_value(instr.mutex, env))} | _cells(env, instr.mutex))
    if isinstance(instr, (ir.WgAdd, ir.WgDone, ir.WgWait)):
        return frozenset({_sync_token(_operand_value(instr.wg, env))} | _cells(env, instr.wg))
    if isinstance(instr, (ir.CondWait, ir.CondSignal)):
        return frozenset({_sync_token(_operand_value(instr.cond, env))} | _cells(env, instr.cond))
    if isinstance(instr, ir.Println):
        return frozenset({("io",)} | _cells(env, *instr.args))
    if isinstance(instr, ir.Fatal):
        return frozenset({("test",)})
    if isinstance(instr, ir.Sleep):
        # sleeping interacts with the virtual clock every step advances;
        # modelled conservatively (see also the sleeper check in the policy)
        return frozenset({("clock",)})
    if isinstance(instr, ir.Panic):
        return _WILD  # a panic kills the whole program
    if isinstance(instr, ir.Go):
        return frozenset(_cells(env, *instr.args))
    if isinstance(instr, ir.Call):
        target = _operand_value(instr.func_op, env)
        cells = _cells(env, *instr.args, instr.func_op, *instr.dsts)
        if isinstance(target, CancelFunc):
            return frozenset({_sync_token(target.ctx.done)} | cells)
        return frozenset(cells)
    if isinstance(instr, ir.Defer):
        return frozenset(_cells(env, instr.func_op, *instr.args))
    if isinstance(instr, ir.Assign):
        return frozenset(_cells(env, instr.dst, instr.src))
    if isinstance(instr, ir.BinOp):
        return frozenset(_cells(env, instr.dst, instr.left, instr.right))
    if isinstance(instr, ir.UnOp):
        return frozenset(_cells(env, instr.dst, instr.operand))
    if isinstance(instr, (ir.FieldGet, ir.FieldSet)):
        obj = _operand_value(instr.obj, env)
        tokens = set()
        if isinstance(obj, StructVal):
            tokens.add(("field", obj.id, instr.field_name))
        ops = [instr.obj]
        ops.append(instr.dst if isinstance(instr, ir.FieldGet) else instr.value)
        return frozenset(tokens | _cells(env, *ops))
    if isinstance(instr, (ir.IndexGet, ir.IndexSet)):
        seq = _operand_value(instr.seq, env)
        tokens = set()
        if isinstance(seq, SliceVal):
            tokens.add(("slice", seq.id))
        ops = [instr.seq, instr.index]
        ops.append(instr.dst if isinstance(instr, ir.IndexGet) else instr.value)
        return frozenset(tokens | _cells(env, *ops))
    if isinstance(instr, ir.CtxDone):
        return frozenset(_cells(env, instr.ctx, instr.dst))
    if isinstance(
        instr,
        (
            ir.MakeChan,
            ir.MakeMutex,
            ir.MakeWaitGroup,
            ir.MakeCond,
            ir.MakeSlice,
            ir.MakeStruct,
        ),
    ):
        return frozenset(_cells(env, instr.dst))
    if isinstance(instr, ir.MakeContext):
        return frozenset(_cells(env, instr.dst, instr.cancel_dst))
    if isinstance(instr, ir.CondJump):
        return frozenset(_cells(env, instr.cond))
    if isinstance(instr, ir.Jump):
        return _EMPTY
    if isinstance(instr, ir.Return):
        return frozenset(_cells(env, *instr.values))
    return _WILD  # unknown instruction: assume it touches everything


# ---------------------------------------------------------------------------
# outcome signatures


def outcome_signature(result: ExecutionResult) -> tuple:
    """What makes two executions "the same outcome".

    Deliberately goroutine-id-free: commuting independent steps (e.g. two
    unrelated ``go`` statements) permutes gid assignment without changing
    any observable behaviour.
    """
    leaks = tuple(
        sorted((leak.function, leak.blocked_line, leak.blocked_kind) for leak in result.leaked)
    )
    return (
        tuple(result.output),
        result.panicked,
        result.panic_message,
        result.test_failed,
        result.global_deadlock,
        tuple(sorted(set(result.deadlock_lines))),
        leaks,
        result.hit_step_limit,
    )


# ---------------------------------------------------------------------------
# the directed policy


class _PrunedRun(Exception):
    """Every enabled step is asleep: this continuation is covered elsewhere."""


@dataclass
class _BranchPoint:
    pos: int  # index of this choice in the run's trace
    kind: str  # 'sched' | 'select'
    options: int
    candidates: List[int]  # option indices, exploration order; [0] was taken
    gids: List[int]  # goroutine ids per candidate (sched only)
    fps: List[Footprint]  # footprint per candidate (sched only)
    sleep: Dict[int, Footprint]  # sleep set snapshot before this choice


@dataclass
class _Bounds:
    max_branch: int
    preemption_bound: Optional[int]
    prune: bool


class _DirectedPolicy(ChoicePolicy):
    """Replay a forced prefix, then extend depth-first, recording branches."""

    def __init__(
        self,
        prefix: Sequence[Choice],
        branch_sleep: Dict[int, Footprint],
        bounds: _Bounds,
    ):
        super().__init__()
        self._prefix = list(prefix)
        self._branch_sleep = dict(branch_sleep)
        self._bounds = bounds
        self.sleep: Dict[int, Footprint] = {}
        self.branch_points: List[_BranchPoint] = []
        self.truncated = False
        self._last_gid: Optional[int] = None
        self._preemptions = 0

    # -- bookkeeping ------------------------------------------------------

    def _note_step(self, goroutine: Goroutine, options: Sequence[Goroutine]) -> None:
        gid = goroutine.gid
        if self._last_gid is not None and gid != self._last_gid:
            if any(g.gid == self._last_gid for g in options):
                self._preemptions += 1
        self._last_gid = gid

    def _wake_dependents(self, fp: Footprint) -> None:
        if self.sleep:
            self.sleep = {
                gid: slept for gid, slept in self.sleep.items() if independent(slept, fp)
            }

    # -- decisions --------------------------------------------------------

    def _decide(self, kind: str, options: Sequence[Any], interp: Any) -> int:
        pos = len(self.trace)
        if pos < len(self._prefix):
            return self._replay_prefix(pos, kind, options, interp)
        if kind == "sched":
            return self._decide_sched(pos, options, interp)
        return self._decide_select(pos, options)

    def _replay_prefix(self, pos: int, kind: str, options: Sequence[Any], interp: Any) -> int:
        recorded = self._prefix[pos]
        if recorded.kind != kind or recorded.options != len(options):
            raise ReplayDivergence(
                f"prefix choice {pos}: recorded {recorded.kind}/{recorded.options}, "
                f"program offers {kind}/{len(options)}"
            )
        if kind == "sched":
            chosen = options[recorded.index]
            fp = step_footprint(interp, chosen)
            if fp:  # invisible steps don't count against the preemption budget
                self._note_step(chosen, options)
        if pos == len(self._prefix) - 1:
            # the branch point itself: the parent already filtered this
            # sleep set against the substituted choice's footprint
            self.sleep = dict(self._branch_sleep)
        return recorded.index

    def _decide_sched(self, pos: int, options: Sequence[Goroutine], interp: Any) -> int:
        bounds = self._bounds
        sleeper_active = any(
            g.status == RUNNABLE and g.sleep_until > interp.clock
            for g in interp.goroutines.values()
        )
        if bounds.prune and not sleeper_active:
            fps = [step_footprint(interp, g) for g in options]
            for i, fp in enumerate(fps):
                if not fp:
                    return i  # invisible: run it now, nothing to reorder
        else:
            # timers in play (or pruning off): assume everything conflicts
            fps = [_WILD for _ in options]

        candidates = [i for i, g in enumerate(options) if g.gid not in self.sleep]
        if not candidates:
            raise _PrunedRun()
        if (
            bounds.preemption_bound is not None
            and self._preemptions >= bounds.preemption_bound
            and self._last_gid is not None
        ):
            same = [i for i in candidates if options[i].gid == self._last_gid]
            if same:
                if len(candidates) > 1:
                    self.truncated = True
                candidates = same

        if len(candidates) > 1:
            if len(self.branch_points) < bounds.max_branch:
                self.branch_points.append(
                    _BranchPoint(
                        pos=pos,
                        kind="sched",
                        options=len(options),
                        candidates=list(candidates),
                        gids=[options[i].gid for i in candidates],
                        fps=[fps[i] for i in candidates],
                        sleep=dict(self.sleep),
                    )
                )
            else:
                self.truncated = True
        chosen = candidates[0]
        self._wake_dependents(fps[chosen])
        self._note_step(options[chosen], options)
        return chosen

    def _decide_select(self, pos: int, options: Sequence[Any]) -> int:
        if len(options) > 1:
            if len(self.branch_points) < self._bounds.max_branch:
                self.branch_points.append(
                    _BranchPoint(
                        pos=pos,
                        kind="select",
                        options=len(options),
                        candidates=list(range(len(options))),
                        gids=[],
                        fps=[],
                        sleep=dict(self.sleep),
                    )
                )
            else:
                self.truncated = True
        return 0


# ---------------------------------------------------------------------------
# exploration driver


@dataclass
class _WorkItem:
    prefix: List[Choice]
    sleep: Dict[int, Footprint]


@dataclass
class Exploration:
    """Everything a bounded systematic search established."""

    entry: str
    runs: int = 0
    pruned_runs: int = 0
    step_limited_runs: int = 0
    backtracks: int = 0  # alternative prefixes scheduled for exploration
    total_steps: int = 0  # interpreter steps summed across every run
    complete: bool = True  # False whenever any bound truncated the search
    outcomes: List[ExecutionResult] = field(default_factory=list)
    _signatures: Dict[tuple, ExecutionResult] = field(default_factory=dict)
    trace: Optional[Any] = None  # the run's repro.obs.Collector, if any

    def record(self, result: ExecutionResult) -> bool:
        signature = outcome_signature(result)
        if signature in self._signatures:
            return False
        self._signatures[signature] = result
        self.outcomes.append(result)
        return True

    def signatures(self) -> List[tuple]:
        return list(self._signatures)

    def leaking(self) -> List[ExecutionResult]:
        return [r for r in self.outcomes if r.blocked_forever]

    def clean(self) -> List[ExecutionResult]:
        return [r for r in self.outcomes if not r.blocked_forever and not r.panicked]

    @property
    def any_leak(self) -> bool:
        return bool(self.leaking())

    @property
    def leak_free(self) -> bool:
        """Proven leak-freedom: no leak found AND the search was complete."""
        return self.complete and not self.any_leak

    def render(self) -> str:
        status = "complete" if self.complete else "bounded"
        lines = [
            f"explored {self.runs} schedule(s) ({status}; {self.pruned_runs} pruned), "
            f"{len(self.outcomes)} distinct outcome(s), {len(self.leaking())} leaking"
        ]
        for result in self.outcomes:
            if result.blocked_forever:
                where = ", ".join(
                    f"{l.function}:{l.blocked_line} ({l.blocked_kind})" for l in result.leaked
                )
                kind = "DEADLOCK" if result.global_deadlock else "LEAK"
                lines.append(f"  {kind}: {where or sorted(set(result.deadlock_lines))}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable summary (schema shared with ``repro.obs.stats``)."""
        from repro.obs import SCHEMA, snapshot

        payload: dict = {
            "schema": SCHEMA,
            "kind": "exploration",
            "entry": self.entry,
            "runs": self.runs,
            "pruned_runs": self.pruned_runs,
            "step_limited_runs": self.step_limited_runs,
            "backtracks": self.backtracks,
            "total_steps": self.total_steps,
            "complete": self.complete,
            "any_leak": self.any_leak,
            "outcomes": [
                {
                    "blocked_forever": o.blocked_forever,
                    "global_deadlock": o.global_deadlock,
                    "panicked": o.panicked,
                    "test_failed": o.test_failed,
                    "output": list(o.output),
                    "leaked": [
                        {
                            "function": l.function,
                            "line": l.blocked_line,
                            "kind": l.blocked_kind,
                        }
                        for l in o.leaked
                    ],
                    "choices": len(o.choice_trace),
                }
                for o in self.outcomes
            ],
        }
        if self.trace:
            payload["stats"] = snapshot(self.trace)
        return payload


def explore(
    program: ir.Program,
    entry: str = "main",
    max_runs: int = 512,
    max_branch: int = 96,
    preemption_bound: Optional[int] = None,
    max_steps: int = 20_000,
    max_total_steps: Optional[int] = None,
    prune: bool = True,
    args: Optional[List[Any]] = None,
    collector=None,
) -> Exploration:
    """Depth-first enumerate schedules of ``entry`` up to the given bounds.

    Returns an :class:`Exploration`; ``complete`` is True only when every
    interleaving (modulo commutation of independent steps) was covered.
    ``collector`` (a :class:`repro.obs.Collector`) receives an ``explore``
    span plus run/backtrack/prune counters, aggregated across every
    program execution the search performs.

    ``max_total_steps`` bounds the *cumulative* interpreter steps across
    all runs — a deterministic analogue of a wall-clock budget, used by
    fuzz campaigns where one pathological generated program must not eat
    the whole campaign. Unlike a wall-clock cut-off it truncates at the
    same run on every re-execution, so triage stays replayable.
    """
    from repro.obs import NULL

    obs = collector or NULL
    bounds = _Bounds(max_branch=max_branch, preemption_bound=preemption_bound, prune=prune)
    exploration = Exploration(entry=entry)
    stack: List[_WorkItem] = [_WorkItem(prefix=[], sleep={})]
    with obs.span("explore"):
        while stack:
            if exploration.runs >= max_runs:
                exploration.complete = False
                break
            if max_total_steps is not None and exploration.total_steps >= max_total_steps:
                exploration.complete = False
                if obs:
                    obs.count("explore.step-budget-exhausted")
                break
            item = stack.pop()
            policy = _DirectedPolicy(item.prefix, item.sleep, bounds)
            try:
                result: Optional[ExecutionResult] = run_program(
                    program,
                    entry=entry,
                    seed=exploration.runs,
                    max_steps=max_steps,
                    args=args,
                    policy=policy,
                    collector=collector,
                )
            except _PrunedRun:
                result = None
                exploration.pruned_runs += 1
                if obs:
                    obs.count("explore.sleep-prunes")
            exploration.runs += 1
            if obs:
                obs.count("explore.runs")
            if result is not None:
                exploration.total_steps += result.steps
                exploration.record(result)
                if result.hit_step_limit:
                    exploration.step_limited_runs += 1
                    exploration.complete = False
                    if obs:
                        obs.count("explore.step-limited")
            if policy.truncated:
                exploration.complete = False
            for bp in policy.branch_points:
                base = list(policy.trace[: bp.pos])
                for j in range(1, len(bp.candidates)):
                    exploration.backtracks += 1
                    stack.append(
                        _WorkItem(
                            prefix=base + [Choice(bp.kind, bp.options, bp.candidates[j])],
                            sleep=_sibling_sleep(bp, j),
                        )
                    )
    if obs:
        obs.count("explore.backtracks", exploration.backtracks)
        obs.count("explore.outcomes", len(exploration.outcomes))
        obs.count("explore.leaking", len(exploration.leaking()))
        exploration.trace = obs
    return exploration


def _sibling_sleep(bp: _BranchPoint, j: int) -> Dict[int, Footprint]:
    """Sleep set for the j-th candidate: earlier siblings go to sleep."""
    if bp.kind != "sched":
        return dict(bp.sleep)
    merged = dict(bp.sleep)
    for k in range(j):
        merged[bp.gids[k]] = bp.fps[k]
    own = bp.fps[j]
    return {gid: fp for gid, fp in merged.items() if independent(fp, own)}


# ---------------------------------------------------------------------------
# replay


class ReplayScheduler:
    """Deterministically re-run one discovered schedule from its trace.

    ``ReplayScheduler(program, result.choice_trace).run()`` reproduces the
    exact execution that produced ``result`` — output, leaks, step counts.
    """

    def __init__(
        self,
        program: ir.Program,
        trace: Sequence[Choice],
        entry: str = "main",
        seed: int = 0,
        max_steps: int = 100_000,
        args: Optional[List[Any]] = None,
    ):
        self.program = program
        self.trace = list(trace)
        self.entry = entry
        self.seed = seed
        self.max_steps = max_steps
        self.args = args

    def run(self) -> ExecutionResult:
        return replay_trace(
            self.program,
            self.trace,
            entry=self.entry,
            seed=self.seed,
            max_steps=self.max_steps,
            args=self.args,
        )

    def reproduces(self, result: ExecutionResult) -> bool:
        """Replay and compare against an earlier result's observables."""
        return outcome_signature(self.run()) == outcome_signature(result)
