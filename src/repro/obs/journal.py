"""The persistent telemetry journal and the ``repro top`` view.

The analysis daemon appends **one JSONL record per request** — trace id,
method, tenant, queue wait, end-to-end latency, per-stage totals, cache
lineage, incident count, outcome (including ``overloaded``/``quota`` for
shed requests: the journal records every outcome, served or not), and
(for slow requests) the full span-tree exemplar — so "which request was
slow, where, and why" is answerable
after the daemon restarts, after the client disconnected, and across
daemon generations. ``repro top`` renders throughput, latency
percentiles, cache hit rate and incident rate from the journal alone.

Rotation is size-bounded: when the active file exceeds ``max_bytes`` it
is shifted to ``<path>.1`` (existing rotations shifting up, the oldest
beyond ``max_files`` dropped), so a long-lived daemon's telemetry
footprint is bounded no matter the traffic.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional

from repro.obs.collector import Dist


class TelemetryJournal:
    """Append-only JSONL journal with size-bounded rotation."""

    def __init__(self, path: str, max_bytes: int = 4_000_000, max_files: int = 3):
        self.path = path
        self.max_bytes = max(1, max_bytes)
        self.max_files = max(1, max_files)
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    # -- writing -----------------------------------------------------------

    def append(self, record: dict) -> None:
        """Write one record; rotate first when the active file is full."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            if (
                os.path.exists(self.path)
                and os.path.getsize(self.path) + len(line) > self.max_bytes
            ):
                self._rotate()
            with open(self.path, "a") as handle:
                handle.write(line)

    def _rotate(self) -> None:
        oldest = f"{self.path}.{self.max_files - 1}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.max_files - 2, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        if self.max_files > 1:
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)

    # -- reading -----------------------------------------------------------

    def files(self) -> List[str]:
        """Existing journal files, oldest first (rotations, then active)."""
        out = [
            f"{self.path}.{index}"
            for index in range(self.max_files - 1, 0, -1)
            if os.path.exists(f"{self.path}.{index}")
        ]
        if os.path.exists(self.path):
            out.append(self.path)
        return out

    def iter_records(self) -> Iterator[dict]:
        """Every surviving record, oldest first, across rotations; torn or
        corrupt lines (a crash mid-write) are skipped, not fatal."""
        for path in self.files():
            try:
                with open(path) as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except ValueError:
                            continue
                        if isinstance(record, dict):
                            yield record
            except OSError:
                continue

    def read(self, last: Optional[int] = None) -> List[dict]:
        records = list(self.iter_records())
        if last is not None and last >= 0:
            records = records[-last:]
        return records


#: journal outcomes for requests answered by admission/scheduling instead
#: of a handler (the daemon records every outcome, served or shed)
SHED_OUTCOMES = ("overloaded", "quota")


def request_record(
    *,
    trace_id: str,
    method: str,
    outcome: str,
    elapsed_seconds: float,
    queue_wait_seconds: float = 0.0,
    tenant: Optional[str] = None,
    priority: Optional[str] = None,
    code: Optional[int] = None,
    reports: Optional[int] = None,
    generation: Optional[int] = None,
    stages: Optional[Dict[str, float]] = None,
    cache: Optional[dict] = None,
    incidents: int = 0,
    slow: bool = False,
    exemplar: Optional[dict] = None,
) -> dict:
    """The one journal record shape the daemon writes per request."""
    record: dict = {
        "ts": time.time(),
        "trace_id": trace_id,
        "method": method,
        "outcome": outcome,
        "elapsed_seconds": round(elapsed_seconds, 6),
        "queue_wait_seconds": round(queue_wait_seconds, 6),
        "incidents": incidents,
    }
    if tenant is not None:
        record["tenant"] = tenant
    if priority is not None and priority != "normal":
        record["priority"] = priority
    if code is not None:
        record["code"] = code
    if reports is not None:
        record["reports"] = reports
    if generation is not None:
        record["generation"] = generation
    if stages:
        record["stages"] = {name: round(sec, 6) for name, sec in stages.items()}
    if cache:
        record["cache"] = cache
    if slow:
        record["slow"] = True
    if exemplar is not None:
        record["exemplar"] = exemplar
    return record


def filter_records(
    records: List[dict], tenant: Optional[str] = None
) -> List[dict]:
    """Journal-record filter for ``repro top --tenant``. Records written
    before multi-tenancy carry no tenant field and count as 'default'."""
    if tenant is None:
        return records
    return [r for r in records if str(r.get("tenant", "default")) == tenant]


def summarize(records: List[dict]) -> dict:
    """The ``repro top`` aggregates, as plain data (rendered below,
    asserted in tests, reusable by dashboards)."""
    latency, queue_wait = Dist(), Dist()
    methods: Dict[str, int] = {}
    tenants: Dict[str, dict] = {}
    daemons: Dict[str, dict] = {}
    errors = incidents = slow = sheds = 0
    hits = misses = 0
    first_ts = last_ts = None
    for record in records:
        seconds = float(record.get("elapsed_seconds", 0.0))
        latency.add(seconds)
        queue_wait.add(float(record.get("queue_wait_seconds", 0.0)))
        method = str(record.get("method", "?"))
        methods[method] = methods.get(method, 0) + 1
        outcome = record.get("outcome")
        shed = outcome in SHED_OUTCOMES
        if shed:
            sheds += 1
        elif outcome != "ok":
            errors += 1
        tenant = str(record.get("tenant", "default"))
        per = tenants.get(tenant)
        if per is None:
            per = tenants[tenant] = {
                "requests": 0,
                "served": 0,
                "sheds": 0,
                "errors": 0,
                "latency": Dist(),
                "queue_wait": Dist(),
            }
        per["requests"] += 1
        if shed:
            per["sheds"] += 1
        else:
            per["served"] += 1
            per["latency"].add(seconds)
            per["queue_wait"].add(float(record.get("queue_wait_seconds", 0.0)))
            if outcome != "ok":
                per["errors"] += 1
        daemon = record.get("daemon")
        if daemon is not None:
            # fleet-driver records place units on named daemons; roll
            # them up so `repro top` shows the sweep's placement balance
            per_daemon = daemons.setdefault(
                str(daemon), {"units": 0, "errors": 0, "latency": Dist()}
            )
            per_daemon["units"] += 1
            per_daemon["latency"].add(seconds)
            if outcome != "ok" and not shed:
                per_daemon["errors"] += 1
        incidents += int(record.get("incidents", 0) or 0)
        slow += 1 if record.get("slow") else 0
        cache = record.get("cache") or {}
        hits += int(cache.get("hits", 0) or 0)
        misses += int(cache.get("misses", 0) or 0)
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
    window = (last_ts - first_ts) if first_ts is not None and last_ts is not None else 0.0
    probes = hits + misses
    slowest = sorted(
        records, key=lambda r: float(r.get("elapsed_seconds", 0.0)), reverse=True
    )[:5]
    by_tenant = {
        tenant: {
            "requests": per["requests"],
            "served": per["served"],
            "sheds": per["sheds"],
            "errors": per["errors"],
            "throughput_rps": per["requests"] / window if window > 0 else None,
            "p50_seconds": per["latency"].p50,
            "p95_seconds": per["latency"].p95,
            "queue_wait_p95_seconds": per["queue_wait"].p95,
        }
        for tenant, per in tenants.items()
    }
    return {
        "requests": len(records),
        "window_seconds": window,
        "throughput_rps": len(records) / window if window > 0 else None,
        "latency": latency,
        "queue_wait": queue_wait,
        "by_method": methods,
        "by_tenant": by_tenant,
        "by_daemon": {
            name: {
                "units": per["units"],
                "errors": per["errors"],
                "p50_seconds": per["latency"].p50,
                "p95_seconds": per["latency"].p95,
            }
            for name, per in daemons.items()
        },
        "error_rate": errors / len(records) if records else 0.0,
        "incident_rate": incidents / len(records) if records else 0.0,
        "slow_requests": slow,
        "sheds": sheds,
        "shed_rate": sheds / len(records) if records else 0.0,
        "cache_hit_rate": hits / probes if probes else None,
        "slowest": [
            {
                "trace_id": str(r.get("trace_id", "")),
                "method": str(r.get("method", "?")),
                "elapsed_seconds": float(r.get("elapsed_seconds", 0.0)),
            }
            for r in slowest
        ],
    }


def _ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 1000:.1f}"


def render_top(records: List[dict], title: str = "repro top") -> str:
    """The human view over journal records: one overview table, the
    per-method breakdown, and the slowest requests with their trace ids."""
    from repro.report.table import render_simple

    if not records:
        return f"{title}: journal is empty (no requests recorded yet)"
    summary = summarize(records)
    latency: Dist = summary["latency"]
    queue_wait: Dist = summary["queue_wait"]
    throughput = summary["throughput_rps"]
    overview = [
        ["requests", str(summary["requests"])],
        [
            "throughput",
            "-" if throughput is None else f"{throughput:.2f} req/s",
        ],
        ["latency p50/p95/p99 (ms)",
         f"{_ms(latency.p50)} / {_ms(latency.p95)} / {_ms(latency.p99)}"],
        ["queue wait p50/p99 (ms)", f"{_ms(queue_wait.p50)} / {_ms(queue_wait.p99)}"],
        [
            "cache hit rate",
            "-"
            if summary["cache_hit_rate"] is None
            else f"{summary['cache_hit_rate']:.0%}",
        ],
        ["error rate", f"{summary['error_rate']:.0%}"],
        ["shed rate", f"{summary['shed_rate']:.0%} ({summary['sheds']})"],
        ["incidents / request", f"{summary['incident_rate']:.2f}"],
        ["slow requests", str(summary["slow_requests"])],
    ]
    blocks = [render_simple(["metric", "value"], overview, title=title)]
    blocks.append(
        render_simple(
            ["method", "requests"],
            [[m, str(n)] for m, n in sorted(summary["by_method"].items())],
        )
    )
    by_tenant = summary["by_tenant"]
    if len(by_tenant) > 1 or any(t != "default" for t in by_tenant):
        blocks.append(
            render_simple(
                ["tenant", "requests", "req/s", "p95 (ms)", "shed"],
                [
                    [
                        tenant,
                        str(per["requests"]),
                        "-"
                        if per["throughput_rps"] is None
                        else f"{per['throughput_rps']:.2f}",
                        _ms(per["p95_seconds"]),
                        str(per["sheds"]),
                    ]
                    for tenant, per in sorted(by_tenant.items())
                ],
            )
        )
    by_daemon = summary["by_daemon"]
    if by_daemon:
        blocks.append(
            render_simple(
                ["daemon", "units", "errors", "p50 (ms)", "p95 (ms)"],
                [
                    [
                        name,
                        str(per["units"]),
                        str(per["errors"]),
                        _ms(per["p50_seconds"]),
                        _ms(per["p95_seconds"]),
                    ]
                    for name, per in sorted(by_daemon.items())
                ],
            )
        )
    blocks.append(
        render_simple(
            ["slowest", "method", "ms"],
            [
                [s["trace_id"][:16] or "-", s["method"], _ms(s["elapsed_seconds"])]
                for s in summary["slowest"]
            ],
        )
    )
    return "\n\n".join(blocks)
