"""OTLP-ish JSON export of a collector's span trees.

:func:`trace_to_otlp` flattens a :class:`~repro.obs.collector.Collector`'s
span forest into the OpenTelemetry OTLP/JSON trace shape
(``resourceSpans`` → ``scopeSpans`` → ``spans`` with ``traceId`` /
``spanId`` / ``parentSpanId``), so a trace dumped by ``--trace-out`` can
be loaded into any OTLP-tolerant trace viewer or diffed structurally.

"OTLP-ish" because timestamps are *relative*: the pipeline records
``perf_counter`` intervals, not wall-clock epochs, so span times are
exported as nanoseconds since the earliest span in the dump. Durations,
lineage and attributes are exact.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.collector import Collector, Span


def _attributes(span: Span) -> List[dict]:
    return [
        {"key": str(key), "value": {"stringValue": str(value)}}
        for key, value in sorted(span.attrs.items())
    ]


def _flatten(span: Span, t0: float, out: List[dict]) -> None:
    end = span.end if span.end is not None else span.start
    out.append(
        {
            "traceId": span.trace_id or "",
            "spanId": span.span_id,
            "parentSpanId": span.parent_id or "",
            "name": span.name,
            "startTimeUnixNano": int(max(0.0, span.start - t0) * 1e9),
            "endTimeUnixNano": int(max(0.0, end - t0) * 1e9),
            "attributes": _attributes(span),
        }
    )
    for child in span.children:
        _flatten(child, t0, out)


def trace_to_otlp(collector: Collector, service_name: Optional[str] = None) -> dict:
    """One collector's span forest as an OTLP/JSON trace payload."""
    spans: List[dict] = []
    starts = [s.start for root in collector.spans for s in root.walk()]
    t0 = min(starts) if starts else 0.0
    for root in collector.spans:
        _flatten(root, t0, spans)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {
                                "stringValue": service_name or collector.name
                            },
                        }
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs", "version": "2"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }


def write_trace(
    collector: Collector, path: str, service_name: Optional[str] = None
) -> None:
    """Dump the OTLP-ish trace to ``path`` (the ``--trace-out`` sink)."""
    import json

    with open(path, "w") as handle:
        json.dump(trace_to_otlp(collector, service_name), handle, indent=2)
        handle.write("\n")
