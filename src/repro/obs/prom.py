"""Prometheus text-exposition rendering of a :class:`Collector`.

One function, :func:`render_prometheus`, turns a collector into the
`text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
a scraper expects:

* counters  → ``repro_<name>_total`` counter series;
* gauges    → ``repro_<name>`` gauge series;
* distributions → ``repro_<name>`` histogram series (cumulative
  ``_bucket{le="..."}`` lines over the fixed bounds, ``_sum``, ``_count``)
  plus ``repro_<name>_p50`` / ``_p95`` / ``_p99`` gauges computed from the
  bounded reservoir — the request-latency percentiles the acceptance
  criteria name;
* the aggregated span table → ``repro_stage_seconds_total{stage="..."}``
  and ``repro_stage_entries_total{stage="..."}``.

Served by the daemon's ``metrics_text`` method and by
``repro stats --prom``; the CI smoke job scrapes and validates it
line-by-line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.obs.collector import DEFAULT_BUCKET_BOUNDS, Collector, Dist

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: a valid exposition line: comment, or ``name{labels} value``
LINE_RE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9.eE+-]+(Inf|NaN)?)$"
)


def metric_name(name: str, prefix: str = "repro") -> str:
    """``cache.hit`` → ``repro_cache_hit`` (Prometheus-legal)."""
    cleaned = _NAME_RE.sub("_", name).strip("_")
    return f"{prefix}_{cleaned}"


def _labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    formatted = f"{value:.9f}".rstrip("0").rstrip(".")
    return formatted if formatted else "0"


def _bound_label(bound: float) -> str:
    return _fmt(bound)


def render_histogram(
    name: str, dist: Dist, labels: Optional[Dict[str, str]] = None
) -> List[str]:
    """The exposition lines for one distribution."""
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for bound, count in zip(DEFAULT_BUCKET_BOUNDS, dist.buckets):
        cumulative += count
        bucket_labels = dict(labels or {})
        bucket_labels["le"] = _bound_label(bound)
        lines.append(f"{name}_bucket{_labels(bucket_labels)} {cumulative}")
    bucket_labels = dict(labels or {})
    bucket_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{_labels(bucket_labels)} {dist.count}")
    lines.append(f"{name}_sum{_labels(labels)} {_fmt(dist.total)}")
    lines.append(f"{name}_count{_labels(labels)} {dist.count}")
    for quantile, value in (("p50", dist.p50), ("p95", dist.p95), ("p99", dist.p99)):
        if value is None:
            continue
        lines.append(f"# TYPE {name}_{quantile} gauge")
        lines.append(f"{name}_{quantile}{_labels(labels)} {_fmt(value)}")
    return lines


def render_prometheus(
    collector: Collector,
    labels: Optional[Dict[str, str]] = None,
    prefix: str = "repro",
) -> str:
    """The full text exposition of one collector, newline-terminated."""
    lines: List[str] = []
    totals = collector.stage_totals()
    if totals:
        seconds_name = f"{prefix}_stage_seconds_total"
        entries_name = f"{prefix}_stage_entries_total"
        lines.append(f"# HELP {seconds_name} Aggregated seconds per pipeline stage")
        lines.append(f"# TYPE {seconds_name} counter")
        for stage, (_, seconds) in totals.items():
            stage_labels = dict(labels or {})
            stage_labels["stage"] = stage
            lines.append(f"{seconds_name}{_labels(stage_labels)} {_fmt(seconds)}")
        lines.append(f"# HELP {entries_name} Aggregated entries per pipeline stage")
        lines.append(f"# TYPE {entries_name} counter")
        for stage, (count, _) in totals.items():
            stage_labels = dict(labels or {})
            stage_labels["stage"] = stage
            lines.append(f"{entries_name}{_labels(stage_labels)} {count}")
    for name, value in sorted(collector.counters.items()):
        metric = metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_labels(labels)} {value}")
    for name, value in sorted(collector.gauges.items()):
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_labels(labels)} {_fmt(float(value))}")
    for name, dist in sorted(collector.dists.items()):
        lines.extend(render_histogram(metric_name(name, prefix), dist, labels))
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> List[str]:
    """Offending lines of an exposition payload (empty = valid); the CI
    smoke job and the schema tests call this line-by-line check."""
    bad = []
    for line in text.splitlines():
        if not line:
            continue
        if not LINE_RE.match(line):
            bad.append(line)
    return bad
