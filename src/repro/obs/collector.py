"""Run-scoped tracing and metrics for the GCatch/GFix pipeline.

The paper's evaluation is built on *measured* pipeline behaviour —
per-stage detection time (§5.2), constraint-system sizes before/after
disentangling, solver effort per bug. This module is the substrate those
measurements flow through:

* a :class:`Span` tree records wall-clock timing for each pipeline stage
  (``parse`` → ``ssa-build`` → ... → ``solve``); spans nest, and repeated
  entries of the same stage (one per channel, say) aggregate into a single
  per-stage total;
* typed counters, gauges and distributions record discrete effort: paths
  enumerated, path combinations, Pset sizes, constraint clause counts,
  solver outcomes, explorer runs/backtracks/prunes, fixer strategy
  attempts, validation samples;
* one :class:`Collector` is shared by every layer of a run —
  ``api.Project``, ``run_gcatch``, the explorer, the fixer and the patch
  validator all report into it.

Observability is off by default: every instrumented call site either
receives :data:`NULL` (a :class:`NullCollector` whose methods are no-ops
and whose truth value is ``False``) or ``collector=None``, so the hot path
pays a single truthiness check. ``benchmarks/test_bench_obs_overhead.py``
asserts the end-to-end cost of the layer stays within 5%.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

# Pipeline stage names — one per box of the paper's Figure 2 pipeline.
# DESIGN.md maps each to the section of the paper that describes it.
STAGE_PARSE = "parse"
STAGE_SSA = "ssa-build"
STAGE_CALLGRAPH = "callgraph"
STAGE_ALIAS = "alias"
STAGE_DEPGRAPH = "depgraph"
STAGE_DISENTANGLE = "disentangle"
STAGE_PATH_ENUM = "path-enum"
STAGE_SUSPICIOUS = "suspicious-groups"
STAGE_ENCODE = "encode"
STAGE_SOLVE = "solve"

#: one entry per detection-engine shard (a primitive's BMOC analysis or one
#: traditional checker); aggregated like any other stage in the trace table
STAGE_ENGINE_SHARD = "engine-shard"

#: one entry per request the analysis daemon serves (repro.service); wraps
#: whatever pipeline stages that request triggered
STAGE_SERVICE_REQUEST = "service-request"

#: every GCatch stage, in pipeline order; a full ``Project.detect`` trace
#: contains each of these exactly once in its aggregated stage table
PIPELINE_STAGES: Tuple[str, ...] = (
    STAGE_PARSE,
    STAGE_SSA,
    STAGE_CALLGRAPH,
    STAGE_ALIAS,
    STAGE_DEPGRAPH,
    STAGE_DISENTANGLE,
    STAGE_PATH_ENUM,
    STAGE_SUSPICIOUS,
    STAGE_ENCODE,
    STAGE_SOLVE,
)


@dataclass
class Span:
    """One timed region; spans form a tree via ``children``."""

    name: str
    start: float = 0.0
    end: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "seconds": self.seconds}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(name=payload["name"], start=0.0, end=payload["seconds"])
        span.children = [cls.from_dict(c) for c in payload.get("children", ())]
        return span

    # -- context-manager protocol (entered via Collector.span) ------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        pass


@dataclass
class Dist:
    """A value distribution: count / total / min / max (e.g. Pset sizes)."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class _SpanHandle:
    """Context manager that closes a span and pops the collector's stack."""

    __slots__ = ("_collector", "_span")

    def __init__(self, collector: "Collector", span: Span):
        self._collector = collector
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._collector._close_span(self._span)


class Collector:
    """Aggregates one run's spans, counters, gauges and distributions.

    Counter updates are lock-protected so results funnelled in from many
    explorer-spawned runs (or threads) aggregate safely; the span stack is
    per-instance and assumes the usual single-threaded ``with`` nesting.
    """

    def __init__(self, name: str = "run"):
        self.name = name
        self.spans: List[Span] = []  # completed top-level spans, in order
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.dists: Dict[str, Dist] = {}
        self._stack: List[Span] = []
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    # -- spans -------------------------------------------------------------

    def span(self, name: str) -> _SpanHandle:
        span = Span(name=name, start=time.perf_counter())
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _close_span(self, span: Span) -> None:
        span.end = time.perf_counter()
        # unwind to the matching span so a leaked inner handle can't corrupt
        # the stack shape
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)

    def stage_totals(self) -> Dict[str, Tuple[int, float]]:
        """Aggregate the span tree: name -> (times entered, total seconds)."""
        totals: Dict[str, Tuple[int, float]] = {}
        for root in self.spans:
            for span in root.walk():
                count, seconds = totals.get(span.name, (0, 0.0))
                totals[span.name] = (count + 1, seconds + span.seconds)
        return totals

    def span_names(self) -> List[str]:
        return list(self.stage_totals())

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            dist = self.dists.get(name)
            if dist is None:
                dist = self.dists[name] = Dist()
            dist.add(value)

    # -- aggregation across collectors -------------------------------------

    def merge(self, other: "Collector") -> None:
        """Fold another collector's data into this one (counters add,
        gauges last-write-wins, spans concatenate)."""
        with self._lock:
            for name, n in other.counters.items():
                self.counters[name] = self.counters.get(name, 0) + n
            self.gauges.update(other.gauges)
            for name, dist in other.dists.items():
                mine = self.dists.get(name)
                if mine is None:
                    mine = self.dists[name] = Dist()
                mine.count += dist.count
                mine.total += dist.total
                for bound in (dist.min, dist.max):
                    if bound is None:
                        continue
                    mine.min = bound if mine.min is None else min(mine.min, bound)
                    mine.max = bound if mine.max is None else max(mine.max, bound)
            self.spans.extend(other.spans)


class NullCollector(Collector):
    """The default when observability is off: every method is a no-op and
    the instance is falsy, so guarded call sites skip all bookkeeping."""

    _NOOP_SPAN = Span(name="noop", start=0.0, end=0.0)

    def __init__(self):
        super().__init__(name="null")

    def __bool__(self) -> bool:
        return False

    def span(self, name: str) -> Span:  # type: ignore[override]
        return self._NOOP_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge(self, other: Collector) -> None:
        pass


#: shared no-op collector; ``collector or NULL`` normalizes optional params
NULL = NullCollector()
