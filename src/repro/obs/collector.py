"""Run- and service-scoped tracing and metrics for the GCatch/GFix pipeline.

The paper's evaluation is built on *measured* pipeline behaviour —
per-stage detection time (§5.2), constraint-system sizes before/after
disentangling, solver effort per bug. This module is the substrate those
measurements flow through:

* a :class:`Span` tree records wall-clock timing for each pipeline stage
  (``parse`` → ``ssa-build`` → ... → ``solve``); spans nest, and repeated
  entries of the same stage (one per channel, say) aggregate into a single
  per-stage total. Every span carries a ``span_id``, its ``parent_id`` and
  the ``trace_id`` of the request (or run) it belongs to, so a span tree
  assembled across threads and forked workers keeps its lineage;
* typed counters, gauges and distributions record discrete effort: paths
  enumerated, path combinations, Pset sizes, constraint clause counts,
  solver outcomes, explorer runs/backtracks/prunes, fixer strategy
  attempts, validation samples. Distributions are real: each keeps a
  bounded reservoir and fixed histogram buckets, so p50/p95/p99 come out
  the other end instead of a bare mean;
* one :class:`Collector` is shared by every layer of a run —
  ``api.Project``, ``run_gcatch``, the explorer, the fixer and the patch
  validator all report into it. The analysis daemon shares one collector
  across its lifetime and scopes each request with a fresh trace id.

Observability is off by default: every instrumented call site either
receives :data:`NULL` (a :class:`NullCollector` whose methods are no-ops
and whose truth value is ``False``) or ``collector=None``, so the hot path
pays a single truthiness check. ``benchmarks/test_bench_obs_overhead.py``
asserts the end-to-end cost of the layer stays within 5%.
"""

from __future__ import annotations

import bisect
import itertools
import os
import random
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# Pipeline stage names — one per box of the paper's Figure 2 pipeline.
# DESIGN.md maps each to the section of the paper that describes it.
STAGE_PARSE = "parse"
STAGE_SSA = "ssa-build"
STAGE_CALLGRAPH = "callgraph"
STAGE_ALIAS = "alias"
STAGE_DEPGRAPH = "depgraph"
STAGE_DISENTANGLE = "disentangle"
STAGE_PATH_ENUM = "path-enum"
STAGE_SUSPICIOUS = "suspicious-groups"
STAGE_ENCODE = "encode"
STAGE_SOLVE = "solve"

#: one entry per detection-engine shard (a primitive's BMOC analysis or one
#: traditional checker); aggregated like any other stage in the trace table
STAGE_ENGINE_SHARD = "engine-shard"

#: one entry per request the analysis daemon serves (repro.service); wraps
#: whatever pipeline stages that request triggered
STAGE_SERVICE_REQUEST = "service-request"

#: every GCatch stage, in pipeline order; a full ``Project.detect`` trace
#: contains each of these exactly once in its aggregated stage table
PIPELINE_STAGES: Tuple[str, ...] = (
    STAGE_PARSE,
    STAGE_SSA,
    STAGE_CALLGRAPH,
    STAGE_ALIAS,
    STAGE_DEPGRAPH,
    STAGE_DISENTANGLE,
    STAGE_PATH_ENUM,
    STAGE_SUSPICIOUS,
    STAGE_ENCODE,
    STAGE_SOLVE,
)

# -- identifiers -------------------------------------------------------------

#: process-local monotonically increasing span counter; combined with the
#: pid so ids stay unique across the engine's forked workers without the
#: cost of a uuid per span on the hot path
_SPAN_SEQ = itertools.count(1)


def new_span_id() -> str:
    """A 16-hex-char span id, unique within (and across forked) processes."""
    return "%08x%08x" % (os.getpid() & 0xFFFFFFFF, next(_SPAN_SEQ) & 0xFFFFFFFF)


def new_trace_id() -> str:
    """A 32-hex-char trace id (one per daemon request / CLI run)."""
    return uuid.uuid4().hex


@dataclass
class Span:
    """One timed region; spans form a tree via ``children``.

    ``span_id``/``parent_id``/``trace_id`` make the lineage explicit so a
    tree reassembled from thread- or fork-pool shards is identical in
    shape to the serial tree; ``attrs`` carries evidence pointers (shard
    label, scope fingerprint, outcome) for slow-request exemplars.
    """

    name: str
    start: float = 0.0
    end: Optional[float] = None
    children: List["Span"] = field(default_factory=list)
    span_id: str = field(default_factory=new_span_id)
    parent_id: Optional[str] = None
    trace_id: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def propagate_trace(self, trace_id: Optional[str]) -> None:
        """Stamp this subtree with ``trace_id`` (adoption re-roots it)."""
        if not trace_id:
            return
        for span in self.walk():
            span.trace_id = trace_id

    def reparent(self, parent: "Span") -> None:
        """Attach this span under ``parent``, fixing lineage fields."""
        self.parent_id = parent.span_id
        self.propagate_trace(parent.trace_id)
        parent.children.append(self)

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "seconds": self.seconds,
            "span_id": self.span_id,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(
            name=payload["name"],
            start=0.0,
            end=payload["seconds"],
            span_id=payload.get("span_id") or new_span_id(),
            parent_id=payload.get("parent_id"),
            trace_id=payload.get("trace_id"),
            attrs=dict(payload.get("attrs", {})),
        )
        span.children = [cls.from_dict(c) for c in payload.get("children", ())]
        for child in span.children:
            if child.parent_id is None:
                child.parent_id = span.span_id
        return span

    # -- context-manager protocol (entered via Collector.span) ------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        pass


# -- distributions -----------------------------------------------------------

#: fixed exponential histogram bounds (``le`` upper edges) shared by every
#: distribution; chosen to resolve both sub-millisecond stage latencies and
#: integer effort counts (Pset sizes, clause counts) without per-metric
#: configuration. The implicit final bucket is +Inf.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: bounded per-distribution sample reservoir backing the percentiles; 256
#: values bound memory while keeping p99 of a few thousand observations
#: honest to within a bucket
RESERVOIR_SIZE = 256


@dataclass
class Dist:
    """A value distribution: count/total/min/max plus a bounded reservoir
    and fixed histogram buckets, so p50/p95/p99 are answerable.

    The reservoir uses Vitter's algorithm R with a fixed-seed RNG, so the
    retained sample — and therefore every reported percentile — is a pure
    function of the observation sequence (determinism is load-bearing:
    fuzz triage and snapshot round-trips are compared byte-for-byte).
    """

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    buckets: List[int] = field(
        default_factory=lambda: [0] * (len(DEFAULT_BUCKET_BOUNDS) + 1)
    )
    samples: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(0x0B5EED)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.buckets[bisect.bisect_left(DEFAULT_BUCKET_BOUNDS, value)] += 1
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < RESERVOIR_SIZE:
                self.samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the reservoir; None when empty."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        index = int(q * (len(ordered) - 1) + 0.5)
        return ordered[index]

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(0.95)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(0.99)

    def merge(self, other: "Dist") -> None:
        """Fold another distribution in, deterministically: histogram
        buckets add element-wise; the combined reservoir is an evenly
        strided subsample when it would overflow."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            self.min = bound if self.min is None else min(self.min, bound)
            self.max = bound if self.max is None else max(self.max, bound)
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        combined = self.samples + other.samples
        if len(combined) > RESERVOIR_SIZE:
            stride = len(combined) / RESERVOIR_SIZE
            combined = [combined[int(i * stride)] for i in range(RESERVOIR_SIZE)]
        self.samples = combined

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": list(self.buckets),
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Dist":
        """Rebuild from a snapshot; tolerates the means-only ``repro.obs/1``
        shape (no buckets/samples → empty histogram, percentiles None)."""
        dist = cls()
        dist.count = int(payload["count"])
        dist.total = float(payload["total"])
        dist.min = None if payload["min"] is None else float(payload["min"])
        dist.max = None if payload["max"] is None else float(payload["max"])
        buckets = payload.get("buckets")
        if buckets is not None and len(buckets) == len(dist.buckets):
            dist.buckets = [int(n) for n in buckets]
        dist.samples = [float(v) for v in payload.get("samples", ())]
        return dist


class _SpanHandle:
    """Context manager that closes a span and pops the collector's stack."""

    __slots__ = ("_collector", "_span")

    def __init__(self, collector: "Collector", span: Span):
        self._collector = collector
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._collector._close_span(self._span)


class Collector:
    """Aggregates one run's spans, counters, gauges and distributions.

    Counter updates are lock-protected so results funnelled in from many
    explorer-spawned runs (or threads) aggregate safely; the span stack is
    per-instance and assumes the usual single-threaded ``with`` nesting.

    ``trace_id`` scopes the collector to one trace: spans created while no
    span is open inherit it, and spans created inside another span inherit
    the parent's trace — so a daemon-lifetime collector serves many
    requests, each rooted at a ``service-request`` span carrying that
    request's trace id.
    """

    def __init__(self, name: str = "run", trace_id: Optional[str] = None):
        self.name = name
        self.trace_id = trace_id
        self.spans: List[Span] = []  # completed top-level spans, in order
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.dists: Dict[str, Dist] = {}
        self._stack: List[Span] = []
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    # -- spans -------------------------------------------------------------

    def span(
        self, name: str, trace_id: Optional[str] = None, **attrs
    ) -> _SpanHandle:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            start=time.perf_counter(),
            parent_id=parent.span_id if parent is not None else None,
            trace_id=trace_id
            or (parent.trace_id if parent is not None else self.trace_id),
            attrs=attrs,
        )
        self._stack.append(span)
        return _SpanHandle(self, span)

    def current_span(self) -> Optional[Span]:
        """The innermost open span, if any (lineage anchor for adoption)."""
        return self._stack[-1] if self._stack else None

    def _close_span(self, span: Span) -> None:
        span.end = time.perf_counter()
        # unwind to the matching span so a leaked inner handle can't corrupt
        # the stack shape
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)

    def adopt_spans(self, spans: Sequence[Span]) -> None:
        """Graft completed span trees (from a sub-collector, possibly a
        forked worker) into this collector *with lineage*: if a span is
        open, the adopted trees become its children and inherit its trace
        id; otherwise they join the top level."""
        parent = self._stack[-1] if self._stack else None
        for span in spans:
            if parent is not None:
                span.reparent(parent)
            else:
                span.propagate_trace(self.trace_id)
                self.spans.append(span)

    def stage_totals(self) -> Dict[str, Tuple[int, float]]:
        """Aggregate the span tree: name -> (times entered, total seconds)."""
        totals: Dict[str, Tuple[int, float]] = {}
        for root in self.spans:
            for span in root.walk():
                count, seconds = totals.get(span.name, (0, 0.0))
                totals[span.name] = (count + 1, seconds + span.seconds)
        return totals

    def span_names(self) -> List[str]:
        return list(self.stage_totals())

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            dist = self.dists.get(name)
            if dist is None:
                dist = self.dists[name] = Dist()
            dist.add(value)

    # -- aggregation across collectors -------------------------------------

    def merge(self, other: "Collector") -> None:
        """Fold another collector's data into this one: counters add,
        gauges last-write-wins, distributions merge, and span trees are
        *adopted* — grafted under the currently open span (when there is
        one) with parent/trace lineage rewritten, so sub-process and
        pool-shard traces keep their place in the request's tree instead
        of merging flat."""
        with self._lock:
            for name, n in other.counters.items():
                self.counters[name] = self.counters.get(name, 0) + n
            self.gauges.update(other.gauges)
            for name, dist in other.dists.items():
                mine = self.dists.get(name)
                if mine is None:
                    mine = self.dists[name] = Dist()
                mine.merge(dist)
        self.adopt_spans(other.spans)


class NullCollector(Collector):
    """The default when observability is off: every method is a no-op and
    the instance is falsy, so guarded call sites skip all bookkeeping."""

    _NOOP_SPAN = Span(name="noop", start=0.0, end=0.0)

    def __init__(self):
        super().__init__(name="null")

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, trace_id=None, **attrs) -> Span:  # type: ignore[override]
        return self._NOOP_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def adopt_spans(self, spans: Sequence[Span]) -> None:
        pass

    def merge(self, other: Collector) -> None:
        pass


#: shared no-op collector; ``collector or NULL`` normalizes optional params
NULL = NullCollector()
