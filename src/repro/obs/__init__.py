"""repro.obs — pipeline-wide tracing, metrics and profiling.

See :mod:`repro.obs.collector` for the Span/Collector model and
:mod:`repro.obs.stats` for the JSON schema and renderers.
"""

from repro.obs.collector import (
    NULL,
    PIPELINE_STAGES,
    STAGE_ALIAS,
    STAGE_CALLGRAPH,
    STAGE_DEPGRAPH,
    STAGE_DISENTANGLE,
    STAGE_ENCODE,
    STAGE_ENGINE_SHARD,
    STAGE_PARSE,
    STAGE_PATH_ENUM,
    STAGE_SERVICE_REQUEST,
    STAGE_SOLVE,
    STAGE_SSA,
    STAGE_SUSPICIOUS,
    Collector,
    Dist,
    NullCollector,
    Span,
)
from repro.obs.stats import SCHEMA, json_dumps, load, render_stats, snapshot

__all__ = [
    "NULL",
    "PIPELINE_STAGES",
    "STAGE_ALIAS",
    "STAGE_CALLGRAPH",
    "STAGE_DEPGRAPH",
    "STAGE_DISENTANGLE",
    "STAGE_ENCODE",
    "STAGE_ENGINE_SHARD",
    "STAGE_PARSE",
    "STAGE_PATH_ENUM",
    "STAGE_SERVICE_REQUEST",
    "STAGE_SOLVE",
    "STAGE_SSA",
    "STAGE_SUSPICIOUS",
    "Collector",
    "Dist",
    "NullCollector",
    "Span",
    "SCHEMA",
    "json_dumps",
    "load",
    "render_stats",
    "snapshot",
]
