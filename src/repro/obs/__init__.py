"""repro.obs — pipeline-wide tracing, metrics and profiling.

See :mod:`repro.obs.collector` for the Span/Collector model,
:mod:`repro.obs.stats` for the JSON schema and renderers,
:mod:`repro.obs.prom` for Prometheus text exposition,
:mod:`repro.obs.traceexport` for the OTLP-ish trace dump, and
:mod:`repro.obs.journal` for the daemon's per-request telemetry journal.
"""

from repro.obs.collector import (
    DEFAULT_BUCKET_BOUNDS,
    NULL,
    PIPELINE_STAGES,
    RESERVOIR_SIZE,
    STAGE_ALIAS,
    STAGE_CALLGRAPH,
    STAGE_DEPGRAPH,
    STAGE_DISENTANGLE,
    STAGE_ENCODE,
    STAGE_ENGINE_SHARD,
    STAGE_PARSE,
    STAGE_PATH_ENUM,
    STAGE_SERVICE_REQUEST,
    STAGE_SOLVE,
    STAGE_SSA,
    STAGE_SUSPICIOUS,
    Collector,
    Dist,
    NullCollector,
    Span,
    new_span_id,
    new_trace_id,
)
from repro.obs.journal import TelemetryJournal, render_top, request_record, summarize
from repro.obs.prom import render_prometheus, validate_exposition
from repro.obs.stats import (
    SCHEMA,
    SCHEMA_V1,
    json_dumps,
    load,
    render_stats,
    snapshot,
)
from repro.obs.traceexport import trace_to_otlp, write_trace

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "NULL",
    "PIPELINE_STAGES",
    "RESERVOIR_SIZE",
    "STAGE_ALIAS",
    "STAGE_CALLGRAPH",
    "STAGE_DEPGRAPH",
    "STAGE_DISENTANGLE",
    "STAGE_ENCODE",
    "STAGE_ENGINE_SHARD",
    "STAGE_PARSE",
    "STAGE_PATH_ENUM",
    "STAGE_SERVICE_REQUEST",
    "STAGE_SOLVE",
    "STAGE_SSA",
    "STAGE_SUSPICIOUS",
    "Collector",
    "Dist",
    "NullCollector",
    "Span",
    "TelemetryJournal",
    "new_span_id",
    "new_trace_id",
    "render_prometheus",
    "render_top",
    "request_record",
    "summarize",
    "validate_exposition",
    "SCHEMA",
    "SCHEMA_V1",
    "json_dumps",
    "load",
    "render_stats",
    "snapshot",
    "trace_to_otlp",
    "write_trace",
]
