"""Machine-readable stats emission and human-readable rendering.

One JSON schema (``repro.obs/2``) serves every surface that exports
numbers: ``repro stats --json``, ``repro explore --json``,
``repro diffcheck --json``, ``repro fuzz --json``, the daemon's ``stats``
method and the ``benchmarks/`` per-stage recordings all emit through
:func:`json_dumps`, and a :class:`Collector` snapshot round-trips
losslessly through :func:`snapshot` / :func:`load`.

Schema (top-level keys of a collector snapshot)::

    {
      "schema":   "repro.obs/2",
      "name":     "<run label>",
      "trace_id": str,                      # optional: the run's trace
      "stages":   [{"name": str, "count": int, "seconds": float}, ...],
      "counters": {str: int, ...},
      "gauges":   {str: float, ...},
      "distributions": {str: {"count": int, "total": float,
                              "min": float|null, "max": float|null,
                              "p50": float|null, "p95": float|null,
                              "p99": float|null,
                              "buckets": [int, ...],     # histogram counts
                              "samples": [float, ...]},  # bounded reservoir
                        ...},
      "spans":    [<span tree: {"name", "seconds", "span_id",
                                "parent_id"?, "trace_id"?, "attrs"?,
                                "children"?}>, ...]
    }

``stages`` is the aggregated per-stage table — pipeline stages first, in
pipeline order, then any extra span names in first-seen order.

Version history: ``repro.obs/1`` (PR 2) had means-only distributions and
anonymous spans. :func:`load` still accepts ``/1`` payloads — the missing
histogram/lineage fields load empty, so old snapshots keep rendering.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.obs.collector import PIPELINE_STAGES, Collector, Dist, Span

SCHEMA = "repro.obs/2"

#: the PR-2 era schema: means-only distributions, no span lineage.
#: Snapshots are always emitted as /2; /1 is accepted on load.
SCHEMA_V1 = "repro.obs/1"


def json_dumps(payload: object) -> str:
    """The one JSON emitter: stable key order, indented, ASCII-safe."""
    return json.dumps(payload, indent=2, sort_keys=False, default=str)


def snapshot(collector: Collector, extra: Optional[dict] = None) -> dict:
    """Freeze a collector into the documented JSON-serializable schema."""
    totals = collector.stage_totals()
    ordered = [name for name in PIPELINE_STAGES if name in totals]
    ordered += [name for name in totals if name not in PIPELINE_STAGES]
    payload = {
        "schema": SCHEMA,
        "name": collector.name,
        "stages": [
            {"name": name, "count": totals[name][0], "seconds": totals[name][1]}
            for name in ordered
        ],
        "counters": dict(sorted(collector.counters.items())),
        "gauges": dict(sorted(collector.gauges.items())),
        "distributions": {
            name: dist.to_dict() for name, dist in sorted(collector.dists.items())
        },
        "spans": [span.to_dict() for span in collector.spans],
    }
    if collector.trace_id:
        payload["trace_id"] = collector.trace_id
    if extra:
        payload.update(extra)
    return payload


def load(payload: dict) -> Collector:
    """Rebuild a collector from a snapshot (inverse of :func:`snapshot`).

    Timings are preserved exactly: ``snapshot(load(s)) == s`` for any
    ``repro.obs/2`` snapshot ``s`` (modulo the keys ``extra`` injected).
    ``repro.obs/1`` snapshots load too — their distributions come back
    means-only (empty histogram, percentiles ``None``) and their spans
    without lineage, which is exactly what was recorded.
    """
    schema = payload.get("schema")
    if schema not in (SCHEMA, SCHEMA_V1):
        raise ValueError(f"unsupported stats schema: {schema!r}")
    collector = Collector(
        name=payload.get("name", "run"), trace_id=payload.get("trace_id")
    )
    collector.spans = [Span.from_dict(s) for s in payload.get("spans", ())]
    collector.counters = {k: int(v) for k, v in payload.get("counters", {}).items()}
    collector.gauges = {k: float(v) for k, v in payload.get("gauges", {}).items()}
    collector.dists = {
        name: Dist.from_dict(d)
        for name, d in payload.get("distributions", {}).items()
    }
    return collector


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


def render_stats(collector: Collector, title: str = "pipeline stages") -> str:
    """The per-stage table plus counters/gauges/distributions, as text."""
    from repro.report.table import render_simple

    totals = collector.stage_totals()
    ordered = [name for name in PIPELINE_STAGES if name in totals]
    ordered += [name for name in totals if name not in PIPELINE_STAGES]
    rows: List[List[str]] = [
        [name, str(totals[name][0]), f"{totals[name][1] * 1000:.3f}"] for name in ordered
    ]
    blocks = [render_simple(["stage", "entries", "total ms"], rows, title=title)]
    if collector.counters:
        blocks.append(
            render_simple(
                ["counter", "value"],
                [[k, str(v)] for k, v in sorted(collector.counters.items())],
            )
        )
    if collector.gauges:
        blocks.append(
            render_simple(
                ["gauge", "value"],
                [[k, str(v)] for k, v in sorted(collector.gauges.items())],
            )
        )
    if collector.dists:
        blocks.append(
            render_simple(
                ["distribution", "count", "mean", "min", "p50", "p95", "p99", "max"],
                [
                    [
                        k,
                        str(d.count),
                        f"{d.mean:.2f}",
                        str(d.min),
                        _fmt(d.p50),
                        _fmt(d.p95),
                        _fmt(d.p99),
                        str(d.max),
                    ]
                    for k, d in sorted(collector.dists.items())
                ],
            )
        )
    return "\n\n".join(blocks)
