"""Machine-readable stats emission and human-readable rendering.

One JSON schema (``repro.obs/1``) serves every surface that exports
numbers: ``repro stats --json``, ``repro explore --json``,
``repro diffcheck --json`` and the ``benchmarks/`` per-stage recordings
all emit through :func:`json_dumps`, and a :class:`Collector` snapshot
round-trips losslessly through :func:`snapshot` / :func:`load`.

Schema (top-level keys of a collector snapshot)::

    {
      "schema":   "repro.obs/1",
      "name":     "<run label>",
      "stages":   [{"name": str, "count": int, "seconds": float}, ...],
      "counters": {str: int, ...},
      "gauges":   {str: float, ...},
      "distributions": {str: {"count": int, "total": float,
                              "min": float|null, "max": float|null}, ...},
      "spans":    [<span tree: {"name", "seconds", "children"?}>, ...]
    }

``stages`` is the aggregated per-stage table — pipeline stages first, in
pipeline order, then any extra span names in first-seen order.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.obs.collector import PIPELINE_STAGES, Collector, Span

SCHEMA = "repro.obs/1"


def json_dumps(payload: object) -> str:
    """The one JSON emitter: stable key order, indented, ASCII-safe."""
    return json.dumps(payload, indent=2, sort_keys=False, default=str)


def snapshot(collector: Collector, extra: Optional[dict] = None) -> dict:
    """Freeze a collector into the documented JSON-serializable schema."""
    totals = collector.stage_totals()
    ordered = [name for name in PIPELINE_STAGES if name in totals]
    ordered += [name for name in totals if name not in PIPELINE_STAGES]
    payload = {
        "schema": SCHEMA,
        "name": collector.name,
        "stages": [
            {"name": name, "count": totals[name][0], "seconds": totals[name][1]}
            for name in ordered
        ],
        "counters": dict(sorted(collector.counters.items())),
        "gauges": dict(sorted(collector.gauges.items())),
        "distributions": {
            name: dist.to_dict() for name, dist in sorted(collector.dists.items())
        },
        "spans": [span.to_dict() for span in collector.spans],
    }
    if extra:
        payload.update(extra)
    return payload


def load(payload: dict) -> Collector:
    """Rebuild a collector from a snapshot (inverse of :func:`snapshot`).

    Timings are preserved exactly: ``snapshot(load(s)) == s`` for any
    snapshot ``s`` (modulo the keys ``extra`` injected).
    """
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"unsupported stats schema: {payload.get('schema')!r}")
    collector = Collector(name=payload.get("name", "run"))
    collector.spans = [Span.from_dict(s) for s in payload.get("spans", ())]
    collector.counters = {k: int(v) for k, v in payload.get("counters", {}).items()}
    collector.gauges = {k: float(v) for k, v in payload.get("gauges", {}).items()}
    for name, d in payload.get("distributions", {}).items():
        collector.observe(name, 0)
        dist = collector.dists[name]
        dist.count = int(d["count"])
        dist.total = float(d["total"])
        dist.min = None if d["min"] is None else float(d["min"])
        dist.max = None if d["max"] is None else float(d["max"])
    return collector


def render_stats(collector: Collector, title: str = "pipeline stages") -> str:
    """The per-stage table plus counters/gauges/distributions, as text."""
    from repro.report.table import render_simple

    totals = collector.stage_totals()
    ordered = [name for name in PIPELINE_STAGES if name in totals]
    ordered += [name for name in totals if name not in PIPELINE_STAGES]
    rows: List[List[str]] = [
        [name, str(totals[name][0]), f"{totals[name][1] * 1000:.3f}"] for name in ordered
    ]
    blocks = [render_simple(["stage", "entries", "total ms"], rows, title=title)]
    if collector.counters:
        blocks.append(
            render_simple(
                ["counter", "value"],
                [[k, str(v)] for k, v in sorted(collector.counters.items())],
            )
        )
    if collector.gauges:
        blocks.append(
            render_simple(
                ["gauge", "value"],
                [[k, str(v)] for k, v in sorted(collector.gauges.items())],
            )
        )
    if collector.dists:
        blocks.append(
            render_simple(
                ["distribution", "count", "mean", "min", "max"],
                [
                    [k, str(d.count), f"{d.mean:.2f}", str(d.min), str(d.max)]
                    for k, d in sorted(collector.dists.items())
                ],
            )
        )
    return "\n\n".join(blocks)
