"""Primitive dependency graph and the disentangling policy (§3.2).

Primitive ``a`` depends on ``b`` when one of ``a``'s *unblocking* operations
(send/recv/close/unlock) is reachable from one of ``b``'s *blocking*
operations (send/recv/lock/wait) — whether ``b``'s waiter can proceed hinges
on code that sits behind ``a``'s unblocker. Channels waited on by the same
``select`` depend on each other. Dependence is transitive.

``Pset(c)`` — the primitives GCatch must analyze together with channel
``c`` — contains ``c`` plus every primitive with a scope no larger than
``c``'s that is in a *circular* dependency with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.primitives import Primitive, PrimitiveMap
from repro.analysis.scope import Scope
from repro.ssa import cfg, ir


@dataclass
class DependencyGraph:
    edges: Dict[Primitive, Set[Primitive]] = field(default_factory=dict)

    def add(self, a: Primitive, b: Primitive) -> None:
        """Record: a depends on b."""
        self.edges.setdefault(a, set()).add(b)

    def depends(self, a: Primitive, b: Primitive) -> bool:
        return b in self.edges.get(a, set())

    def close_transitively(self) -> None:
        changed = True
        while changed:
            changed = False
            for a, deps in list(self.edges.items()):
                extra: Set[Primitive] = set()
                for b in deps:
                    extra |= self.edges.get(b, set())
                before = len(deps)
                deps |= extra
                if len(deps) != before:
                    changed = True

    def circular(self, a: Primitive, b: Primitive) -> bool:
        return self.depends(a, b) and self.depends(b, a)


class _ExecReach:
    """Conservative 'can execute after' relation between operations."""

    def __init__(self, program: ir.Program, call_graph: CallGraph):
        self.program = program
        self.call_graph = call_graph
        self._reach_cache: Dict[str, Set[str]] = {}

    def _reach_functions(self, name: str) -> Set[str]:
        if name in self._reach_cache:
            return self._reach_cache[name]
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.call_graph.callees(current) - seen)
            for _, child in self.call_graph.spawn_sites(current):
                if child is not None and child not in seen:
                    frontier.append(child)
        self._reach_cache[name] = seen
        return seen

    def op_reaches(self, first_fn: str, first: ir.Instr, second_fn: str, second: ir.Instr) -> bool:
        if first_fn == second_fn:
            func = self.program.functions.get(first_fn)
            if func is not None and cfg.instr_reaches(func, first, second):
                return True
        reachable = self._reach_functions(first_fn)
        return second_fn in reachable and second_fn != first_fn


def build_dependency_graph(
    program: ir.Program, call_graph: CallGraph, pmap: PrimitiveMap
) -> DependencyGraph:
    graph = DependencyGraph()
    reach = _ExecReach(program, call_graph)
    prims = list(pmap)
    for a in prims:
        graph.edges.setdefault(a, set())
    # rule 1: unblocker of `a` reachable from a blocking op of `b`
    for a in prims:
        unblockers = [op for op in a.operations if op.unblocking]
        if not unblockers:
            continue
        for b in prims:
            if a is b:
                continue
            for b_op in b.operations:
                if not b_op.blocking:
                    continue
                if any(
                    reach.op_reaches(b_op.function, b_op.instr, u.function, u.instr)
                    for u in unblockers
                ):
                    graph.add(a, b)
                    break
    # rule 2: channels in the same select depend on each other
    for a, b, _ in _select_pairs(prims):
        graph.add(a, b)
        graph.add(b, a)
    graph.close_transitively()
    return graph


def _select_pairs(prims: List[Primitive]) -> List[Tuple[Primitive, Primitive, ir.Instr]]:
    by_select: Dict[int, Set[Primitive]] = {}
    select_instr: Dict[int, ir.Instr] = {}
    for prim in prims:
        for op in prim.operations:
            if op.select_case is not None:
                by_select.setdefault(id(op.instr), set()).add(prim)
                select_instr[id(op.instr)] = op.instr
    pairs: List[Tuple[Primitive, Primitive, ir.Instr]] = []
    for key, group in by_select.items():
        members = list(group)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                pairs.append((a, b, select_instr[key]))
    return pairs


def compute_pset(
    channel: Primitive,
    dep_graph: DependencyGraph,
    scopes: Dict[Primitive, Scope],
) -> List[Primitive]:
    """Primitives analyzed together with ``channel`` (paper §3.2).

    A primitive joins Pset when its scope is strictly smaller (creation
    site breaks size ties, making the order total, so of two same-scope
    primitives exactly one analysis sees both). Context Done channels never
    join: the program cannot unblock them, only the runtime can.
    """
    my_key = _scope_key(channel, scopes[channel])
    pset = [channel]
    for other, scope in scopes.items():
        if other is channel or other.site.kind == "ctxdone":
            continue
        if _scope_key(other, scope) < my_key and dep_graph.circular(channel, other):
            pset.append(other)
    return pset


def _scope_key(prim: Primitive, scope: Scope) -> Tuple[int, str, int, str]:
    return (scope.size, prim.site.function, prim.site.line, prim.site.label)
