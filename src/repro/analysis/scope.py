"""Usage-scope computation for primitives (§3.2, "How to compute scope?").

The scope of a channel extends from its creation site to the end of the
lowest-common-ancestor (LCA) function that can invoke all of the channel's
operations directly or indirectly, including every function called in
between. When no single function covers all operations (library analysis),
the scope is the union of the scopes of a covering set of functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.analysis.callgraph import CallGraph
from repro.analysis.primitives import Primitive, PrimitiveMap


@dataclass
class Scope:
    primitive: Primitive
    lca: Optional[str]
    functions: Set[str]

    @property
    def size(self) -> int:
        return len(self.functions)

    def contains_function(self, name: str) -> bool:
        return name in self.functions

    def __repr__(self) -> str:
        return f"<Scope lca={self.lca} |funcs|={self.size}>"


def compute_scope(primitive: Primitive, call_graph: CallGraph) -> Scope:
    program = call_graph.program
    if primitive.site.kind == "ctxdone":
        # context Done channels originate outside the analyzed program, so
        # their scope is the whole program (larger than any local channel's)
        return Scope(primitive, lca=None, functions=set(program.functions))
    op_functions = {op.function for op in primitive.operations}
    op_functions = {f for f in op_functions if f in program.functions}
    if not op_functions:
        return Scope(primitive, lca=None, functions=set())
    # the reach closure is memoized on the call graph, so all primitives of
    # one program share it instead of re-deriving it per primitive
    reach = call_graph.reach_closure

    covering = [f for f in program.functions if op_functions <= reach(f)]
    if covering:
        lca = min(covering, key=lambda f: (len(reach(f)), f))
        return Scope(primitive, lca=lca, functions=set(reach(lca)))
    # library case: no single root covers every operation; union the scopes
    # of the functions that directly contain operations
    union: Set[str] = set()
    for f in op_functions:
        union |= reach(f)
    return Scope(primitive, lca=None, functions=union)


def compute_all_scopes(pmap: PrimitiveMap, call_graph: CallGraph) -> Dict[Primitive, Scope]:
    return {prim: compute_scope(prim, call_graph) for prim in pmap}
