"""Andersen-style alias analysis for concurrency primitives.

Each primitive is identified by its *static creation site* (§3.1), and the
analysis answers "which creation sites can this operand refer to?". It is
flow-insensitive over the builder's unique register names, inclusion-based,
and inter-procedural along resolved call edges.

The two imprecision modes the paper attributes its alias false positives to
(§5.2) are reproduced deliberately:

* a channel *sent through another channel* is not tracked — the receive
  side gets a fresh opaque site (15 of the paper's 51 FPs);
* a channel *stored in a slice/array* is not unified with loads from the
  slice — element loads get a fresh opaque site (2 FPs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.ssa import ir


@dataclass(frozen=True)
class Site:
    """An abstract object: the static creation site of a primitive/value."""

    kind: str  # 'chan' | 'mutex' | 'rwmutex' | 'waitgroup' | 'ctxdone' | 'opaque'
    function: str
    line: int
    label: str = ""

    def __repr__(self) -> str:
        suffix = f":{self.label}" if self.label else ""
        return f"{self.kind}@{self.function}:{self.line}{suffix}"


class AliasAnalysis:
    """Computes points-to sets for every register name in the program."""

    def __init__(self, program: ir.Program, call_graph: CallGraph):
        self.program = program
        self.call_graph = call_graph
        self.points_to: Dict[str, Set[Site]] = {}
        # field-based heap locations: ('field', struct_hint, field_name)
        self._heap: Dict[Tuple[str, str], Set[Site]] = {}
        self._subset: Dict[str, Set[str]] = {}  # src name -> dst names
        self._field_writes: List[Tuple[str, str]] = []  # (field_key, src_name)
        self._field_reads: List[Tuple[str, str]] = []  # (dst_name, field_key)
        self._site_of_instr: Dict[int, Site] = {}

    # -- public API ---------------------------------------------------------

    def sites_of(self, op: ir.Operand) -> Set[Site]:
        if isinstance(op, ir.Var):
            return self.points_to.get(op.name, set())
        return set()

    def site_for_instruction(self, instr: ir.Instr) -> Optional[Site]:
        return self._site_of_instr.get(id(instr))

    def all_sites(self) -> Set[Site]:
        out: Set[Site] = set()
        for sites in self.points_to.values():
            out.update(sites)
        return out

    # -- constraint generation ----------------------------------------------

    def run(self) -> "AliasAnalysis":
        for func in self.program:
            self._collect(func)
        self._solve()
        return self

    def _add_site(self, name: str, site: Site) -> None:
        self.points_to.setdefault(name, set()).add(site)

    def _add_subset(self, src: str, dst: str) -> None:
        self._subset.setdefault(src, set()).add(dst)

    def _operand_name(self, op: ir.Operand) -> Optional[str]:
        return op.name if isinstance(op, ir.Var) else None

    def _collect(self, func: ir.Function) -> None:
        for instr in func.instructions():
            self._collect_instr(func, instr)

    def _collect_instr(self, func: ir.Function, instr: ir.Instr) -> None:
        if isinstance(instr, ir.MakeChan):
            site = Site("chan", func.name, instr.line, label=instr.dst.name)
            self._site_of_instr[id(instr)] = site
            self._add_site(instr.dst.name, site)
        elif isinstance(instr, ir.MakeMutex):
            kind = "rwmutex" if instr.rw else "mutex"
            site = Site(kind, func.name, instr.line, label=instr.dst.name)
            self._site_of_instr[id(instr)] = site
            self._add_site(instr.dst.name, site)
        elif isinstance(instr, ir.MakeWaitGroup):
            site = Site("waitgroup", func.name, instr.line, label=instr.dst.name)
            self._site_of_instr[id(instr)] = site
            self._add_site(instr.dst.name, site)
        elif isinstance(instr, ir.MakeCond):
            site = Site("cond", func.name, instr.line, label=instr.dst.name)
            self._site_of_instr[id(instr)] = site
            self._add_site(instr.dst.name, site)
        elif isinstance(instr, ir.CtxDone):
            # the Done channel of a context: keyed by the context operand's
            # root name so repeated ctx.Done() calls agree
            ctx_name = self._operand_name(instr.ctx) or "ctx"
            root = ctx_name.split("$")[0]
            site = Site("ctxdone", "<context>", 0, label=root)
            self._site_of_instr[id(instr)] = site
            self._add_site(instr.dst.name, site)
        elif isinstance(instr, ir.Assign):
            src = self._operand_name(instr.src)
            if src is not None:
                self._add_subset(src, instr.dst.name)
        elif isinstance(instr, ir.Recv):
            # channels-through-channels are NOT tracked: the received value
            # gets an opaque site (deliberate imprecision, paper §5.2)
            if instr.dst is not None:
                site = Site("opaque", func.name, instr.line, label="recv")
                self._add_site(instr.dst.name, site)
        elif isinstance(instr, ir.IndexGet):
            # slice loads are NOT unified with stores (deliberate imprecision)
            site = Site("opaque", func.name, instr.line, label="index")
            self._add_site(instr.dst.name, site)
        elif isinstance(instr, ir.FieldGet):
            key = (self._obj_hint(instr.obj), instr.field_name)
            self._field_reads.append((instr.dst.name, self._field_key(key)))
        elif isinstance(instr, ir.FieldSet):
            src = self._operand_name(instr.value)
            if src is not None:
                key = (self._obj_hint(instr.obj), instr.field_name)
                self._field_writes.append((self._field_key(key), src))
        elif isinstance(instr, ir.MakeStruct):
            for fname, op in instr.fields:
                src = self._operand_name(op)
                if src is not None:
                    key = (instr.type_name or instr.dst.name.split("$")[0], fname)
                    self._field_writes.append((self._field_key(key), src))
        elif isinstance(instr, (ir.Call, ir.Go)):
            self._collect_call(func, instr)
        elif isinstance(instr, ir.Select):
            for case in instr.cases:
                if case.dst is not None:
                    site = Site("opaque", func.name, case.line, label="recv")
                    self._add_site(case.dst.name, site)
        elif isinstance(instr, ir.RangeNext):
            if instr.dst is not None:
                site = Site("opaque", func.name, instr.line, label="recv")
                self._add_site(instr.dst.name, site)

    def _obj_hint(self, op: ir.Operand) -> str:
        """Struct type name when known, else the object's root register name."""
        name = self._operand_name(op)
        if name is None:
            return "?"
        kind = getattr(self.program, "kinds", {}).get(name, "any")
        if kind.startswith("struct:"):
            return kind.split(":", 1)[1]
        return name.split("$")[0]

    def _field_key(self, key: Tuple[str, str]) -> str:
        # field-based: unify on the field name; the object hint keeps
        # distinct structs with same-named fields apart when known
        return f"{key[0]}.{key[1]}"

    def _collect_call(self, func: ir.Function, instr: ir.Instr) -> None:
        callees = self._callees_of(instr)
        args = instr.args  # type: ignore[union-attr]
        for callee_name in callees:
            callee = self.program.functions.get(callee_name)
            if callee is None:
                continue
            for i, arg in enumerate(args):
                src = self._operand_name(arg)
                if src is not None and i < len(callee.params):
                    self._add_subset(src, callee.params[i])
            if isinstance(instr, ir.Call) and instr.dsts:
                for ret in self._return_operands(callee):
                    src = self._operand_name(ret)
                    if src is not None:
                        for i, dst in enumerate(instr.dsts):
                            # conservatively join all returns into all dsts of
                            # multi-value calls (positions are approximate)
                            self._add_subset(src, dst.name)

    def _callees_of(self, instr: ir.Instr) -> List[str]:
        for site in self.call_graph.sites:
            if site.instr is instr:
                return [] if site.ambiguous else site.callees
        func_op = instr.func_op  # type: ignore[union-attr]
        if isinstance(func_op, ir.FuncRef) and func_op.name in self.program.functions:
            return [func_op.name]
        return []

    def _return_operands(self, func: ir.Function) -> List[ir.Operand]:
        out: List[ir.Operand] = []
        for block in func.reachable_blocks():
            if isinstance(block.terminator, ir.Return):
                out.extend(block.terminator.values)
        return out

    # -- fixpoint -------------------------------------------------------------

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for src, dsts in self._subset.items():
                src_sites = self.points_to.get(src)
                if not src_sites:
                    continue
                for dst in dsts:
                    dst_sites = self.points_to.setdefault(dst, set())
                    before = len(dst_sites)
                    dst_sites.update(src_sites)
                    if len(dst_sites) != before:
                        changed = True
            for key, src in self._field_writes:
                src_sites = self.points_to.get(src)
                if not src_sites:
                    continue
                heap = self._heap.setdefault(("field", key), set())
                before = len(heap)
                heap.update(src_sites)
                if len(heap) != before:
                    changed = True
            for dst, key in self._field_reads:
                heap = self._heap.get(("field", key))
                if not heap:
                    continue
                dst_sites = self.points_to.setdefault(dst, set())
                before = len(dst_sites)
                dst_sites.update(heap)
                if len(dst_sites) != before:
                    changed = True


def run_alias_analysis(program: ir.Program, call_graph: CallGraph) -> AliasAnalysis:
    return AliasAnalysis(program, call_graph).run()
