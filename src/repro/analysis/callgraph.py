"""Call-graph construction (CHA-style) for MiniGo programs.

Reproduces both the capability and the documented imprecision of the
call-graph package the paper builds on (§5.1): direct calls and closure
invocations are resolved exactly; calls through method references or
function-valued variables are resolved by *signature matching*, and when
more than one candidate matches, GCatch "ignores the results" — which both
loses edges (missed bugs) and, where a blocking operation's unblocker sits
behind such a call, creates false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ssa import ir


@dataclass
class CallSite:
    caller: str
    instr: ir.Instr  # Call, Go or Defer
    callees: List[str]
    ambiguous: bool = False  # >1 candidate: edge dropped per the paper's rule


@dataclass
class CallGraph:
    program: ir.Program
    edges: Dict[str, Set[str]] = field(default_factory=dict)  # caller -> callees
    reverse: Dict[str, Set[str]] = field(default_factory=dict)  # callee -> callers
    sites: List[CallSite] = field(default_factory=list)
    ambiguous_sites: List[CallSite] = field(default_factory=list)
    # lazy memos; valid because the graph is immutable after build_call_graph.
    # Returned sets are shared — callers must not mutate them in place.
    _reach_memo: Dict[str, Set[str]] = field(default_factory=dict, repr=False)
    _spawn_memo: Dict[str, List] = field(default_factory=dict, repr=False)
    _closure_memo: Dict[str, Set[str]] = field(default_factory=dict, repr=False)

    def callees(self, name: str) -> Set[str]:
        return self.edges.get(name, set())

    def callers(self, name: str) -> Set[str]:
        return self.reverse.get(name, set())

    def reachable_from(self, name: str) -> Set[str]:
        """All functions transitively callable from ``name`` (inclusive)."""
        memo = self._reach_memo.get(name)
        if memo is not None:
            return memo
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, set()) - seen)
        self._reach_memo[name] = seen
        return seen

    def spawn_sites(self, name: str) -> List[Tuple[ir.Go, Optional[str]]]:
        """Go instructions inside ``name`` with their resolved child function."""
        memo = self._spawn_memo.get(name)
        if memo is not None:
            return memo
        func = self.program.functions.get(name)
        if func is None:
            self._spawn_memo[name] = []
            return self._spawn_memo[name]
        out: List[Tuple[ir.Go, Optional[str]]] = []
        for instr in func.instructions():
            if isinstance(instr, ir.Go):
                out.append((instr, _static_target(instr.func_op)))
        self._spawn_memo[name] = out
        return out

    def reach_closure(self, name: str) -> Set[str]:
        """Call-reachable plus goroutine-spawn-reachable functions from
        ``name`` — the difference closure every primitive scope is built
        from. Computed once per root and shared by all primitives
        (:mod:`repro.analysis.scope` used to re-derive it per primitive)."""
        memo = self._closure_memo.get(name)
        if memo is not None:
            return memo
        closure = self.reachable_from(name) | self._spawn_reach(name)
        self._closure_memo[name] = closure
        return closure

    def _spawn_reach(self, name: str) -> Set[str]:
        """Functions reachable through goroutine spawns from ``name``'s call tree."""
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for reachable in self.reachable_from(current):
                for _, child in self.spawn_sites(reachable):
                    if child is not None and child not in seen:
                        seen.add(child)
                        frontier.append(child)
        return seen


def _static_target(op: ir.Operand) -> Optional[str]:
    if isinstance(op, ir.FuncRef) and not op.name.startswith("$"):
        return op.name
    return None


def build_call_graph(program: ir.Program) -> CallGraph:
    graph = CallGraph(program)
    names = set(program.functions)
    for func in program:
        graph.edges.setdefault(func.name, set())
        for instr in func.instructions():
            if isinstance(instr, (ir.Call, ir.Go, ir.Defer)):
                site = _resolve_site(program, func.name, instr, names)
                if site is None:
                    continue
                graph.sites.append(site)
                if site.ambiguous:
                    graph.ambiguous_sites.append(site)
                    continue
                for callee in site.callees:
                    graph.edges.setdefault(func.name, set()).add(callee)
                    graph.reverse.setdefault(callee, set()).add(func.name)
    return graph


def _resolve_site(
    program: ir.Program, caller: str, instr: ir.Instr, names: Set[str]
) -> Optional[CallSite]:
    func_op = instr.func_op  # type: ignore[union-attr]
    if isinstance(func_op, ir.FuncRef):
        if func_op.name.startswith("$"):
            return None  # builtin defer pseudo-op
        if func_op.name in names:
            return CallSite(caller, instr, [func_op.name])
        return CallSite(caller, instr, [])  # external stub
    if isinstance(func_op, ir.MethodRef):
        candidates = [n for n in names if n.endswith("." + func_op.name)]
        if len(candidates) == 1:
            return CallSite(caller, instr, candidates)
        return CallSite(caller, instr, candidates, ambiguous=len(candidates) > 1)
    if isinstance(func_op, ir.Var):
        # function-pointer call: signature matching by parameter count
        arity = len(instr.args)  # type: ignore[union-attr]
        candidates = [
            n
            for n in names
            if len(program.functions[n].params) == arity and "." not in n
        ]
        if len(candidates) == 1:
            return CallSite(caller, instr, candidates)
        return CallSite(caller, instr, candidates, ambiguous=len(candidates) > 1)
    return None


def functions_containing(program: ir.Program, predicate) -> Set[str]:
    """Names of functions with at least one instruction matching predicate."""
    out: Set[str] = set()
    for func in program:
        if any(predicate(instr) for instr in func.instructions()):
            out.add(func.name)
    return out


def transitive_touchers(graph: CallGraph, direct: Set[str]) -> Set[str]:
    """Functions that reach a function in ``direct`` through calls."""
    out = set(direct)
    changed = True
    while changed:
        changed = False
        for caller, callees in graph.edges.items():
            if caller not in out and callees & out:
                out.add(caller)
                changed = True
    return out
