"""Discovery of concurrency primitives and their operations (§3.1).

Primitives are identified by static creation site; operations are mapped to
primitives through the alias analysis, exactly as Algorithm 1's
``SearchSynPrimitives``/``SearchSynOperations`` steps do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.alias import AliasAnalysis, Site
from repro.analysis.callgraph import CallGraph
from repro.ssa import ir
from repro.ssa.builder import (
    DEFER_CLOSE,
    DEFER_LOCK,
    DEFER_RLOCK,
    DEFER_RUNLOCK,
    DEFER_SEND,
    DEFER_UNLOCK,
    DEFER_WG_DONE,
)

# operation kinds that park the executing goroutine until another acts
BLOCKING_KINDS = frozenset(["send", "recv", "lock", "rlock", "wait", "select", "condwait"])
# operation kinds that can release a parked partner
UNBLOCKING_KINDS = frozenset(["send", "recv", "close", "unlock", "runlock", "done", "signal"])


@dataclass
class Operation:
    """One operation on one primitive, at one instruction."""

    site: Site
    kind: str
    function: str
    instr: ir.Instr
    line: int
    select_case: Optional[ir.SelectCase] = None

    @property
    def blocking(self) -> bool:
        return self.kind in BLOCKING_KINDS

    @property
    def unblocking(self) -> bool:
        return self.kind in UNBLOCKING_KINDS

    def __repr__(self) -> str:
        return f"<{self.kind} {self.site!r} @{self.function}:{self.line}>"


@dataclass(eq=False)
class Primitive:
    site: Site
    operations: List[Operation] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.site.kind

    @property
    def is_channel(self) -> bool:
        return self.site.kind in ("chan", "ctxdone")

    @property
    def is_mutex(self) -> bool:
        return self.site.kind in ("mutex", "rwmutex")

    def ops_of_kind(self, *kinds: str) -> List[Operation]:
        return [op for op in self.operations if op.kind in kinds]

    def buffer_size(self) -> Optional[int]:
        """Static buffer size when the creation site's make() is constant."""
        for op in self.operations:
            if op.kind == "create" and isinstance(op.instr, ir.MakeChan):
                if isinstance(op.instr.size, ir.Const):
                    return int(op.instr.size.value or 0)
        if self.site.kind == "ctxdone":
            return 0
        return None

    def __repr__(self) -> str:
        return f"<Primitive {self.site!r} ({len(self.operations)} ops)>"


class PrimitiveMap:
    """All primitives of a program plus the operation index."""

    def __init__(self):
        self.primitives: Dict[Site, Primitive] = {}

    def add(self, site: Site, operation: Operation) -> None:
        self.primitives.setdefault(site, Primitive(site)).operations.append(operation)

    def channels(self) -> List[Primitive]:
        return [p for p in self.primitives.values() if p.is_channel]

    def mutexes(self) -> List[Primitive]:
        return [p for p in self.primitives.values() if p.is_mutex]

    def get(self, site: Site) -> Optional[Primitive]:
        return self.primitives.get(site)

    def operations_in_function(self, name: str) -> List[Operation]:
        return [
            op
            for prim in self.primitives.values()
            for op in prim.operations
            if op.function == name
        ]

    def __iter__(self):
        return iter(self.primitives.values())

    def __len__(self) -> int:
        return len(self.primitives)


_DEFER_OP = {
    DEFER_CLOSE: "close",
    DEFER_UNLOCK: "unlock",
    DEFER_RUNLOCK: "runlock",
    DEFER_LOCK: "lock",
    DEFER_RLOCK: "rlock",
    DEFER_WG_DONE: "done",
    DEFER_SEND: "send",
}


def find_primitives(
    program: ir.Program, call_graph: CallGraph, alias: AliasAnalysis
) -> PrimitiveMap:
    pmap = PrimitiveMap()
    for func in program:
        for instr in func.instructions():
            _index_instr(pmap, alias, func.name, instr)
    # keep only primitives with a known creation site or ctxdone origin;
    # opaque sites are deliberately excluded (they are the alias-analysis
    # blind spots and are not analyzable primitives)
    drop = [site for site in pmap.primitives if site.kind == "opaque"]
    for site in drop:
        del pmap.primitives[site]
    return pmap


def _index_instr(pmap: PrimitiveMap, alias: AliasAnalysis, fname: str, instr: ir.Instr) -> None:
    def record(op_kind: str, chan_op: ir.Operand, select_case: Optional[ir.SelectCase] = None,
               line: Optional[int] = None) -> None:
        for site in alias.sites_of(chan_op):
            pmap.add(
                site,
                Operation(
                    site=site,
                    kind=op_kind,
                    function=fname,
                    instr=instr,
                    line=line if line is not None else instr.line,
                    select_case=select_case,
                ),
            )

    if isinstance(instr, (ir.MakeChan, ir.MakeMutex, ir.MakeWaitGroup, ir.MakeCond)):
        site = alias.site_for_instruction(instr)
        if site is not None:
            pmap.add(site, Operation(site=site, kind="create", function=fname, instr=instr, line=instr.line))
    elif isinstance(instr, ir.CtxDone):
        site = alias.site_for_instruction(instr)
        if site is not None:
            pmap.add(site, Operation(site=site, kind="create", function=fname, instr=instr, line=instr.line))
    elif isinstance(instr, ir.Send):
        record("send", instr.chan)
    elif isinstance(instr, ir.Recv):
        record("recv", instr.chan)
    elif isinstance(instr, ir.RangeNext):
        record("recv", instr.chan)
    elif isinstance(instr, ir.Close):
        record("close", instr.chan)
    elif isinstance(instr, ir.Lock):
        record("rlock" if instr.read else "lock", instr.mutex)
    elif isinstance(instr, ir.Unlock):
        record("runlock" if instr.read else "unlock", instr.mutex)
    elif isinstance(instr, ir.WgAdd):
        record("add", instr.wg)
    elif isinstance(instr, ir.WgDone):
        record("done", instr.wg)
    elif isinstance(instr, ir.WgWait):
        record("wait", instr.wg)
    elif isinstance(instr, ir.CondWait):
        record("condwait", instr.cond)
    elif isinstance(instr, ir.CondSignal):
        record("signal", instr.cond)
    elif isinstance(instr, ir.Select):
        for case in instr.cases:
            kind = "send" if case.kind == "send" else "recv"
            record(kind, case.chan, select_case=case, line=case.line)
    elif isinstance(instr, ir.Defer):
        if isinstance(instr.func_op, ir.FuncRef) and instr.func_op.name in _DEFER_OP:
            record(_DEFER_OP[instr.func_op.name], instr.args[0])
