"""Strategy III — adding a stop channel (paper §4.4).

Fixes *multiple-operations* bugs: Go-B operates on ``c`` repeatedly (often
in a loop), so no buffer bump or defer can help. The patch declares a
``stop`` channel next to ``c``, defers closing it in the function that
declares ``c``, and rewrites the blocking ``o2`` into a two-case ``select``
whose second case receives from ``stop`` and returns — once Go-A leaves the
function, the deferred close unblocks Go-B and stops it (Figure 4).
"""

from __future__ import annotations

from typing import List, Optional

from repro.fixer.patch import LineEdit, Patch, indent_of, line_text
from repro.fixer.safety import REASON_SIDE_EFFECTS, BugShape, side_effects_after
from repro.ssa import ir


def try_strategy_stop(
    program: ir.Program, source: str, shape: BugShape, alias=None
) -> Optional[Patch]:
    """Attempt Strategy III; returns a Patch or None when the bug doesn't fit."""
    if shape.child_func is None or shape.blocked_event is None:
        return None
    if not shape.blocked_in_child:
        return None
    # Go-B must conduct o2 in the function it was created to run (the patch
    # uses `return` to stop Go-B), i.e. o2's function is the spawn target
    if shape.blocked_event.kind not in ("send", "recv"):
        return None
    # this strategy targets the *multiple-operations* class: Go-B operates
    # on c repeatedly, or is spawned in a loop (single-op, single-spawn bugs
    # belong to Strategies I/II and their safety checks)
    if len(shape.child_ops) <= 1 and not shape.spawn_in_loop:
        return None
    blocked_line = shape.blocked_event.line
    if not any(op.line == blocked_line for op in shape.child_ops):
        return None
    # side effects after o2 — except further operations on c itself
    effects = side_effects_after(
        program,
        shape.child_func,
        shape.blocked_event.instr,
        allow_ops_on=shape.channel,
        alias=alias,
        exclude_reachable_before=True,
    )
    if effects:
        shape.reject_reason = REASON_SIDE_EFFECTS
        return None
    stop_name = _fresh_stop_name(source)
    decl_indent = indent_of(source, shape.creation_line)
    o2_text = line_text(source, blocked_line)
    o2_stmt = o2_text.strip()
    if not _wrappable(o2_stmt):
        return None
    o2_indent = indent_of(source, blocked_line)
    select_lines = [
        f"{o2_indent}select {{",
        f"{o2_indent}case {o2_stmt}:",
        f"{o2_indent}case <-{stop_name}:",
        f"{o2_indent}\treturn",
        f"{o2_indent}}}",
    ]
    edits: List[LineEdit] = [
        LineEdit(
            after=shape.creation_line,
            new_lines=[
                f"{decl_indent}{stop_name} := make(chan struct{{}})",
                f"{decl_indent}defer close({stop_name})",
            ],
        ),
        LineEdit(line=blocked_line, new_lines=select_lines),
    ]
    return Patch(
        strategy="stop",
        description=(
            f"add a {stop_name!r} channel closed via defer in {shape.creator_func}; "
            f"rewrite the blocking operation at line {blocked_line} into a select"
        ),
        original=source,
        edits=edits,
    )


def _wrappable(stmt: str) -> bool:
    """Only plain sends and bare receives can become select cases here."""
    if "<-" not in stmt:
        return False
    if stmt.startswith("<-"):
        return True  # bare receive
    if ":=" in stmt or "=" in stmt.split("<-")[0]:
        return False  # receive with a binding: the case body would need it
    return True  # `c <- v` send


def _fresh_stop_name(source: str) -> str:
    for candidate in ("stop", "stopCh", "stopGfix"):
        if candidate not in source:
            return candidate
    index = 2
    while f"stop{index}" in source:
        index += 1
    return f"stop{index}"
