"""Automated patch validation — the paper's other §6 future-work item.

The paper validates GFix's patches manually ("we manually validate the
patches' correctness... We leave the design of an automated patch testing
framework for Go to future work"). This module automates that process on
the MiniGo substrate with three checks per patch:

1. **bug elimination (static)** — re-running GCatch on the patched program
   produces no report on the patched channel;
2. **bug elimination (dynamic)** — no schedule of the patched program
   leaks a goroutine or deadlocks. This check is *exhaustive* by default:
   the systematic explorer enumerates every interleaving (modulo
   commutation of independent steps), so a pass is a proof within the
   program's semantics, not a sampling claim. When the schedule space
   exceeds the exploration bound (e.g. unbounded loops), validation falls
   back to the paper's seeded random sampling and logs the downgrade;
3. **semantics preservation** — every observable behaviour (println trace,
   panic status, test verdict) the *original* program exhibits on cleanly
   completing schedules is still achievable by the patched program; new
   patched behaviours are allowed (they are the previously-blocking
   executions, now completing or stopping).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional

from repro.detector.bmoc import detect_bmoc
from repro.fixer.dispatcher import FixResult
from repro.resilience.faultinject import maybe_fault
from repro.resilience.firewall import Firewall
from repro.resilience.incidents import Incident
from repro.runtime.explorer import explore
from repro.runtime.scheduler import run_program
from repro.ssa.builder import build_program

logger = logging.getLogger(__name__)


@dataclass
class ValidationDowngrade:
    """Structured record of an exhaustive→sampled validation downgrade."""

    which: str  # "original" or "patched": whose schedule space blew the bound
    max_runs: int  # the exploration bound that was exceeded
    seeds: int  # how many seeded schedules the fallback sampled

    @property
    def reason(self) -> str:
        return (
            f"schedule space of the {self.which} program exceeds the "
            f"exploration bound ({self.max_runs} runs); falling back to "
            f"{self.seeds} seeded schedules"
        )


@dataclass
class PatchValidation:
    """Outcome of validating one patch."""

    entry: str
    static_clean: bool = False
    schedules_run: int = 0
    patched_leaks: int = 0
    patched_panics: int = 0
    semantics_mismatches: List[int] = field(default_factory=list)  # seeds / outcome ids
    comparable_schedules: int = 0
    exhaustive: bool = False  # dynamic verdicts cover the whole schedule space
    fallback: bool = False  # bound exceeded: reverted to seeded sampling
    downgrade: Optional[ValidationDowngrade] = None  # why, when fallback is True
    incident: Optional[Incident] = None  # validation itself crashed (firewalled)

    @property
    def dynamic_clean(self) -> bool:
        return self.patched_leaks == 0 and self.patched_panics == 0

    @property
    def semantics_preserved(self) -> bool:
        return not self.semantics_mismatches

    @property
    def correct(self) -> bool:
        return (
            self.incident is None
            and self.static_clean
            and self.dynamic_clean
            and self.semantics_preserved
        )

    def render(self) -> str:
        if self.incident is not None:
            return (
                f"ERROR (entry {self.entry}): validation crashed — "
                f"{self.incident.exception}: {self.incident.message}"
            )
        verdict = "CORRECT" if self.correct else "REJECTED"
        mode = "exhaustive" if self.exhaustive else "sampled"
        parts = [
            f"{verdict} (entry {self.entry}, {self.schedules_run} schedules, {mode})",
            f"  static: {'clean' if self.static_clean else 'still reported'}",
            f"  dynamic: {self.patched_leaks} leaks, {self.patched_panics} panics",
            f"  semantics: {self.comparable_schedules} comparable schedules, "
            f"{len(self.semantics_mismatches)} mismatches",
        ]
        if self.downgrade is not None:
            parts.append(f"  downgrade: {self.downgrade.reason}")
        return "\n".join(parts)


def validate_patch(
    original_source: str,
    fix: FixResult,
    entry: str,
    seeds: int = 25,
    max_steps: int = 50_000,
    max_runs: int = 512,
    collector=None,
) -> PatchValidation:
    """Run the three-check validation for one GFix patch.

    Dynamic checks use exhaustive schedule exploration bounded by
    ``max_runs``; ``seeds`` only matters when that bound is exceeded and
    validation degrades to seeded sampling. ``collector`` (a
    :class:`repro.obs.Collector`) receives a ``validate`` span plus the
    sample counters.
    """
    from repro.obs import NULL

    obs = collector or NULL
    if fix.patch is None:
        raise ValueError("fix produced no patch to validate")

    validation = PatchValidation(entry=entry)
    firewall = Firewall(collector=obs)
    with obs.span("validate"):
        guarded = firewall.call(
            lambda: _validate_body(
                validation, original_source, fix, entry, seeds, max_steps, max_runs, collector
            ),
            site="validate",
            label=entry,
        )
    if not guarded.ok:
        validation.incident = guarded.incident
    if obs:
        obs.count("validate.patches")
        obs.count("validate.samples", validation.schedules_run)
        obs.count("validate.fallback" if validation.fallback else "validate.exhaustive")
        obs.count("validate.mismatches", len(validation.semantics_mismatches))
        if validation.downgrade is not None:
            obs.count("validate.downgrade")
    return validation


def _validate_body(
    validation: PatchValidation,
    original_source: str,
    fix: FixResult,
    entry: str,
    seeds: int,
    max_steps: int,
    max_runs: int,
    collector,
) -> None:
    """The three checks; runs behind the ``validate`` firewall site."""
    maybe_fault("validate", entry)
    patched_source = fix.patch.apply()
    original = build_program(original_source, "original.go")
    patched = build_program(patched_source, "patched.go")

    validation.static_clean = _static_clean(patched, fix)

    patched_exp = explore(
        patched, entry=entry, max_runs=max_runs, max_steps=max_steps, collector=collector
    )
    original_exp = explore(
        original, entry=entry, max_runs=max_runs, max_steps=max_steps, collector=collector
    )
    if patched_exp.complete and original_exp.complete:
        _check_exhaustive(validation, original_exp, patched_exp)
    else:
        which = "patched" if not patched_exp.complete else "original"
        validation.downgrade = ValidationDowngrade(which=which, max_runs=max_runs, seeds=seeds)
        logger.warning("%s (entry %r)", validation.downgrade.reason, entry)
        validation.fallback = True
        _check_sampled(validation, original, patched, entry, seeds, max_steps)


def _check_exhaustive(validation, original_exp, patched_exp) -> None:
    """Dynamic + semantics checks over fully enumerated outcome sets."""
    validation.exhaustive = True
    validation.schedules_run = patched_exp.runs
    validation.patched_leaks = len(patched_exp.leaking())
    validation.patched_panics = sum(1 for o in patched_exp.outcomes if o.panicked)
    patched_signatures = {_signature(o) for o in patched_exp.outcomes}
    for index, outcome in enumerate(original_exp.outcomes):
        if outcome.blocked_forever or outcome.panicked:
            continue  # the bug fired (or crashed): nothing to preserve
        validation.comparable_schedules += 1
        if _signature(outcome) not in patched_signatures:
            validation.semantics_mismatches.append(index)


def _check_sampled(validation, original, patched, entry, seeds, max_steps) -> None:
    """The paper's random-sampling validation, kept as the fallback.

    Both programs are schedule-nondeterministic and the patch shifts RNG
    draws, so per-seed comparison is meaningless. Instead: every clean
    behaviour the ORIGINAL exhibits must still be achievable after the
    patch. (New patched behaviours are expected — they are the previously
    blocking executions, now completing.)
    """
    validation.schedules_run = seeds
    original_clean = set()
    patched_signatures = set()
    for seed in range(seeds):
        patched_outcome = run_program(patched, entry=entry, seed=seed, max_steps=max_steps)
        if patched_outcome.blocked_forever:
            validation.patched_leaks += 1
        if patched_outcome.panicked:
            validation.patched_panics += 1
        patched_signatures.add(_signature(patched_outcome))
        original_outcome = run_program(original, entry=entry, seed=seed, max_steps=max_steps)
        if original_outcome.blocked_forever or original_outcome.panicked:
            continue
        validation.comparable_schedules += 1
        original_clean.add((seed, _signature(original_outcome)))
    for seed, signature in sorted(original_clean):
        if signature not in patched_signatures:
            validation.semantics_mismatches.append(seed)


def _signature(outcome) -> tuple:
    return (tuple(sorted(outcome.output)), outcome.panicked, outcome.test_failed)


def _static_clean(patched_program, fix: FixResult) -> bool:
    """No report on the patched channel in the patched program."""
    label = fix.report.primitive.site.label if fix.report.primitive else None
    result = detect_bmoc(patched_program)
    if label is None:
        return not result.reports
    return not any(
        r.primitive is not None and r.primitive.site.label == label for r in result.reports
    )


def validate_all(
    original_source: str,
    fixes: List[FixResult],
    entry_of,
    seeds: int = 25,
) -> List[PatchValidation]:
    """Validate a batch of patches; ``entry_of(fix)`` names each driver."""
    out: List[PatchValidation] = []
    for fix in fixes:
        if not fix.fixed:
            continue
        entry = entry_of(fix)
        if entry is None:
            continue
        out.append(validate_patch(original_source, fix, entry, seeds=seeds))
    return out
