"""Automated patch validation — the paper's other §6 future-work item.

The paper validates GFix's patches manually ("we manually validate the
patches' correctness... We leave the design of an automated patch testing
framework for Go to future work"). This module automates that process on
the MiniGo substrate with three checks per patch:

1. **bug elimination (static)** — re-running GCatch on the patched program
   produces no report on the patched channel;
2. **bug elimination (dynamic)** — no schedule of the patched program
   leaks a goroutine or deadlocks (the paper's sleep-injection check);
3. **semantics preservation** — every observable behaviour (println trace,
   panic status, test verdict) the *original* program exhibits on cleanly
   completing schedules is still achievable by the patched program; new
   patched behaviours are allowed (they are the previously-blocking
   executions, now completing or stopping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.detector.bmoc import detect_bmoc
from repro.fixer.dispatcher import FixResult
from repro.runtime.scheduler import run_program
from repro.ssa.builder import build_program


@dataclass
class PatchValidation:
    """Outcome of validating one patch."""

    entry: str
    static_clean: bool = False
    schedules_run: int = 0
    patched_leaks: int = 0
    patched_panics: int = 0
    semantics_mismatches: List[int] = field(default_factory=list)  # seeds
    comparable_schedules: int = 0

    @property
    def dynamic_clean(self) -> bool:
        return self.patched_leaks == 0 and self.patched_panics == 0

    @property
    def semantics_preserved(self) -> bool:
        return not self.semantics_mismatches

    @property
    def correct(self) -> bool:
        return self.static_clean and self.dynamic_clean and self.semantics_preserved

    def render(self) -> str:
        verdict = "CORRECT" if self.correct else "REJECTED"
        parts = [
            f"{verdict} (entry {self.entry}, {self.schedules_run} schedules)",
            f"  static: {'clean' if self.static_clean else 'still reported'}",
            f"  dynamic: {self.patched_leaks} leaks, {self.patched_panics} panics",
            f"  semantics: {self.comparable_schedules} comparable schedules, "
            f"{len(self.semantics_mismatches)} mismatches",
        ]
        return "\n".join(parts)


def validate_patch(
    original_source: str,
    fix: FixResult,
    entry: str,
    seeds: int = 25,
    max_steps: int = 50_000,
) -> PatchValidation:
    """Run the three-check validation for one GFix patch."""
    if fix.patch is None:
        raise ValueError("fix produced no patch to validate")
    patched_source = fix.patch.apply()
    original = build_program(original_source, "original.go")
    patched = build_program(patched_source, "patched.go")

    validation = PatchValidation(entry=entry, schedules_run=seeds)
    validation.static_clean = _static_clean(patched, fix)

    # Both programs are schedule-nondeterministic and the patch shifts RNG
    # draws, so per-seed comparison is meaningless. Instead: every clean
    # behaviour the ORIGINAL exhibits must still be achievable after the
    # patch. (New patched behaviours are expected — they are the
    # previously-blocking executions, now completing.)
    original_clean = set()
    patched_signatures = set()
    for seed in range(seeds):
        patched_outcome = run_program(patched, entry=entry, seed=seed, max_steps=max_steps)
        if patched_outcome.blocked_forever:
            validation.patched_leaks += 1
        if patched_outcome.panicked:
            validation.patched_panics += 1
        patched_signatures.add(_signature(patched_outcome))
        original_outcome = run_program(original, entry=entry, seed=seed, max_steps=max_steps)
        if original_outcome.blocked_forever or original_outcome.panicked:
            continue  # the bug fired (or crashed): nothing to preserve
        validation.comparable_schedules += 1
        original_clean.add((seed, _signature(original_outcome)))
    for seed, signature in sorted(original_clean):
        if signature not in patched_signatures:
            validation.semantics_mismatches.append(seed)
    return validation


def _signature(outcome) -> tuple:
    return (tuple(sorted(outcome.output)), outcome.panicked, outcome.test_failed)


def _static_clean(patched_program, fix: FixResult) -> bool:
    """No report on the patched channel in the patched program."""
    label = fix.report.primitive.site.label if fix.report.primitive else None
    result = detect_bmoc(patched_program)
    if label is None:
        return not result.reports
    return not any(
        r.primitive is not None and r.primitive.site.label == label for r in result.reports
    )


def validate_all(
    original_source: str,
    fixes: List[FixResult],
    entry_of,
    seeds: int = 25,
) -> List[PatchValidation]:
    """Validate a batch of patches; ``entry_of(fix)`` names each driver."""
    out: List[PatchValidation] = []
    for fix in fixes:
        if not fix.fixed:
            continue
        entry = entry_of(fix)
        if entry is None:
            continue
        out.append(validate_patch(original_source, fix, entry, seeds=seeds))
    return out
