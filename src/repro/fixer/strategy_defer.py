"""Strategy II — deferring the unblocking operation (paper §4.3).

Fixes *missing-interaction* bugs: Go-A can leave the function where ``c``
is valid (via return, ``t.Fatal`` or panic) without executing ``o1``,
leaving Go-B blocked at ``o2``. The patch wraps ``o1`` in a ``defer``
placed right after the channel declaration, so Go's runtime performs it on
every exit path, and removes the original ``o1`` statements (Figure 3).
"""

from __future__ import annotations

from typing import List, Optional

import re

from repro.analysis.primitives import Operation
from repro.fixer.patch import LineEdit, Patch, indent_of, line_text
from repro.fixer.safety import (
    REASON_RECV_VALUE_USED,
    REASON_SIDE_EFFECTS,
    BugShape,
    op_in_loop,
    recv_value_used,
    side_effects_after,
)
from repro.ssa import cfg, ir

_COMPLEMENT = {"recv": ("send", "close"), "send": ("recv",)}


def try_strategy_defer(program: ir.Program, source: str, shape: BugShape) -> Optional[Patch]:
    """Attempt Strategy II; returns a Patch or None when the bug doesn't fit."""
    if shape.child_func is None or shape.blocked_event is None:
        return None
    if not shape.blocked_in_child or shape.spawn_in_loop:
        return None
    # o2 may be a send OR a receive here; still exactly one op in Go-B
    if shape.blocked_event.kind not in ("send", "recv"):
        return None
    if len(shape.child_ops) != 1 or op_in_loop(program, shape.child_ops[0]):
        return None
    effects = side_effects_after(program, shape.child_func, shape.blocked_event.instr)
    if effects:
        shape.reject_reason = REASON_SIDE_EFFECTS
        return None
    # the static o1s: parent-side operations that can unblock o2
    o1_kinds = _COMPLEMENT[shape.blocked_event.kind]
    o1s = [op for op in shape.parent_ops if op.kind in o1_kinds]
    if not o1s:
        return None
    kinds = {op.kind for op in o1s}
    if len(kinds) != 1:
        return None
    o1_kind = kinds.pop()
    # a received value that is used cannot be deferred (paper: 1 such bug)
    if o1_kind == "recv" and any(recv_value_used(program, op) for op in o1s):
        shape.reject_reason = REASON_RECV_VALUE_USED
        return None
    # moving an o1 to function exit is unsafe when synchronization happens
    # between the o1 and the return post-dominating it
    creator = program.functions.get(shape.creator_func)
    if creator is None:
        return None
    for op in o1s:
        if _sync_between_o1_and_return(creator, op):
            shape.reject_reason = REASON_SIDE_EFFECTS
            return None
    # placement (paper §4.3 step 4): all-close / all-recv / sends of the
    # same constant go right after the channel declaration; sends of the
    # same *variable* go after the defining site, provided it dominates
    # every return of the creator
    placement = _defer_placement(program, source, shape, o1_kind, o1s)
    if placement is None:
        return None
    defer_lines, insert_after = placement
    edits: List[LineEdit] = [LineEdit(after=insert_after, new_lines=defer_lines)]
    for op in o1s:
        edits.append(LineEdit(line=op.line, new_lines=[]))  # remove original o1
    return Patch(
        strategy="defer",
        description=(
            f"defer the {o1_kind} on {shape.channel.site.label!r} so every exit "
            f"path of {shape.creator_func} performs it"
        ),
        original=source,
        edits=edits,
    )


def _sync_between_o1_and_return(creator: ir.Function, op: Operation) -> bool:
    """Any synchronization operation after ``op`` within the creator?"""
    if op.instr is None:
        return False
    block = cfg.instruction_block(creator, op.instr)
    if block is None:
        return False
    instrs = list(block.all_instrs())
    idx = next(i for i, x in enumerate(instrs) if x is op.instr)
    pending = instrs[idx + 1 :]
    seen = set()
    stack = list(block.successors())
    while stack:
        succ = stack.pop()
        if succ.id in seen:
            continue
        seen.add(succ.id)
        pending.extend(succ.all_instrs())
        stack.extend(succ.successors())
    return any(
        isinstance(
            i, (ir.Send, ir.Recv, ir.Close, ir.Select, ir.Lock, ir.Unlock, ir.WgWait, ir.Go)
        )
        for i in pending
    )


_CONSTANT_PAYLOAD = re.compile(r'^(\d+|true|false|nil|struct\{\}\{\}|"[^"]*")$')
_IDENT_PAYLOAD = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _defer_placement(
    program: ir.Program,
    source: str,
    shape: BugShape,
    o1_kind: str,
    o1s: List[Operation],
) -> Optional[tuple]:
    """The defer's text plus the line it goes after, or None to reject."""
    chan_name = _channel_source_name(source, shape)
    if chan_name is None:
        return None
    indent = indent_of(source, shape.creation_line)
    if o1_kind == "close":
        return [f"{indent}defer close({chan_name})"], shape.creation_line
    if o1_kind == "recv":
        lines = [f"{indent}defer func() {{", f"{indent}\t<-{chan_name}", f"{indent}}}()"]
        return lines, shape.creation_line
    # sends: all o1s must send the same expression
    payloads = {_send_payload(source, op.line, chan_name) for op in o1s}
    if len(payloads) != 1:
        return None
    payload = payloads.pop()
    if payload is None:
        return None
    lines = [
        f"{indent}defer func() {{",
        f"{indent}\t{chan_name} <- {payload}",
        f"{indent}}}()",
    ]
    if _CONSTANT_PAYLOAD.match(payload):
        return lines, shape.creation_line
    if _IDENT_PAYLOAD.match(payload):
        define_line = _dominating_definition_line(program, shape.creator_func, payload)
        if define_line is None or define_line < shape.creation_line:
            return None
        indent = indent_of(source, define_line)
        lines = [
            f"{indent}defer func() {{",
            f"{indent}\t{chan_name} <- {payload}",
            f"{indent}}}()",
        ]
        return lines, define_line
    return None  # other payload shapes: GFix does not fix the bug (§4.3)


def _dominating_definition_line(
    program: ir.Program, creator_name: str, var_source_name: str
) -> Optional[int]:
    """Source line defining ``var_source_name``, when it dominates every
    return of the creator function; None otherwise."""
    from repro.ssa.dominators import dominator_tree

    creator = program.functions.get(creator_name)
    if creator is None:
        return None
    defining = None
    for block in creator.reachable_blocks():
        for instr in block.all_instrs():
            for var in instr.defs():
                if var.name.split("$")[0] == var_source_name:
                    if defining is not None:
                        return None  # multiple definitions: unsafe to move
                    defining = (block, instr)
    if defining is None:
        return None
    block, instr = defining
    tree = dominator_tree(creator)
    for exit_block in cfg.exit_blocks(creator):
        if not tree.dominates(block, exit_block):
            return None
    return instr.line


def _channel_source_name(source: str, shape: BugShape) -> Optional[str]:
    text = line_text(source, shape.creation_line).strip()
    if ":=" in text:
        return text.split(":=")[0].strip()
    if text.startswith("var "):
        return text.split()[1]
    return shape.channel.site.label.split("$")[0] or None


def _send_payload(source: str, line: int, chan_name: str) -> Optional[str]:
    text = line_text(source, line).strip()
    marker = f"{chan_name} <-"
    if text.startswith(marker):
        return text[len(marker) :].strip()
    if "<-" in text:
        return text.split("<-", 1)[1].strip()
    return None
