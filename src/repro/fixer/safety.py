"""Shared static safety checks for GFix (paper §4.1–§4.4).

GFix only patches bugs matching its formalization: two goroutines Go-A
(parent, creator of local channel ``c``) and Go-B (child), where Go-B is
blocked at operation ``o2`` because Go-A failed to conduct ``o1``. Before
transforming anything, GFix verifies:

* exactly two goroutines access ``c`` and the blocked one is the child;
* how many operations Go-B performs on ``c`` (once, for Strategies I/II);
* that unblocking ``o2`` causes no side effect beyond Go-B — no library
  calls, no other concurrency operations, no writes to variables defined
  outside Go-B after ``o2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.analysis.primitives import Operation, Primitive
from repro.detector.paths import OpEvent
from repro.detector.reporting import BugReport
from repro.ssa import cfg, ir


@dataclass
class BugShape:
    """The GFix-relevant anatomy of one BMOC bug."""

    channel: Primitive
    creator_func: str
    creation_line: int
    child_func: Optional[str]
    child_ops: List[Operation]
    parent_ops: List[Operation]
    blocked_event: Optional[OpEvent]
    blocked_in_child: bool
    spawn_in_loop: bool
    reject_reason: Optional[str] = None


REASON_PARENT_BLOCKED = "parent-blocked"
REASON_COMPLEX = "complex-goroutines"
REASON_SIDE_EFFECTS = "side-effects"
REASON_RECV_VALUE_USED = "recv-value-used"
REASON_NO_PATTERN = "no-pattern"


def analyze_shape(program: ir.Program, report: BugReport) -> BugShape:
    """Classify a BMOC bug against GFix's problem scope."""
    channel = report.primitive
    assert channel is not None
    creation = next((op for op in channel.operations if op.kind == "create"), None)
    creator_func = creation.function if creation else channel.site.function
    creation_line = creation.line if creation else channel.site.line
    non_create = [op for op in channel.operations if op.kind != "create"]
    accessing = {op.function for op in non_create}
    child_candidates = sorted(accessing - {creator_func})

    blocked_event = _blocked_event(report, channel)
    shape = BugShape(
        channel=channel,
        creator_func=creator_func,
        creation_line=creation_line,
        child_func=None,
        child_ops=[],
        parent_ops=[op for op in non_create if op.function == creator_func],
        blocked_event=blocked_event,
        blocked_in_child=False,
        spawn_in_loop=False,
    )
    if len(child_candidates) != 1:
        shape.reject_reason = REASON_COMPLEX
        return shape
    child_func = child_candidates[0]
    spawn = _spawn_instr(program, child_func)
    if spawn is None:
        shape.reject_reason = REASON_COMPLEX
        return shape
    shape.child_func = child_func
    shape.child_ops = [op for op in non_create if op.function == child_func]
    spawner = _containing_function(program, spawn)
    if spawner is not None:
        shape.spawn_in_loop = _in_loop(spawner, spawn)
    if blocked_event is None:
        shape.reject_reason = REASON_COMPLEX
        return shape
    blocked_func = _blocked_function(report)
    shape.blocked_in_child = blocked_func == child_func
    if not shape.blocked_in_child:
        shape.reject_reason = REASON_PARENT_BLOCKED
    return shape


def _blocked_event(report: BugReport, channel: Primitive) -> Optional[OpEvent]:
    for stop in report.stops:
        event = getattr(stop, "event", None)
        if isinstance(event, OpEvent) and event.prim is channel:
            return event
    return None


def _blocked_function(report: BugReport) -> Optional[str]:
    for stop in report.stops:
        event = getattr(stop, "event", None)
        if isinstance(event, OpEvent) and event.prim is report.primitive:
            if report.combination is not None:
                for goroutine in report.combination.goroutines:
                    if goroutine.gid == stop.gid:
                        return goroutine.path.function
    return None


def _spawn_instr(program: ir.Program, child_func: str) -> Optional[ir.Go]:
    for func in program:
        for instr in func.instructions():
            if isinstance(instr, ir.Go) and isinstance(instr.func_op, ir.FuncRef):
                if instr.func_op.name == child_func:
                    return instr
    return None


def _containing_function(program: ir.Program, instr: ir.Instr) -> Optional[ir.Function]:
    for func in program:
        for candidate in func.instructions():
            if candidate is instr:
                return func
    return None


def _in_loop(func: ir.Function, instr: ir.Instr) -> bool:
    block = cfg.instruction_block(func, instr)
    if block is None:
        return False
    # a block is in a loop when it can reach itself
    return any(cfg.block_reaches(succ, block) for succ in block.successors())


def op_in_loop(program: ir.Program, op: Operation) -> bool:
    func = program.functions.get(op.function)
    if func is None or op.instr is None:
        return False
    return _in_loop(func, op.instr)


def side_effects_after(
    program: ir.Program,
    func_name: str,
    o2_instr: ir.Instr,
    allow_ops_on: Optional[Primitive] = None,
    alias=None,
    exclude_reachable_before: bool = False,
) -> List[str]:
    """Describe side effects an unblocked Go-B would produce after ``o2``.

    With ``exclude_reachable_before`` (Strategy III), instructions that can
    also execute *before* ``o2`` — the body of the loop containing it — are
    not counted: they run in the original program regardless, so unblocking
    ``o2`` introduces no new behaviour through them.
    """
    func = program.functions.get(func_name)
    if func is None or o2_instr is None:
        return ["cannot locate o2"]
    after = _instructions_after(func, o2_instr)
    if exclude_reachable_before:
        before_ids = _instruction_ids_before(func, o2_instr)
        after = [i for i in after if id(i) not in before_ids]
    effects: List[str] = []
    allowed_sites = set()
    if allow_ops_on is not None and alias is not None:
        allowed_sites = {allow_ops_on.site}
    for instr in after:
        effect = _effect_of(instr, func, allowed_sites, alias)
        if effect is not None:
            effects.append(effect)
    return effects


def _instruction_ids_before(func: ir.Function, instr: ir.Instr) -> Set[int]:
    """ids of instructions on some path from entry up to (and incl.) instr."""
    target_block = cfg.instruction_block(func, instr)
    if target_block is None or func.entry is None:
        return set()
    out: Set[int] = set()
    for block in func.reachable_blocks():
        if block.id == target_block.id:
            instrs = list(block.all_instrs())
            idx = next(i for i, x in enumerate(instrs) if x is instr)
            out.update(id(x) for x in instrs[: idx + 1])
        elif cfg.block_reaches(block, target_block):
            out.update(id(x) for x in block.all_instrs())
    return out


def _instructions_after(func: ir.Function, instr: ir.Instr) -> List[ir.Instr]:
    block = cfg.instruction_block(func, instr)
    if block is None:
        return []
    out: List[ir.Instr] = []
    instrs = list(block.all_instrs())
    idx = next(i for i, x in enumerate(instrs) if x is instr)
    out.extend(instrs[idx + 1 :])
    seen: Set[int] = set()
    stack = list(block.successors())
    while stack:
        succ = stack.pop()
        if succ.id in seen or succ.id == block.id:
            continue
        seen.add(succ.id)
        out.extend(succ.all_instrs())
        stack.extend(succ.successors())
    return out


def _effect_of(instr: ir.Instr, func: ir.Function, allowed_sites, alias) -> Optional[str]:
    if isinstance(instr, (ir.Call, ir.Go)):
        target = instr.func_op
        name = target.name if isinstance(target, (ir.FuncRef, ir.MethodRef)) else "?"
        return f"calls {name} at line {instr.line}"
    if isinstance(instr, (ir.Send, ir.Recv, ir.Close, ir.RangeNext)):
        chan = instr.chan  # type: ignore[union-attr]
        if alias is not None and allowed_sites:
            if alias.sites_of(chan) and alias.sites_of(chan) <= allowed_sites:
                return None  # further ops on c itself are fine (Strategy III)
        return f"channel operation at line {instr.line}"
    if isinstance(instr, (ir.Lock, ir.Unlock, ir.WgAdd, ir.WgDone, ir.WgWait)):
        return f"lock/waitgroup operation at line {instr.line}"
    if isinstance(instr, ir.Select):
        return f"select at line {instr.line}"
    if isinstance(instr, ir.Assign) and instr.dst.name not in func.local_names:
        return f"writes outer variable {instr.dst.name} at line {instr.line}"
    if isinstance(instr, (ir.FieldSet, ir.IndexSet)):
        return f"writes shared structure at line {instr.line}"
    if isinstance(instr, ir.Fatal):
        return f"testing.Fatal at line {instr.line}"
    return None


def count_ops_on_channel(shape: BugShape) -> int:
    return len(shape.child_ops)


def recv_value_used(program: ir.Program, op: Operation) -> bool:
    """Is the value received by ``op`` consumed anywhere?"""
    instr = op.instr
    if not isinstance(instr, ir.Recv) or instr.dst is None:
        return False
    target = instr.dst.name
    for func in program:
        for candidate in func.instructions():
            if candidate is instr:
                continue
            for used in candidate.uses():
                if isinstance(used, ir.Var) and used.name == target:
                    return True
    return False
