"""GFix: dispatcher plus the three patchers (Figure 2, right half).

The dispatcher classifies each input BMOC bug with static analysis and
attempts Strategy I, then II, then III — the order that yields the simplest
(most readable) patch, matching the paper's configuration (§5.1). Timing is
recorded in two phases, preprocessing (IR + call graph + alias analysis,
~98% of GFix's time in the paper) and transformation.

Each strategy attempt runs behind the :mod:`repro.resilience` firewall
(injection site ``fix-apply``): a crashing patcher becomes an
:class:`~repro.resilience.incidents.Incident` on the :class:`FixResult`
and the dispatcher falls through to the next strategy — one bad strategy
never aborts a batch fix run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.alias import run_alias_analysis
from repro.analysis.callgraph import build_call_graph
from repro.detector.reporting import BugReport
from repro.fixer.patch import Patch
from repro.obs import NULL, Collector
from repro.resilience.faultinject import maybe_fault
from repro.resilience.firewall import Firewall
from repro.resilience.incidents import Incident
from repro.fixer.safety import REASON_NO_PATTERN, BugShape, analyze_shape
from repro.fixer.strategy_buffer import try_strategy_buffer
from repro.fixer.strategy_defer import try_strategy_defer
from repro.fixer.strategy_stop import try_strategy_stop
from repro.ssa import ir


@dataclass
class FixResult:
    """Outcome of GFix on one bug."""

    report: BugReport
    patch: Optional[Patch] = None
    reason: Optional[str] = None  # why no patch was generated
    preprocess_seconds: float = 0.0
    transform_seconds: float = 0.0
    # strategies that crashed (firewalled) while fixing this bug
    incidents: List[Incident] = field(default_factory=list)

    @property
    def fixed(self) -> bool:
        return self.patch is not None

    @property
    def strategy(self) -> Optional[str]:
        return self.patch.strategy if self.patch else None


@dataclass
class GFixSummary:
    results: List[FixResult] = field(default_factory=list)
    # the run's observability collector, when fixing ran with one
    trace: Optional[Collector] = None

    def incidents(self) -> List[Incident]:
        """Every strategy crash across the batch, in bug order."""
        return [incident for r in self.results for incident in r.incidents]

    def fixed(self) -> List[FixResult]:
        return [r for r in self.results if r.fixed]

    def unfixed(self) -> List[FixResult]:
        return [r for r in self.results if not r.fixed]

    def by_strategy(self, strategy: str) -> List[FixResult]:
        return [r for r in self.results if r.strategy == strategy]

    def average_changed_lines(self) -> float:
        fixed = self.fixed()
        if not fixed:
            return 0.0
        return sum(r.patch.changed_lines() for r in fixed) / len(fixed)


class GFix:
    """Automated patch synthesis for BMOC bugs detected by GCatch."""

    def __init__(self, program: ir.Program, source: str, collector: Optional[Collector] = None):
        start = time.perf_counter()
        self.program = program
        self.source = source
        self.collector = collector or NULL
        self.firewall = Firewall(collector=self.collector)
        # preprocessing mirrors the paper's: SSA conversion happened in the
        # builder; here the call graph and alias analysis are (re)computed
        with self.collector.span("fix-preprocess"):
            self.call_graph = build_call_graph(program)
            self.alias = run_alias_analysis(program, self.call_graph)
        self.preprocess_seconds = time.perf_counter() - start

    def fix(self, report: BugReport) -> FixResult:
        """Classify the bug and attempt Strategies I → II → III."""
        start = time.perf_counter()
        incidents_before = len(self.firewall.incidents)
        result = FixResult(report=report, preprocess_seconds=self.preprocess_seconds)
        with self.collector.span("fix-transform"):
            if report.category != "bmoc-chan" or report.primitive is None:
                result.reason = "GFix only fixes channel-only BMOC bugs"
                result.transform_seconds = time.perf_counter() - start
                return result
            shape = analyze_shape(self.program, report)
            if shape.reject_reason is not None:
                result.reason = shape.reject_reason
                result.transform_seconds = time.perf_counter() - start
                if self.collector:
                    self.collector.count("fix.rejected")
                return result
            patch = self._attempt(shape)
        if patch is not None:
            result.patch = patch
        else:
            result.reason = shape.reject_reason or REASON_NO_PATTERN
            if self.collector:
                self.collector.count("fix.unfixed")
        result.incidents = list(self.firewall.incidents[incidents_before:])
        result.transform_seconds = time.perf_counter() - start
        return result

    def fix_all(self, reports: List[BugReport]) -> GFixSummary:
        summary = GFixSummary(results=[self.fix(report) for report in reports])
        if self.collector:
            summary.trace = self.collector
        return summary

    # strategy order is the paper's: I (buffer) → II (defer) → III (stop)
    _STRATEGIES = (
        ("buffer", lambda self, shape: try_strategy_buffer(self.program, self.source, shape)),
        ("defer", lambda self, shape: try_strategy_defer(self.program, self.source, shape)),
        (
            "stop",
            lambda self, shape: try_strategy_stop(
                self.program, self.source, shape, alias=self.alias
            ),
        ),
    )

    def _attempt(self, shape: BugShape) -> Optional[Patch]:
        collector = self.collector
        label_suffix = shape.channel.site.label or ""
        for name, attempt in self._STRATEGIES:
            if collector:
                collector.count(f"fix.attempt.{name}")
            # a crashing strategy is an incident, not an abort: fall
            # through to the next strategy exactly as on a clean None
            guarded = self.firewall.call(
                lambda name=name, attempt=attempt: (
                    maybe_fault("fix-apply", f"{name}:{label_suffix}"),
                    attempt(self, shape),
                )[1],
                site="fix-apply",
                label=f"{name}:{label_suffix}",
            )
            patch = guarded.value if guarded.ok else None
            if patch is not None:
                if collector:
                    collector.count(f"fix.fixed.{name}")
                return patch
        return None


def fix_bugs(
    program: ir.Program, source: str, reports: List[BugReport], collector=None
) -> GFixSummary:
    """Convenience wrapper: run GFix on a batch of detected bugs."""
    return GFix(program, source, collector=collector).fix_all(reports)
