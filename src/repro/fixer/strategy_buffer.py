"""Strategy I — increasing buffer size (paper §4.2).

Fixes *single-sending* bugs: Go-B conducts exactly one sending operation on
an unbuffered channel; raising the buffer size from zero to one makes the
send non-blocking without changing semantics (the common "goroutine sends
its result at the end of a task" pattern). One changed line.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.fixer.patch import LineEdit, Patch, line_text
from repro.fixer.safety import (
    REASON_SIDE_EFFECTS,
    BugShape,
    op_in_loop,
    side_effects_after,
)
from repro.ssa import ir

_MAKE_CHAN_RE = re.compile(r"make\((chan\b[^(),]*)\)")


def try_strategy_buffer(program: ir.Program, source: str, shape: BugShape) -> Optional[Patch]:
    """Attempt Strategy I; returns a Patch or None when the bug doesn't fit."""
    if shape.child_func is None or shape.blocked_event is None:
        return None
    # step 1: exactly one blocking op, a send, on an unbuffered channel
    if shape.blocked_event.kind != "send":
        return None
    if shape.channel.buffer_size() != 0:
        return None
    # step 2: the channel is shared by exactly two goroutines — established
    # by analyze_shape — and the child executes o2; the child must also be
    # spawned once (not inside a loop), otherwise multiple children send
    if not shape.blocked_in_child or shape.spawn_in_loop:
        return None
    # step 3: Go-B conducts exactly one operation on c, and not in a loop
    if len(shape.child_ops) != 1:
        return None
    if any(op.kind != "send" for op in shape.child_ops):
        return None
    if op_in_loop(program, shape.child_ops[0]):
        return None
    # step 4: unblocking o2 must not leak side effects beyond Go-B
    effects = side_effects_after(program, shape.child_func, shape.blocked_event.instr)
    if effects:
        shape.reject_reason = REASON_SIDE_EFFECTS
        return None
    # transform: make(chan T) -> make(chan T, 1) at the creation line
    text = line_text(source, shape.creation_line)
    match = _MAKE_CHAN_RE.search(text)
    if match is None:
        return None
    new_text = text[: match.start()] + f"make({match.group(1)}, 1)" + text[match.end() :]
    return Patch(
        strategy="buffer",
        description=(
            f"increase buffer size of {shape.channel.site.label!r} from 0 to 1 "
            f"(line {shape.creation_line})"
        ),
        original=source,
        edits=[LineEdit(line=shape.creation_line, new_lines=[new_text])],
    )
