"""Patch representation and source surgery for GFix.

GFix patches are source-to-source edits (the paper dumps modified ASTs back
to Go source); here they are expressed as line-level operations on the
MiniGo source so that the changed-line metric of §5.3 (added + removed +
replaced lines) is computed exactly the way the paper counts it.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class LineEdit:
    """One edit: replace source line ``line`` (1-based) with ``new_lines``.

    ``new_lines=[]`` deletes the line; ``line=None`` with ``after`` set
    inserts after that line.
    """

    line: Optional[int] = None
    after: Optional[int] = None
    new_lines: List[str] = field(default_factory=list)


@dataclass
class Patch:
    """A synthesized fix for one BMOC bug."""

    strategy: str  # 'buffer' | 'defer' | 'stop'
    description: str
    original: str
    edits: List[LineEdit] = field(default_factory=list)

    def apply(self) -> str:
        lines = self.original.split("\n")
        replacements: dict = {}
        insertions: dict = {}
        for edit in self.edits:
            if edit.line is not None:
                replacements[edit.line] = edit.new_lines
            elif edit.after is not None:
                insertions.setdefault(edit.after, []).extend(edit.new_lines)
        out: List[str] = []
        for i, line in enumerate(lines, start=1):
            if i in replacements:
                out.extend(replacements[i])
            else:
                out.append(line)
            if i in insertions:
                out.extend(insertions[i])
        if 0 in insertions:
            out = insertions[0] + out
        return "\n".join(out)

    def changed_lines(self) -> int:
        """The paper's patch-readability metric: added + removed lines, with
        a replaced line counted once (Figure 1's patch "changes one line")."""
        before = self.original.split("\n")
        after = self.apply().split("\n")
        matcher = difflib.SequenceMatcher(a=before, b=after, autojunk=False)
        changed = 0
        for tag, i1, i2, j1, j2 in matcher.get_opcodes():
            if tag == "replace":
                changed += max(i2 - i1, j2 - j1)
            elif tag == "delete":
                changed += i2 - i1
            elif tag == "insert":
                changed += j2 - j1
        return changed

    def unified_diff(self, filename: str = "patched.go") -> str:
        before = self.original.split("\n")
        after = self.apply().split("\n")
        return "\n".join(
            difflib.unified_diff(before, after, fromfile=filename, tofile=filename, lineterm="")
        )


def indent_of(source: str, line: int) -> str:
    lines = source.split("\n")
    if 1 <= line <= len(lines):
        text = lines[line - 1]
        return text[: len(text) - len(text.lstrip())]
    return "\t"


def line_text(source: str, line: int) -> str:
    lines = source.split("\n")
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""
