"""Register-transfer IR for MiniGo, standing in for Go's ``go/ssa`` package.

Functions are lowered to basic blocks of instructions over named virtual
registers. Every instruction carries its source line, and channel/mutex
operations are first-class instruction kinds so the detector, the fixer and
the runtime interpreter all consume the same representation — mirroring how
GCatch, GFix and the authors' test harness all sit on ``go/ssa``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Operands


@dataclass(frozen=True)
class Const:
    value: object

    def __repr__(self) -> str:
        return f"#{self.value!r}"


@dataclass(frozen=True)
class Var:
    """A named virtual register; names are made unique per lexical binding."""

    name: str

    def __repr__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class FuncRef:
    """A reference to a declared function or a lowered function literal."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class MethodRef:
    """A method call whose receiver type is not statically known.

    The CHA call graph resolves this to *every* method with a matching name,
    reproducing the interface over-approximation the paper identifies as a
    false-positive source (§5.1: "the analysis reports all functions matching
    the signature as callees").
    """

    name: str

    def __repr__(self) -> str:
        return f"@?.{self.name}"


Operand = Union[Const, Var, FuncRef, MethodRef]


# ---------------------------------------------------------------------------
# Instructions


@dataclass
class Instr:
    line: int = 0

    def uses(self) -> List[Operand]:
        """Operands read by this instruction (for analyses)."""
        return []

    def defs(self) -> List[Var]:
        """Registers written by this instruction."""
        return []


@dataclass
class MakeChan(Instr):
    dst: Var = None  # type: ignore[assignment]
    elem_type: str = ""
    size: Operand = Const(0)

    def uses(self) -> List[Operand]:
        return [self.size]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class MakeMutex(Instr):
    """Materializes a mutex/rwmutex value (from ``var mu sync.Mutex``)."""

    dst: Var = None  # type: ignore[assignment]
    rw: bool = False

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class MakeWaitGroup(Instr):
    dst: Var = None  # type: ignore[assignment]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class MakeCond(Instr):
    """Materializes a condition variable (``var c sync.Cond``)."""

    dst: Var = None  # type: ignore[assignment]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class CondWait(Instr):
    cond: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.cond]


@dataclass
class CondSignal(Instr):
    cond: Operand = None  # type: ignore[assignment]
    broadcast: bool = False

    def uses(self) -> List[Operand]:
        return [self.cond]


@dataclass
class MakeContext(Instr):
    """Materializes a context whose Done() channel is program-scoped.

    ``cancel_dst`` (from ``context.WithCancel``) receives a cancel function
    that closes the Done channel.
    """

    dst: Var = None  # type: ignore[assignment]
    cancel_dst: Optional[Var] = None

    def defs(self) -> List[Var]:
        return [v for v in (self.dst, self.cancel_dst) if v is not None]


@dataclass
class MakeSlice(Instr):
    dst: Var = None  # type: ignore[assignment]
    elem_type: str = ""
    size: Operand = Const(0)

    def uses(self) -> List[Operand]:
        return [self.size]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class MakeStruct(Instr):
    dst: Var = None  # type: ignore[assignment]
    type_name: str = ""
    fields: List[Tuple[str, Operand]] = field(default_factory=list)

    def uses(self) -> List[Operand]:
        return [op for _, op in self.fields]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class Send(Instr):
    chan: Operand = None  # type: ignore[assignment]
    value: Operand = Const(None)

    def uses(self) -> List[Operand]:
        return [self.chan, self.value]


@dataclass
class Recv(Instr):
    dst: Optional[Var] = None
    ok_dst: Optional[Var] = None
    chan: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.chan]

    def defs(self) -> List[Var]:
        return [v for v in (self.dst, self.ok_dst) if v is not None]


@dataclass
class Close(Instr):
    chan: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.chan]


@dataclass
class Lock(Instr):
    mutex: Operand = None  # type: ignore[assignment]
    read: bool = False  # RLock

    def uses(self) -> List[Operand]:
        return [self.mutex]


@dataclass
class Unlock(Instr):
    mutex: Operand = None  # type: ignore[assignment]
    read: bool = False  # RUnlock

    def uses(self) -> List[Operand]:
        return [self.mutex]


@dataclass
class WgAdd(Instr):
    wg: Operand = None  # type: ignore[assignment]
    delta: Operand = Const(1)

    def uses(self) -> List[Operand]:
        return [self.wg, self.delta]


@dataclass
class WgDone(Instr):
    wg: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.wg]


@dataclass
class WgWait(Instr):
    wg: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.wg]


@dataclass
class Go(Instr):
    """Spawn a goroutine running ``func_op(args...)``."""

    func_op: Operand = None  # type: ignore[assignment]
    args: List[Operand] = field(default_factory=list)

    def uses(self) -> List[Operand]:
        return [self.func_op, *self.args]


@dataclass
class Call(Instr):
    dsts: List[Var] = field(default_factory=list)
    func_op: Operand = None  # type: ignore[assignment]
    args: List[Operand] = field(default_factory=list)

    def uses(self) -> List[Operand]:
        return [self.func_op, *self.args]

    def defs(self) -> List[Var]:
        return list(self.dsts)


@dataclass
class Defer(Instr):
    func_op: Operand = None  # type: ignore[assignment]
    args: List[Operand] = field(default_factory=list)

    def uses(self) -> List[Operand]:
        return [self.func_op, *self.args]


@dataclass
class Fatal(Instr):
    """``t.Fatal()`` / ``t.Fatalf()``: ends the calling goroutine."""

    testing: Operand = None  # type: ignore[assignment]
    method: str = "Fatal"

    def uses(self) -> List[Operand]:
        return [self.testing]


@dataclass
class Sleep(Instr):
    duration: Operand = Const(1)

    def uses(self) -> List[Operand]:
        return [self.duration]


@dataclass
class Println(Instr):
    args: List[Operand] = field(default_factory=list)

    def uses(self) -> List[Operand]:
        return list(self.args)


@dataclass
class BinOp(Instr):
    dst: Var = None  # type: ignore[assignment]
    op: str = ""
    left: Operand = None  # type: ignore[assignment]
    right: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.left, self.right]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class UnOp(Instr):
    dst: Var = None  # type: ignore[assignment]
    op: str = ""
    operand: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.operand]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class Assign(Instr):
    dst: Var = None  # type: ignore[assignment]
    src: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.src]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class FieldGet(Instr):
    dst: Var = None  # type: ignore[assignment]
    obj: Operand = None  # type: ignore[assignment]
    field_name: str = ""

    def uses(self) -> List[Operand]:
        return [self.obj]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class FieldSet(Instr):
    obj: Operand = None  # type: ignore[assignment]
    field_name: str = ""
    value: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.obj, self.value]


@dataclass
class IndexGet(Instr):
    dst: Var = None  # type: ignore[assignment]
    seq: Operand = None  # type: ignore[assignment]
    index: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.seq, self.index]

    def defs(self) -> List[Var]:
        return [self.dst]


@dataclass
class IndexSet(Instr):
    seq: Operand = None  # type: ignore[assignment]
    index: Operand = None  # type: ignore[assignment]
    value: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.seq, self.index, self.value]


@dataclass
class CtxDone(Instr):
    """``ctx.Done()``: loads the context's completion channel."""

    dst: Var = None  # type: ignore[assignment]
    ctx: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.ctx]

    def defs(self) -> List[Var]:
        return [self.dst]


# ---------------------------------------------------------------------------
# Terminators


@dataclass
class Terminator(Instr):
    def successors(self) -> List["Block"]:
        return []


@dataclass
class Jump(Terminator):
    target: "Block" = None  # type: ignore[assignment]

    def successors(self) -> List["Block"]:
        return [self.target]


@dataclass
class BranchCond:
    """Static description of a branch condition for infeasible-path pruning.

    GCatch "inspects branch conditions only involving read-only variables and
    constants" (§3.3); ``read_only`` records whether that applies here.
    """

    var: Optional[str] = None
    op: str = ""
    const: object = None
    read_only: bool = False


@dataclass
class CondJump(Terminator):
    cond: Operand = None  # type: ignore[assignment]
    true_block: "Block" = None  # type: ignore[assignment]
    false_block: "Block" = None  # type: ignore[assignment]
    branch_info: Optional[BranchCond] = None

    def uses(self) -> List[Operand]:
        return [self.cond]

    def successors(self) -> List["Block"]:
        return [self.true_block, self.false_block]


@dataclass
class SelectCase:
    """One communication case of a ``select`` terminator."""

    kind: str = "recv"  # 'recv' | 'send'
    chan: Operand = None  # type: ignore[assignment]
    value: Optional[Operand] = None  # for sends
    dst: Optional[Var] = None  # for recvs
    ok_dst: Optional[Var] = None
    target: "Block" = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class Select(Terminator):
    cases: List[SelectCase] = field(default_factory=list)
    default_target: Optional["Block"] = None

    def uses(self) -> List[Operand]:
        ops: List[Operand] = []
        for case in self.cases:
            ops.append(case.chan)
            if case.value is not None:
                ops.append(case.value)
        return ops

    def defs(self) -> List[Var]:
        out: List[Var] = []
        for case in self.cases:
            if case.dst is not None:
                out.append(case.dst)
            if case.ok_dst is not None:
                out.append(case.ok_dst)
        return out

    def successors(self) -> List["Block"]:
        succ = [case.target for case in self.cases]
        if self.default_target is not None:
            succ.append(self.default_target)
        return succ


@dataclass
class Return(Terminator):
    values: List[Operand] = field(default_factory=list)

    def uses(self) -> List[Operand]:
        return list(self.values)


@dataclass
class Panic(Terminator):
    message: Operand = Const("panic")

    def uses(self) -> List[Operand]:
        return [self.message]


@dataclass
class RangeNext(Terminator):
    """``for v := range ch``: receive-or-exit loop head over a channel."""

    dst: Optional[Var] = None
    chan: Operand = None  # type: ignore[assignment]
    body: "Block" = None  # type: ignore[assignment]
    done: "Block" = None  # type: ignore[assignment]

    def uses(self) -> List[Operand]:
        return [self.chan]

    def defs(self) -> List[Var]:
        return [self.dst] if self.dst is not None else []

    def successors(self) -> List["Block"]:
        return [self.body, self.done]


# ---------------------------------------------------------------------------
# Blocks / Functions / Program


class Block:
    """A basic block: straight-line instructions plus one terminator."""

    _counter = 0

    def __init__(self, label: str = ""):
        Block._counter += 1
        self.id = Block._counter
        self.label = label or f"b{self.id}"
        self.instrs: List[Instr] = []
        self.terminator: Optional[Terminator] = None

    def append(self, instr: Instr) -> None:
        if self.terminator is not None:
            raise ValueError(f"block {self.label} already terminated")
        self.instrs.append(instr)

    def terminate(self, term: Terminator) -> None:
        if self.terminator is None:
            self.terminator = term

    @property
    def terminated(self) -> bool:
        return self.terminator is not None

    def all_instrs(self) -> Iterator[Instr]:
        yield from self.instrs
        if self.terminator is not None:
            yield self.terminator

    def successors(self) -> List["Block"]:
        if self.terminator is None:
            return []
        return self.terminator.successors()

    def __repr__(self) -> str:
        return f"<Block {self.label}>"


class Function:
    """A lowered function: entry block, params, and metadata for analyses."""

    def __init__(
        self,
        name: str,
        params: Sequence[str],
        result_count: int = 0,
        decl_line: int = 0,
        is_closure: bool = False,
        parent: Optional["Function"] = None,
    ):
        self.name = name
        self.params = list(params)
        self.result_count = result_count
        self.decl_line = decl_line
        self.is_closure = is_closure
        self.parent = parent
        self.blocks: List[Block] = []
        self.entry: Optional[Block] = None
        # names of free variables a closure reads from its lexical parent
        self.free_vars: List[str] = []
        # every register declared inside this function (params + locals)
        self.local_names: set = set()
        # interface-like calls: callee could not be resolved statically
        self.dynamic_call_sites: List[Call] = []

    def new_block(self, label: str = "") -> Block:
        block = Block(label)
        self.blocks.append(block)
        if self.entry is None:
            self.entry = block
        return block

    def reachable_blocks(self) -> List[Block]:
        """Blocks reachable from entry, in DFS preorder."""
        if self.entry is None:
            return []
        seen: Dict[int, Block] = {}
        stack = [self.entry]
        order: List[Block] = []
        while stack:
            block = stack.pop()
            if block.id in seen:
                continue
            seen[block.id] = block
            order.append(block)
            stack.extend(reversed(block.successors()))
        return order

    def instructions(self) -> Iterator[Instr]:
        for block in self.reachable_blocks():
            yield from block.all_instrs()

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Program:
    """A whole lowered MiniGo program: all functions plus the source file."""

    def __init__(self, file, functions: Dict[str, Function]):
        self.file = file
        self.functions = functions
        # register name -> coarse kind ('chan', 'mutex', 'struct:Name', ...),
        # populated by the builder
        self.kinds: Dict[str, str] = {}

    @property
    def filename(self) -> str:
        return self.file.filename

    def function(self, name: str) -> Function:
        return self.functions[name]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())


BLOCKING_KINDS = (Send, Recv, Lock, WgWait, Select, RangeNext, CondWait)
CHANNEL_OP_KINDS = (MakeChan, Send, Recv, Close, Select, RangeNext)
