"""Lowering from the MiniGo AST to the register IR.

Responsibilities mirroring ``go/ssa``'s builder:

* lexical scoping with unique register names (shadowing-safe), so the
  flow-insensitive alias analysis can key facts on names;
* closure conversion — function literals become named functions with a
  recorded free-variable list and capture-by-reference semantics;
* lowering of ``select``, ``defer``, ``range`` and the sync-library method
  vocabulary (``Lock``/``Unlock``/``Add``/``Done``/``Wait``/``Fatal``/...)
  into first-class IR instructions;
* branch-condition metadata for GCatch's infeasible-path pruning (§3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.golang import ast_nodes as ast
from repro.golang.parser import parse_file
from repro.ssa import ir

# Pseudo-function names used as Defer targets for builtin operations.
DEFER_CLOSE = "$close"
DEFER_UNLOCK = "$unlock"
DEFER_RUNLOCK = "$runlock"
DEFER_LOCK = "$lock"
DEFER_RLOCK = "$rlock"
DEFER_WG_DONE = "$wgdone"
DEFER_SEND = "$send"

_MUTEX_KINDS = ("mutex", "rwmutex")


class BuildError(Exception):
    pass


def kind_of_type(typ: Optional[ast.Type]) -> str:
    """Map an AST type to the coarse 'kind' lattice used during lowering."""
    if typ is None:
        return "any"
    if isinstance(typ, ast.PointerType):
        return kind_of_type(typ.elem)
    if isinstance(typ, ast.ChanType):
        return "chan"
    if isinstance(typ, ast.SliceType):
        return "slice:" + kind_of_type(typ.elem)
    if isinstance(typ, ast.FuncType):
        return "func"
    if isinstance(typ, ast.NamedType):
        name = typ.name
        if name in ("int", "bool", "string", "unit", "error", "any", "buffer"):
            return name
        if name in ("mutex", "rwmutex", "waitgroup", "cond", "context", "testing"):
            return name
        return "struct:" + name
    return "any"


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, str] = {}  # source name -> unique register name

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, name: str, unique: str) -> None:
        self.names[name] = unique


class _LoopContext:
    def __init__(self, continue_block: ir.Block, break_block: ir.Block):
        self.continue_block = continue_block
        self.break_block = break_block


class _FunctionBuilder:
    """Lowers one function body (or function literal) to IR blocks."""

    def __init__(self, module: "ModuleBuilder", func: ir.Function, scope: _Scope, locals_set: set):
        self.module = module
        self.func = func
        self.scope = scope
        self.locals = locals_set
        self.block = func.new_block("entry")
        self.loops: List[_LoopContext] = []
        self._lit_counter = 0

    # -- register helpers ------------------------------------------------

    def temp(self, kind: str = "any") -> ir.Var:
        name = self.module.fresh_name("t")
        self.module.kinds[name] = kind
        self.locals.add(name)
        return ir.Var(name)

    def declare(self, source_name: str, kind: str) -> ir.Var:
        if source_name == "_":
            return self.temp(kind)
        unique = self.module.fresh_name(source_name)
        self.scope.declare(source_name, unique)
        self.module.kinds[unique] = kind
        self.locals.add(unique)
        return ir.Var(unique)

    def resolve(self, name: str) -> Optional[str]:
        return self.scope.lookup(name)

    def kind_of(self, op: ir.Operand) -> str:
        if isinstance(op, ir.Var):
            return self.module.kinds.get(op.name, "any")
        if isinstance(op, (ir.FuncRef, ir.MethodRef)):
            return "func"
        if isinstance(op, ir.Const):
            if isinstance(op.value, bool):
                return "bool"
            if isinstance(op.value, int):
                return "int"
            if isinstance(op.value, str):
                return "string"
        return "any"

    def emit(self, instr: ir.Instr) -> None:
        if self.block.terminated:
            # dead code after return/panic; emit into a fresh unreachable block
            self.block = self.func.new_block("dead")
        self.block.append(instr)

    def terminate(self, term: ir.Terminator) -> None:
        if not self.block.terminated:
            self.block.terminate(term)

    # -- statements --------------------------------------------------------

    def build_block(self, block: ast.Block) -> None:
        saved = self.scope
        self.scope = _Scope(saved)
        for stmt in block.stmts:
            self.build_stmt(stmt)
        self.scope = saved

    def build_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if method is None:
            raise BuildError(f"cannot lower statement {type(stmt).__name__}")
        method(stmt)

    def _stmt_Block(self, stmt: ast.Block) -> None:
        self.build_block(stmt)

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        expr = stmt.expr
        if isinstance(expr, ast.RecvExpr):
            chan = self.eval(expr.chan)
            self.emit(ir.Recv(line=expr.line, dst=None, ok_dst=None, chan=chan))
            return
        if isinstance(expr, ast.CallExpr):
            self.build_call(expr, dsts=[])
            return
        self.eval(expr)

    def _stmt_SendStmt(self, stmt: ast.SendStmt) -> None:
        chan = self.eval(stmt.chan)
        value = self.eval(stmt.value)
        self.emit(ir.Send(line=stmt.line, chan=chan, value=value))

    def _stmt_VarDecl(self, stmt: ast.VarDecl) -> None:
        kind = kind_of_type(stmt.type)
        if stmt.value is not None:
            value = self.eval(stmt.value)
            if kind == "any":
                kind = self.kind_of(value)
            dst = self.declare(stmt.name, kind)
            self.emit(ir.Assign(line=stmt.line, dst=dst, src=value))
            return
        dst = self.declare(stmt.name, kind)
        if kind in _MUTEX_KINDS:
            self.emit(ir.MakeMutex(line=stmt.line, dst=dst, rw=kind == "rwmutex"))
        elif kind == "waitgroup":
            self.emit(ir.MakeWaitGroup(line=stmt.line, dst=dst))
        elif kind == "cond":
            self.emit(ir.MakeCond(line=stmt.line, dst=dst))
        elif kind.startswith("struct:"):
            type_name = kind.split(":", 1)[1]
            fields = self._default_struct_fields(type_name, stmt.line)
            self.emit(ir.MakeStruct(line=stmt.line, dst=dst, type_name=type_name, fields=fields))
        else:
            self.emit(ir.Assign(line=stmt.line, dst=dst, src=ir.Const(_zero_value(kind))))

    def _stmt_AssignStmt(self, stmt: ast.AssignStmt) -> None:
        if len(stmt.rhs) == 1 and len(stmt.lhs) >= 2:
            self._build_multi_assign(stmt)
            return
        if (
            len(stmt.lhs) == 1
            and len(stmt.rhs) == 1
            and isinstance(stmt.rhs[0], ast.MakeExpr)
            and isinstance(stmt.lhs[0], ast.Ident)
        ):
            # lower `ch := make(...)` straight into the named register so
            # the creation site carries the source-level name
            self._build_make_into(stmt.lhs[0], stmt.rhs[0], stmt.is_decl)
            return
        if len(stmt.lhs) != len(stmt.rhs):
            raise BuildError(f"line {stmt.line}: assignment arity mismatch")
        values = [self.eval(rhs) for rhs in stmt.rhs]
        for target, value in zip(stmt.lhs, values):
            self._assign_target(target, value, stmt.is_decl, stmt.line)

    def _build_multi_assign(self, stmt: ast.AssignStmt) -> None:
        rhs = stmt.rhs[0]
        if isinstance(rhs, ast.RecvExpr):
            if len(stmt.lhs) != 2:
                raise BuildError(f"line {stmt.line}: channel receive yields two values")
            chan = self.eval(rhs.chan)
            dst = self._target_var(stmt.lhs[0], self._chan_elem_kind(chan), stmt.is_decl)
            ok = self._target_var(stmt.lhs[1], "bool", stmt.is_decl)
            self.emit(ir.Recv(line=rhs.line, dst=dst, ok_dst=ok, chan=chan))
            return
        if isinstance(rhs, ast.CallExpr):
            dsts = [self._target_var(t, "any", stmt.is_decl) for t in stmt.lhs]
            self.build_call(rhs, dsts=dsts)
            return
        raise BuildError(f"line {stmt.line}: unsupported multi-value assignment")

    def _build_make_into(self, target: ast.Ident, make: ast.MakeExpr, is_decl: bool) -> None:
        size = self.eval(make.size) if make.size is not None else ir.Const(0)
        if isinstance(make.type, ast.ChanType):
            dst = self._target_var(target, "chan", is_decl)
            self.emit(
                ir.MakeChan(
                    line=make.line, dst=dst, elem_type=kind_of_type(make.type.elem), size=size
                )
            )
            return
        if isinstance(make.type, ast.SliceType):
            elem = kind_of_type(make.type.elem)
            dst = self._target_var(target, "slice:" + elem, is_decl)
            self.emit(ir.MakeSlice(line=make.line, dst=dst, elem_type=elem, size=size))
            return
        raise BuildError(f"line {make.line}: make() supports chan and slice types")

    def _target_var(self, target: ast.Expr, kind: str, is_decl: bool) -> ir.Var:
        if not isinstance(target, ast.Ident):
            raise BuildError(f"line {target.line}: assignment target must be a name here")
        if target.name == "_":
            return self.temp(kind)
        if is_decl:
            return self.declare(target.name, kind)
        unique = self.resolve(target.name)
        if unique is None:
            return self.declare(target.name, kind)
        return ir.Var(unique)

    def _assign_target(self, target: ast.Expr, value: ir.Operand, is_decl: bool, line: int) -> None:
        if isinstance(target, ast.Ident):
            if target.name == "_":
                return
            if is_decl:
                dst = self.declare(target.name, self.kind_of(value))
            else:
                unique = self.resolve(target.name)
                if unique is None:
                    dst = self.declare(target.name, self.kind_of(value))
                else:
                    dst = ir.Var(unique)
                    if self.module.kinds.get(unique, "any") == "any":
                        self.module.kinds[unique] = self.kind_of(value)
            self.emit(ir.Assign(line=line, dst=dst, src=value))
            return
        if isinstance(target, ast.SelectorExpr):
            obj = self.eval(target.recv)
            self.emit(ir.FieldSet(line=line, obj=obj, field_name=target.name, value=value))
            return
        if isinstance(target, ast.IndexExpr):
            seq = self.eval(target.seq)
            index = self.eval(target.index)
            self.emit(ir.IndexSet(line=line, seq=seq, index=index, value=value))
            return
        if isinstance(target, ast.UnaryExpr) and target.op == "*":
            # writes through pointers degrade to writes to the pointed-at name
            inner = self.eval(target.operand)
            if isinstance(inner, ir.Var):
                self.emit(ir.Assign(line=line, dst=inner, src=value))
            return
        raise BuildError(f"line {line}: unsupported assignment target")

    def _stmt_IncDecStmt(self, stmt: ast.IncDecStmt) -> None:
        value = self.eval(stmt.target)
        if not isinstance(value, ir.Var):
            raise BuildError(f"line {stmt.line}: ++/-- target must be a variable")
        op = "+" if stmt.op == "++" else "-"
        self.emit(ir.BinOp(line=stmt.line, dst=value, op=op, left=value, right=ir.Const(1)))

    def _stmt_IfStmt(self, stmt: ast.IfStmt) -> None:
        cond = self.eval(stmt.cond)
        then_block = self.func.new_block("then")
        join_block = self.func.new_block("join")
        else_block = self.func.new_block("else") if stmt.orelse is not None else join_block
        branch = ir.CondJump(
            line=stmt.line,
            cond=cond,
            true_block=then_block,
            false_block=else_block,
            branch_info=self._branch_info(stmt.cond),
        )
        self.terminate(branch)
        self.block = then_block
        self.build_block(stmt.then)
        self.terminate(ir.Jump(line=stmt.then.end_line, target=join_block))
        if stmt.orelse is not None:
            self.block = else_block
            self.build_stmt(stmt.orelse)
            self.terminate(ir.Jump(line=stmt.line, target=join_block))
        self.block = join_block

    def _branch_info(self, cond: ast.Expr) -> Optional[ir.BranchCond]:
        """Extract ``var <op> const`` shape for infeasible-path pruning.

        The variable is recorded under its *unique register name* so path
        enumeration can decide read-only-ness by counting definitions.
        """
        if isinstance(cond, ast.Ident):
            return self._branch_cond(cond.name, "==", True)
        if isinstance(cond, ast.UnaryExpr) and cond.op == "!" and isinstance(cond.operand, ast.Ident):
            return self._branch_cond(cond.operand.name, "==", False)
        if isinstance(cond, ast.BinaryExpr) and cond.op in ("==", "!=", "<", "<=", ">", ">="):
            left, right, op = cond.left, cond.right, cond.op
            if isinstance(right, ast.Ident) and isinstance(left, (ast.IntLit, ast.BoolLit)):
                left, right = right, left
                op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
            if isinstance(left, ast.Ident):
                if isinstance(right, ast.IntLit):
                    return self._branch_cond(left.name, op, right.value)
                if isinstance(right, ast.BoolLit):
                    return self._branch_cond(left.name, op, right.value)
                if isinstance(right, ast.NilLit):
                    return self._branch_cond(left.name, op, None)
        return None

    def _branch_cond(self, source_name: str, op: str, const: object) -> Optional[ir.BranchCond]:
        unique = self.resolve(source_name)
        if unique is None:
            return None
        return ir.BranchCond(var=unique, op=op, const=const)

    def _stmt_ForStmt(self, stmt: ast.ForStmt) -> None:
        saved_scope = self.scope
        self.scope = _Scope(saved_scope)
        if stmt.init is not None:
            self.build_stmt(stmt.init)
        header = self.func.new_block("loop.head")
        body = self.func.new_block("loop.body")
        exit_block = self.func.new_block("loop.exit")
        post_block = self.func.new_block("loop.post") if stmt.post is not None else header
        self.terminate(ir.Jump(line=stmt.line, target=header))
        self.block = header
        if stmt.cond is not None:
            cond = self.eval(stmt.cond)
            self.terminate(
                ir.CondJump(
                    line=stmt.line,
                    cond=cond,
                    true_block=body,
                    false_block=exit_block,
                    branch_info=self._branch_info(stmt.cond),
                )
            )
        else:
            self.terminate(ir.Jump(line=stmt.line, target=body))
        self.loops.append(_LoopContext(continue_block=post_block, break_block=exit_block))
        self.block = body
        self.build_block(stmt.body)
        self.terminate(ir.Jump(line=stmt.body.end_line, target=post_block))
        self.loops.pop()
        if stmt.post is not None:
            self.block = post_block
            self.build_stmt(stmt.post)
            self.terminate(ir.Jump(line=stmt.line, target=header))
        self.block = exit_block
        self.scope = saved_scope

    def _stmt_RangeStmt(self, stmt: ast.RangeStmt) -> None:
        source = self.eval(stmt.source)
        kind = self.kind_of(source)
        if kind == "chan":
            self._build_chan_range(stmt, source)
        else:
            self._build_int_range(stmt, source)

    def _build_chan_range(self, stmt: ast.RangeStmt, chan: ir.Operand) -> None:
        saved_scope = self.scope
        self.scope = _Scope(saved_scope)
        header = self.func.new_block("range.head")
        body = self.func.new_block("range.body")
        exit_block = self.func.new_block("range.exit")
        self.terminate(ir.Jump(line=stmt.line, target=header))
        dst = self.declare(stmt.var, "any") if stmt.var != "_" else None
        header.terminate(
            ir.RangeNext(line=stmt.line, dst=dst, chan=chan, body=body, done=exit_block)
        )
        self.loops.append(_LoopContext(continue_block=header, break_block=exit_block))
        self.block = body
        self.build_block(stmt.body)
        self.terminate(ir.Jump(line=stmt.body.end_line, target=header))
        self.loops.pop()
        self.block = exit_block
        self.scope = saved_scope

    def _build_int_range(self, stmt: ast.RangeStmt, limit: ir.Operand) -> None:
        saved_scope = self.scope
        self.scope = _Scope(saved_scope)
        counter = self.declare(stmt.var, "int")
        self.emit(ir.Assign(line=stmt.line, dst=counter, src=ir.Const(0)))
        header = self.func.new_block("irange.head")
        body = self.func.new_block("irange.body")
        exit_block = self.func.new_block("irange.exit")
        self.terminate(ir.Jump(line=stmt.line, target=header))
        self.block = header
        cond = self.temp("bool")
        self.emit(ir.BinOp(line=stmt.line, dst=cond, op="<", left=counter, right=limit))
        self.terminate(
            ir.CondJump(line=stmt.line, cond=cond, true_block=body, false_block=exit_block)
        )
        self.loops.append(_LoopContext(continue_block=header, break_block=exit_block))
        self.block = body
        self.build_block(stmt.body)
        self.emit(ir.BinOp(line=stmt.body.end_line, dst=counter, op="+", left=counter, right=ir.Const(1)))
        self.terminate(ir.Jump(line=stmt.body.end_line, target=header))
        self.loops.pop()
        self.block = exit_block
        self.scope = saved_scope

    def _stmt_GoStmt(self, stmt: ast.GoStmt) -> None:
        func_op, args = self._callable_and_args(stmt.call)
        if func_op is None:
            raise BuildError(f"line {stmt.line}: cannot spawn builtin as goroutine")
        self.emit(ir.Go(line=stmt.line, func_op=func_op, args=args))

    def _stmt_DeferStmt(self, stmt: ast.DeferStmt) -> None:
        call = stmt.call
        # Builtin defers keep their operation kind visible to analyses.
        if isinstance(call.func, ast.Ident) and call.func.name == "close":
            chan = self.eval(call.args[0])
            self.emit(ir.Defer(line=stmt.line, func_op=ir.FuncRef(DEFER_CLOSE), args=[chan]))
            return
        if isinstance(call.func, ast.SelectorExpr):
            recv_kind, obj = self._method_receiver(call.func)
            name = call.func.name
            if recv_kind in _MUTEX_KINDS and name in ("Unlock", "RUnlock"):
                target = DEFER_RUNLOCK if name == "RUnlock" else DEFER_UNLOCK
                self.emit(ir.Defer(line=stmt.line, func_op=ir.FuncRef(target), args=[obj]))
                return
            if recv_kind in _MUTEX_KINDS and name in ("Lock", "RLock"):
                target = DEFER_RLOCK if name == "RLock" else DEFER_LOCK
                self.emit(ir.Defer(line=stmt.line, func_op=ir.FuncRef(target), args=[obj]))
                return
            if recv_kind == "waitgroup" and name == "Done":
                self.emit(ir.Defer(line=stmt.line, func_op=ir.FuncRef(DEFER_WG_DONE), args=[obj]))
                return
        func_op, args = self._callable_and_args(call)
        if func_op is None:
            raise BuildError(f"line {stmt.line}: cannot defer this builtin")
        self.emit(ir.Defer(line=stmt.line, func_op=func_op, args=args))

    def _stmt_ReturnStmt(self, stmt: ast.ReturnStmt) -> None:
        values = [self.eval(v) for v in stmt.values]
        self.terminate(ir.Return(line=stmt.line, values=values))

    def _stmt_BreakStmt(self, stmt: ast.BreakStmt) -> None:
        if not self.loops:
            raise BuildError(f"line {stmt.line}: break outside loop")
        self.terminate(ir.Jump(line=stmt.line, target=self.loops[-1].break_block))

    def _stmt_ContinueStmt(self, stmt: ast.ContinueStmt) -> None:
        if not self.loops:
            raise BuildError(f"line {stmt.line}: continue outside loop")
        self.terminate(ir.Jump(line=stmt.line, target=self.loops[-1].continue_block))

    def _stmt_SelectStmt(self, stmt: ast.SelectStmt) -> None:
        join = self.func.new_block("select.join")
        cases: List[ir.SelectCase] = []
        default_target: Optional[ir.Block] = None
        bodies: List[Tuple[ir.Block, List[ast.Stmt], List[Tuple[str, ir.Var]]]] = []
        for clause in stmt.cases:
            target = self.func.new_block("select.case")
            if clause.comm is None:
                default_target = target
                bodies.append((target, clause.body, []))
                continue
            case, bindings = self._lower_comm(clause.comm, target)
            cases.append(case)
            bodies.append((target, clause.body, bindings))
        self.terminate(ir.Select(line=stmt.line, cases=cases, default_target=default_target))
        for target, body_stmts, bindings in bodies:
            self.block = target
            saved = self.scope
            self.scope = _Scope(saved)
            for source_name, reg in bindings:
                self.scope.declare(source_name, reg.name)
            for inner in body_stmts:
                self.build_stmt(inner)
            self.terminate(ir.Jump(line=stmt.end_line, target=join))
            self.scope = saved
        self.block = join

    def _lower_comm(
        self, comm: ast.Stmt, target: ir.Block
    ) -> Tuple[ir.SelectCase, List[Tuple[str, ir.Var]]]:
        if isinstance(comm, ast.SendStmt):
            chan = self.eval(comm.chan)
            value = self.eval(comm.value)
            return (
                ir.SelectCase(kind="send", chan=chan, value=value, target=target, line=comm.line),
                [],
            )
        if isinstance(comm, ast.ExprStmt) and isinstance(comm.expr, ast.RecvExpr):
            chan = self.eval(comm.expr.chan)
            return (
                ir.SelectCase(kind="recv", chan=chan, target=target, line=comm.expr.line),
                [],
            )
        if isinstance(comm, ast.AssignStmt) and len(comm.rhs) == 1 and isinstance(comm.rhs[0], ast.RecvExpr):
            recv = comm.rhs[0]
            chan = self.eval(recv.chan)
            bindings: List[Tuple[str, ir.Var]] = []
            dst: Optional[ir.Var] = None
            ok_dst: Optional[ir.Var] = None
            names = [t.name if isinstance(t, ast.Ident) else "_" for t in comm.lhs]
            if names and names[0] != "_":
                dst = self._case_binding(names[0], "any")
                bindings.append((names[0], dst))
            if len(names) > 1 and names[1] != "_":
                ok_dst = self._case_binding(names[1], "bool")
                bindings.append((names[1], ok_dst))
            case = ir.SelectCase(
                kind="recv", chan=chan, dst=dst, ok_dst=ok_dst, target=target, line=recv.line
            )
            return case, bindings
        raise BuildError(f"line {comm.line}: unsupported select communication")

    def _case_binding(self, source_name: str, kind: str) -> ir.Var:
        unique = self.module.fresh_name(source_name)
        self.module.kinds[unique] = kind
        self.locals.add(unique)
        return ir.Var(unique)

    def _chan_elem_kind(self, chan: ir.Operand) -> str:
        kind = self.kind_of(chan)
        # element kinds are not tracked through channels; receives are 'any'
        return "any" if kind == "chan" else "any"

    # -- calls -------------------------------------------------------------

    def _method_receiver(self, sel: ast.SelectorExpr) -> Tuple[str, ir.Operand]:
        obj = self.eval(sel.recv)
        return self.kind_of(obj), obj

    def _callable_and_args(
        self, call: ast.CallExpr
    ) -> Tuple[Optional[ir.Operand], List[ir.Operand]]:
        """Evaluate a call's callee into an operand (None for builtins)."""
        func = call.func
        if isinstance(func, ast.FuncLit):
            lit_ref = self._lower_func_lit(func)
            return lit_ref, [self.eval(a) for a in call.args]
        if isinstance(func, ast.Ident):
            name = func.name
            if name in self.module.func_names:
                return ir.FuncRef(name), [self.eval(a) for a in call.args]
            unique = self.resolve(name)
            if unique is not None:
                return ir.Var(unique), [self.eval(a) for a in call.args]
            # undeclared plain function: external stub
            return ir.FuncRef(name), [self.eval(a) for a in call.args]
        if isinstance(func, ast.SelectorExpr):
            recv_kind, obj = self._method_receiver(func)
            if recv_kind.startswith("struct:"):
                struct_name = recv_kind.split(":", 1)[1]
                qualified = f"{struct_name}.{func.name}"
                if qualified in self.module.func_names:
                    return ir.FuncRef(qualified), [obj] + [self.eval(a) for a in call.args]
            return ir.MethodRef(func.name), [obj] + [self.eval(a) for a in call.args]
        raise BuildError(f"line {call.line}: unsupported callee expression")

    def build_call(self, call: ast.CallExpr, dsts: List[ir.Var]) -> Optional[ir.Operand]:
        """Lower a call; returns the result operand when one is requested."""
        func = call.func
        if isinstance(func, ast.Ident):
            builtin = self._try_builtin(func.name, call, dsts)
            if builtin is not _NOT_BUILTIN:
                return builtin
        if isinstance(func, ast.SelectorExpr):
            special = self._try_method(func, call, dsts)
            if special is not _NOT_BUILTIN:
                return special
        func_op, args = self._callable_and_args(call)
        instr = ir.Call(line=call.line, dsts=dsts, func_op=func_op, args=args)
        self.emit(instr)
        if isinstance(func_op, (ir.Var, ir.MethodRef)):
            self.func.dynamic_call_sites.append(instr)
        return dsts[0] if dsts else None

    def _try_builtin(self, name: str, call: ast.CallExpr, dsts: List[ir.Var]):
        line = call.line
        if name == "close":
            chan = self.eval(call.args[0])
            self.emit(ir.Close(line=line, chan=chan))
            return None
        if name == "panic":
            msg = self.eval(call.args[0]) if call.args else ir.Const("panic")
            self.terminate(ir.Panic(line=line, message=msg))
            return None
        if name in ("println", "print"):
            self.emit(ir.Println(line=line, args=[self.eval(a) for a in call.args]))
            return None
        if name == "len" or name == "cap":
            value = self.eval(call.args[0])
            dst = dsts[0] if dsts else self.temp("int")
            self.emit(ir.UnOp(line=line, dst=dst, op=name, operand=value))
            return dst
        return _NOT_BUILTIN

    def _try_method(self, sel: ast.SelectorExpr, call: ast.CallExpr, dsts: List[ir.Var]):
        line = call.line
        name = sel.name
        # time.Sleep(...)
        if isinstance(sel.recv, ast.Ident) and sel.recv.name == "time" and self.resolve("time") is None:
            if name == "Sleep":
                duration = self.eval(call.args[0]) if call.args else ir.Const(1)
                self.emit(ir.Sleep(line=line, duration=duration))
                return None
            return _NOT_BUILTIN
        # context.Background() / context.TODO() / context.WithCancel(...)
        if (
            isinstance(sel.recv, ast.Ident)
            and sel.recv.name == "context"
            and self.resolve("context") is None
        ):
            if name in ("Background", "TODO"):
                dst = dsts[0] if dsts else self.temp("context")
                self.module.kinds[dst.name] = "context"
                self.emit(ir.MakeContext(line=line, dst=dst))
                return dst
            if name == "WithCancel":
                ctx_dst = dsts[0] if dsts else self.temp("context")
                cancel_dst = dsts[1] if len(dsts) > 1 else self.temp("func")
                self.module.kinds[ctx_dst.name] = "context"
                self.module.kinds[cancel_dst.name] = "func"
                self.emit(ir.MakeContext(line=line, dst=ctx_dst, cancel_dst=cancel_dst))
                return ctx_dst
            return _NOT_BUILTIN
        recv_kind, obj = self._method_receiver(sel)
        if recv_kind in _MUTEX_KINDS:
            if name == "Lock":
                self.emit(ir.Lock(line=line, mutex=obj))
                return None
            if name == "Unlock":
                self.emit(ir.Unlock(line=line, mutex=obj))
                return None
            if name == "RLock":
                self.emit(ir.Lock(line=line, mutex=obj, read=True))
                return None
            if name == "RUnlock":
                self.emit(ir.Unlock(line=line, mutex=obj, read=True))
                return None
        if recv_kind == "waitgroup":
            if name == "Add":
                delta = self.eval(call.args[0]) if call.args else ir.Const(1)
                self.emit(ir.WgAdd(line=line, wg=obj, delta=delta))
                return None
            if name == "Done":
                self.emit(ir.WgDone(line=line, wg=obj))
                return None
            if name == "Wait":
                self.emit(ir.WgWait(line=line, wg=obj))
                return None
        if recv_kind == "cond":
            if name == "Wait":
                self.emit(ir.CondWait(line=line, cond=obj))
                return None
            if name == "Signal":
                self.emit(ir.CondSignal(line=line, cond=obj))
                return None
            if name == "Broadcast":
                self.emit(ir.CondSignal(line=line, cond=obj, broadcast=True))
                return None
        if recv_kind == "context" and name == "Done":
            dst = dsts[0] if dsts else self.temp("chan")
            self.emit(ir.CtxDone(line=line, dst=dst, ctx=obj))
            return dst
        if recv_kind == "context" and name == "Err":
            dst = dsts[0] if dsts else self.temp("int")
            self.emit(ir.Assign(line=line, dst=dst, src=ir.Const(1)))
            return dst
        if recv_kind == "testing":
            if name in ("Fatal", "Fatalf", "FailNow", "Skip", "SkipNow"):
                self.emit(ir.Fatal(line=line, testing=obj, method=name))
                self.terminate(ir.Return(line=line, values=[]))
                return None
            if name in ("Error", "Errorf", "Log", "Logf", "Fail"):
                self.emit(ir.Println(line=line, args=[self.eval(a) for a in call.args]))
                return None
        return _NOT_BUILTIN

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: ast.Expr) -> ir.Operand:
        method = getattr(self, "_expr_" + type(expr).__name__, None)
        if method is None:
            raise BuildError(f"cannot lower expression {type(expr).__name__}")
        return method(expr)

    def _expr_IntLit(self, expr: ast.IntLit) -> ir.Operand:
        return ir.Const(expr.value)

    def _expr_StringLit(self, expr: ast.StringLit) -> ir.Operand:
        return ir.Const(expr.value)

    def _expr_BoolLit(self, expr: ast.BoolLit) -> ir.Operand:
        return ir.Const(expr.value)

    def _expr_NilLit(self, expr: ast.NilLit) -> ir.Operand:
        return ir.Const(None)

    def _expr_UnitLit(self, expr: ast.UnitLit) -> ir.Operand:
        return ir.Const(())

    def _expr_Ident(self, expr: ast.Ident) -> ir.Operand:
        unique = self.resolve(expr.name)
        if unique is not None:
            local = unique in self.module.func_locals.get(self.func.name, set())
            if not local and unique not in self.func.free_vars:
                self.func.free_vars.append(unique)
            return ir.Var(unique)
        if expr.name in self.module.func_names:
            return ir.FuncRef(expr.name)
        raise BuildError(f"line {expr.line}: undefined name {expr.name!r}")

    def _expr_UnaryExpr(self, expr: ast.UnaryExpr) -> ir.Operand:
        if expr.op in ("&", "*"):
            # pointers are transparent in MiniGo
            return self.eval(expr.operand)
        operand = self.eval(expr.operand)
        dst = self.temp("bool" if expr.op == "!" else "int")
        self.emit(ir.UnOp(line=expr.line, dst=dst, op=expr.op, operand=operand))
        return dst

    def _expr_BinaryExpr(self, expr: ast.BinaryExpr) -> ir.Operand:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        kind = "bool" if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||") else "int"
        dst = self.temp(kind)
        self.emit(ir.BinOp(line=expr.line, dst=dst, op=expr.op, left=left, right=right))
        return dst

    def _expr_RecvExpr(self, expr: ast.RecvExpr) -> ir.Operand:
        chan = self.eval(expr.chan)
        dst = self.temp("any")
        self.emit(ir.Recv(line=expr.line, dst=dst, ok_dst=None, chan=chan))
        return dst

    def _expr_MakeExpr(self, expr: ast.MakeExpr) -> ir.Operand:
        size = self.eval(expr.size) if expr.size is not None else ir.Const(0)
        if isinstance(expr.type, ast.ChanType):
            dst = self.temp("chan")
            self.emit(
                ir.MakeChan(line=expr.line, dst=dst, elem_type=kind_of_type(expr.type.elem), size=size)
            )
            return dst
        if isinstance(expr.type, ast.SliceType):
            dst = self.temp("slice:" + kind_of_type(expr.type.elem))
            self.emit(
                ir.MakeSlice(line=expr.line, dst=dst, elem_type=kind_of_type(expr.type.elem), size=size)
            )
            return dst
        raise BuildError(f"line {expr.line}: make() supports chan and slice types")

    def _expr_CallExpr(self, expr: ast.CallExpr) -> ir.Operand:
        dst = self.temp("any")
        result = self.build_call(expr, dsts=[dst])
        if result is None:
            return ir.Const(None)
        if isinstance(result, ir.Var) and result.name != dst.name:
            return result
        return result

    def _expr_SelectorExpr(self, expr: ast.SelectorExpr) -> ir.Operand:
        obj = self.eval(expr.recv)
        kind = self.kind_of(obj)
        field_kind = "any"
        if kind.startswith("struct:"):
            field_kind = self.module.field_kind(kind.split(":", 1)[1], expr.name)
        dst = self.temp(field_kind)
        self.emit(ir.FieldGet(line=expr.line, dst=dst, obj=obj, field_name=expr.name))
        return dst

    def _expr_IndexExpr(self, expr: ast.IndexExpr) -> ir.Operand:
        seq = self.eval(expr.seq)
        index = self.eval(expr.index)
        seq_kind = self.kind_of(seq)
        elem_kind = seq_kind.split(":", 1)[1] if seq_kind.startswith("slice:") else "any"
        dst = self.temp(elem_kind)
        self.emit(ir.IndexGet(line=expr.line, dst=dst, seq=seq, index=index))
        return dst

    def _expr_CompositeLit(self, expr: ast.CompositeLit) -> ir.Operand:
        fields = [(name, self.eval(value)) for name, value in expr.fields]
        explicit = {name for name, _ in fields}
        fields.extend(
            (name, op)
            for name, op in self._default_struct_fields(expr.type_name, expr.line)
            if name not in explicit
        )
        dst = self.temp("struct:" + expr.type_name)
        self.emit(ir.MakeStruct(line=expr.line, dst=dst, type_name=expr.type_name, fields=fields))
        return dst

    def _default_struct_fields(self, type_name: str, line: int) -> List[Tuple[str, ir.Operand]]:
        """Materialize usable zero values for sync-typed struct fields.

        Go's sync.Mutex/RWMutex/WaitGroup zero values are ready to use, so a
        struct literal implicitly creates those primitives; they need real
        creation sites for the alias analysis and the runtime.
        """
        decl = self.module.structs.get(type_name)
        if decl is None:
            return []
        out: List[Tuple[str, ir.Operand]] = []
        for field in decl.fields:
            kind = kind_of_type(field.type)
            if kind in _MUTEX_KINDS:
                tmp = self._hidden_var(f"{type_name}.{field.name}", kind)
                self.emit(ir.MakeMutex(line=line, dst=tmp, rw=kind == "rwmutex"))
                out.append((field.name, tmp))
            elif kind == "waitgroup":
                tmp = self._hidden_var(f"{type_name}.{field.name}", "waitgroup")
                self.emit(ir.MakeWaitGroup(line=line, dst=tmp))
                out.append((field.name, tmp))
        return out

    def _hidden_var(self, base: str, kind: str) -> ir.Var:
        """A named register outside any source scope (for field primitives)."""
        name = self.module.fresh_name(base)
        self.module.kinds[name] = kind
        self.locals.add(name)
        return ir.Var(name)

    def _expr_FuncLit(self, expr: ast.FuncLit) -> ir.Operand:
        return self._lower_func_lit(expr)

    def _lower_func_lit(self, lit: ast.FuncLit) -> ir.FuncRef:
        self._lit_counter += 1
        name = f"{self.func.name}$lit{self._lit_counter}"
        self.module.lower_function(
            name,
            params=lit.params,
            results=lit.results,
            body=lit.body,
            decl_line=lit.line,
            receiver=None,
            parent_scope=self.scope,
            parent_func=self.func,
        )
        return ir.FuncRef(name)


_NOT_BUILTIN = object()


def _zero_value(kind: str):
    if kind == "int":
        return 0
    if kind == "bool":
        return False
    if kind == "string":
        return ""
    return None


class ModuleBuilder:
    """Builds a whole :class:`repro.ssa.ir.Program` from a parsed file."""

    def __init__(self, file: ast.File):
        self.file = file
        self.functions: Dict[str, ir.Function] = {}
        self.kinds: Dict[str, str] = {}  # unique register name -> kind
        self.func_names = {decl.full_name for decl in file.funcs}
        self.structs = {decl.name: decl for decl in file.structs}
        self.func_locals: Dict[str, set] = {}
        self._name_counter: Dict[str, int] = {}

    def fresh_name(self, base: str) -> str:
        count = self._name_counter.get(base, 0)
        self._name_counter[base] = count + 1
        return base if count == 0 else f"{base}${count}"

    def field_kind(self, struct_name: str, field_name: str) -> str:
        decl = self.structs.get(struct_name)
        if decl is None:
            return "any"
        for field in decl.fields:
            if field.name == field_name:
                return kind_of_type(field.type)
        return "any"

    def build(self) -> ir.Program:
        for decl in self.file.funcs:
            self.lower_function(
                decl.full_name,
                params=([decl.receiver] if decl.receiver else []) + decl.params,
                results=decl.results,
                body=decl.body,
                decl_line=decl.line,
                receiver=decl.receiver,
                parent_scope=None,
                parent_func=None,
            )
        program = ir.Program(self.file, self.functions)
        program.kinds = dict(self.kinds)
        return program

    def lower_function(
        self,
        name: str,
        params: List[ast.Param],
        results: List[ast.Type],
        body: ast.Block,
        decl_line: int,
        receiver: Optional[ast.Param],
        parent_scope: Optional[_Scope],
        parent_func: Optional[ir.Function],
    ) -> ir.Function:
        param_uniques: List[str] = []
        scope = _Scope(parent_scope)
        locals_set: set = set()
        func = ir.Function(
            name,
            params=[],
            result_count=len(results),
            decl_line=decl_line,
            is_closure=parent_scope is not None,
            parent=parent_func,
        )
        self.functions[name] = func
        self.func_locals[name] = locals_set
        for param in params:
            unique = self.fresh_name(param.name if param.name != "_" else "arg")
            scope.declare(param.name, unique)
            self.kinds[unique] = kind_of_type(param.type)
            param_uniques.append(unique)
            locals_set.add(unique)
        func.params = param_uniques
        func.local_names = locals_set
        builder = _FunctionBuilder(self, func, scope, locals_set)
        builder.build_block(body)
        builder.terminate(ir.Return(line=body.end_line, values=[]))
        return func


def build_program(source: str, filename: str = "<minigo>", collector=None) -> ir.Program:
    """Parse and lower MiniGo ``source`` into an IR :class:`Program`.

    ``collector`` (a :class:`repro.obs.Collector`) receives the ``parse``
    and ``ssa-build`` stage spans of the pipeline trace.
    """
    from repro.obs import NULL, STAGE_PARSE, STAGE_SSA
    from repro.resilience.faultinject import maybe_fault

    obs = collector or NULL
    with obs.span(STAGE_PARSE):
        file = parse_source_file(source, filename)
    with obs.span(STAGE_SSA):
        maybe_fault(STAGE_SSA, filename)
        return ModuleBuilder(file).build()


def parse_source_file(source: str, filename: str = "<minigo>") -> ast.File:
    """Parse one MiniGo source file into its AST.

    This is the per-file granularity the incremental service re-parses at:
    an edit to one file of a project re-runs only this function for that
    file; the lowered program is then rebuilt from the (mostly cached)
    ASTs via :func:`build_program_from_files`.
    """
    return parse_file(source, filename)


def merge_files(files: List[ast.File]) -> ast.File:
    """Merge several parsed files into one compilation unit.

    MiniGo follows Go's package model: all files of a project share one
    namespace, so merging is declaration concatenation in file order.
    Struct and function declarations keep the line numbers of their own
    source file (bug reports cite ``file:line`` through the declaring
    function), and a duplicate top-level name across files is a
    :class:`BuildError`, mirroring Go's redeclaration error.
    """
    if not files:
        raise BuildError("a project needs at least one source file")
    merged = ast.File(
        package=files[0].package,
        filename=files[0].filename if len(files) == 1 else "<project>",
        source=files[0].source if len(files) == 1 else "",
    )
    seen: Dict[str, str] = {}
    for file in files:
        for decl in file.structs:
            owner = seen.setdefault("type " + decl.name, file.filename)
            if owner != file.filename:
                raise BuildError(
                    f"type {decl.name} redeclared in {file.filename} "
                    f"(previous declaration in {owner})"
                )
            merged.structs.append(decl)
        for decl in file.funcs:
            owner = seen.setdefault("func " + decl.full_name, file.filename)
            if owner != file.filename:
                raise BuildError(
                    f"func {decl.full_name} redeclared in {file.filename} "
                    f"(previous declaration in {owner})"
                )
            merged.funcs.append(decl)
    return merged


def build_program_from_files(files: List[ast.File], collector=None) -> ir.Program:
    """Lower already-parsed files into one IR :class:`Program`.

    The parse stage is the caller's (so a warm AST cache pays nothing
    here); only the ``ssa-build`` span runs.
    """
    from repro.obs import NULL, STAGE_SSA
    from repro.resilience.faultinject import maybe_fault

    obs = collector or NULL
    merged = merge_files(files)
    with obs.span(STAGE_SSA):
        maybe_fault(STAGE_SSA, merged.filename)
        return ModuleBuilder(merged).build()
