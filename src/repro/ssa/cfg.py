"""Control-flow-graph queries over lowered functions.

These are the graph views the analyses need: predecessor maps, reverse
postorder, back-edge (loop) discovery, and reachability between
instructions — the same queries GCatch issues against ``go/ssa`` CFGs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ssa import ir


def predecessor_map(func: ir.Function) -> Dict[int, List[ir.Block]]:
    """Map block id -> predecessor blocks (reachable subgraph only)."""
    preds: Dict[int, List[ir.Block]] = {block.id: [] for block in func.reachable_blocks()}
    for block in func.reachable_blocks():
        for succ in block.successors():
            preds.setdefault(succ.id, []).append(block)
    return preds


def reverse_postorder(func: ir.Function) -> List[ir.Block]:
    """Blocks in reverse postorder from entry — the canonical analysis order."""
    if func.entry is None:
        return []
    visited: Set[int] = set()
    order: List[ir.Block] = []

    def visit(block: ir.Block) -> None:
        visited.add(block.id)
        for succ in block.successors():
            if succ.id not in visited:
                visit(succ)
        order.append(block)

    visit(func.entry)
    order.reverse()
    return order


def back_edges(func: ir.Function) -> List[Tuple[ir.Block, ir.Block]]:
    """(source, header) pairs of natural-loop back edges, found by DFS."""
    if func.entry is None:
        return []
    edges: List[Tuple[ir.Block, ir.Block]] = []
    color: Dict[int, int] = {}  # 0 unvisited/absent, 1 on stack, 2 done
    stack: List[Tuple[ir.Block, int]] = [(func.entry, 0)]
    color[func.entry.id] = 1
    while stack:
        block, idx = stack[-1]
        succs = block.successors()
        if idx < len(succs):
            stack[-1] = (block, idx + 1)
            succ = succs[idx]
            state = color.get(succ.id, 0)
            if state == 1:
                edges.append((block, succ))
            elif state == 0:
                color[succ.id] = 1
                stack.append((succ, 0))
        else:
            color[block.id] = 2
            stack.pop()
    return edges


def loop_headers(func: ir.Function) -> Set[int]:
    return {header.id for _, header in back_edges(func)}


def instruction_block(func: ir.Function, instr: ir.Instr) -> Optional[ir.Block]:
    for block in func.reachable_blocks():
        for candidate in block.all_instrs():
            if candidate is instr:
                return block
    return None


def block_reaches(src: ir.Block, dst: ir.Block) -> bool:
    """True when ``dst`` is reachable from ``src`` (inclusive)."""
    seen: Set[int] = set()
    stack = [src]
    while stack:
        block = stack.pop()
        if block.id == dst.id:
            return True
        if block.id in seen:
            continue
        seen.add(block.id)
        stack.extend(block.successors())
    return False


def instr_reaches(func: ir.Function, first: ir.Instr, second: ir.Instr) -> bool:
    """True when ``second`` can execute after ``first`` on some path."""
    first_block = instruction_block(func, first)
    second_block = instruction_block(func, second)
    if first_block is None or second_block is None:
        return False
    if first_block.id == second_block.id:
        instrs = list(first_block.all_instrs())
        first_idx = next(i for i, x in enumerate(instrs) if x is first)
        second_idx = next(i for i, x in enumerate(instrs) if x is second)
        if first_idx < second_idx:
            return True
        # same block but later-to-earlier still reaches through a loop
        return any(block_reaches(succ, second_block) for succ in first_block.successors())
    return any(block_reaches(succ, second_block) for succ in first_block.successors())


def exit_blocks(func: ir.Function) -> List[ir.Block]:
    """Blocks terminated by Return or Panic."""
    return [
        block
        for block in func.reachable_blocks()
        if isinstance(block.terminator, (ir.Return, ir.Panic))
    ]
