"""Dominator and post-dominator trees (Cooper–Harvey–Kennedy algorithm).

GFix's safety checks need both directions: Strategy II requires every
``return`` to be *dominated* by a static ``o1`` operation, and patch
placement reasons about the ``return`` *post-dominating* an ``o1``
(paper §4.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ssa import ir
from repro.ssa.cfg import exit_blocks, predecessor_map, reverse_postorder


class DominatorTree:
    """Immediate-dominator map over a function's reachable blocks."""

    def __init__(self, idom: Dict[int, Optional[int]], order: List[ir.Block]):
        self._idom = idom
        self._blocks = {block.id: block for block in order}

    def idom(self, block: ir.Block) -> Optional[ir.Block]:
        parent = self._idom.get(block.id)
        return self._blocks.get(parent) if parent is not None else None

    def dominates(self, a: ir.Block, b: ir.Block) -> bool:
        """True when every path to ``b`` passes through ``a`` (reflexive)."""
        current: Optional[int] = b.id
        while current is not None:
            if current == a.id:
                return True
            parent = self._idom.get(current)
            if parent == current:
                return False
            current = parent
        return False


def _compute_idoms(
    order: List[ir.Block],
    entry: ir.Block,
    preds: Dict[int, List[ir.Block]],
) -> Dict[int, Optional[int]]:
    index = {block.id: i for i, block in enumerate(order)}
    idom: Dict[int, Optional[int]] = {block.id: None for block in order}
    idom[entry.id] = entry.id

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for block in order:
            if block.id == entry.id:
                continue
            candidates = [p for p in preds.get(block.id, []) if idom.get(p.id) is not None]
            if not candidates:
                continue
            new_idom = candidates[0].id
            for pred in candidates[1:]:
                new_idom = intersect(new_idom, pred.id)
            if idom[block.id] != new_idom:
                idom[block.id] = new_idom
                changed = True
    return idom


def dominator_tree(func: ir.Function) -> DominatorTree:
    order = reverse_postorder(func)
    if not order:
        return DominatorTree({}, [])
    preds = predecessor_map(func)
    idom = _compute_idoms(order, order[0], preds)
    return DominatorTree(idom, order)


class PostDominatorTree:
    """Post-dominance computed on the reverse CFG with a virtual exit."""

    VIRTUAL_EXIT = -1

    def __init__(self, func: ir.Function):
        self._blocks = {block.id: block for block in func.reachable_blocks()}
        exits = exit_blocks(func)
        # reverse CFG: successors become predecessors; all exits flow to a
        # virtual exit node
        succ_rev: Dict[int, List[int]] = {bid: [] for bid in self._blocks}
        succ_rev[self.VIRTUAL_EXIT] = [block.id for block in exits]
        for block in self._blocks.values():
            for succ in block.successors():
                succ_rev.setdefault(succ.id, []).append(block.id)
        pred_rev: Dict[int, List[int]] = {bid: [] for bid in succ_rev}
        for block in self._blocks.values():
            for succ in block.successors():
                pred_rev[block.id].append(succ.id)
        for exit_block in exits:
            pred_rev[exit_block.id].append(self.VIRTUAL_EXIT)
        # reverse postorder on the reverse graph starting from virtual exit
        order: List[int] = []
        visited = set()

        def visit(node: int) -> None:
            visited.add(node)
            for nxt in succ_rev.get(node, []):
                if nxt not in visited:
                    visit(nxt)
            order.append(node)

        visit(self.VIRTUAL_EXIT)
        order.reverse()
        index = {node: i for i, node in enumerate(order)}
        idom: Dict[int, Optional[int]] = {node: None for node in order}
        idom[self.VIRTUAL_EXIT] = self.VIRTUAL_EXIT

        def intersect(a: int, b: int) -> int:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for node in order:
                if node == self.VIRTUAL_EXIT:
                    continue
                candidates = [
                    p for p in pred_rev.get(node, []) if p in index and idom.get(p) is not None
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = intersect(new_idom, pred)
                if idom[node] != new_idom:
                    idom[node] = new_idom
                    changed = True
        self._idom = idom

    def post_dominates(self, a: ir.Block, b: ir.Block) -> bool:
        """True when every path from ``b`` to exit passes through ``a``."""
        current: Optional[int] = b.id
        seen = set()
        while current is not None and current not in seen:
            seen.add(current)
            if current == a.id:
                return True
            if current == self.VIRTUAL_EXIT:
                return False
            current = self._idom.get(current)
        return False


def post_dominator_tree(func: ir.Function) -> PostDominatorTree:
    return PostDominatorTree(func)
