"""High-level public API: the end-to-end GCatch + GFix pipeline (Figure 2).

Typical use::

    from repro import Project

    project = Project.from_source(go_source, "mypkg.go")
    result = project.detect()                  # GCatch: BMOC + traditional
    for bug in result.bmoc.bmoc_channel_bugs():
        fix = project.fix(bug)                 # GFix: strategy I -> II -> III
        if fix.fixed:
            print(fix.patch.unified_diff())

    outcome = project.run("main", seed=7)      # dynamic validation
    assert not outcome.blocked_forever
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.detector.gcatch import GCatchResult, run_gcatch
from repro.detector.reporting import BugReport
from repro.fixer.dispatcher import FixResult, GFix, GFixSummary
from repro.obs import NULL, Collector
from repro.runtime.choices import Choice
from repro.runtime.explorer import Exploration, explore
from repro.runtime.scheduler import (
    ExecutionResult,
    explore_schedules,
    replay_trace,
    run_program,
)
from repro.ssa import ir
from repro.ssa.builder import build_program


@dataclass
class Project:
    """A loaded MiniGo program plus lazily-built analysis artifacts.

    A project carries one run-scoped :class:`repro.obs.Collector` that
    every pipeline layer reports into. The default is the no-op
    :data:`repro.obs.NULL` (observability off, hot paths pay one check);
    pass ``collector=Collector()`` to ``from_source``/``from_file`` — or
    to an individual call — to trace a run.
    """

    source: str
    filename: str
    program: ir.Program
    collector: Collector = NULL
    _gfix: Optional[GFix] = None

    @classmethod
    def from_source(
        cls,
        source: str,
        filename: str = "<minigo>",
        collector: Optional[Collector] = None,
    ) -> "Project":
        collector = collector or NULL
        return cls(
            source=source,
            filename=filename,
            program=build_program(source, filename, collector=collector),
            collector=collector,
        )

    @classmethod
    def from_file(cls, path: str, collector: Optional[Collector] = None) -> "Project":
        with open(path) as handle:
            source = handle.read()
        return cls.from_source(source, path, collector=collector)

    @classmethod
    def from_files(
        cls, paths: List[str], collector: Optional[Collector] = None
    ) -> "Project":
        """Load a multi-file project (one package, Go-style shared namespace).

        Each file is parsed independently — the same per-file granularity
        :mod:`repro.service` re-parses at on an edit — then lowered into
        one program. ``fix`` needs the patchable single source text, so it
        is only available on single-file projects.
        """
        from repro.obs import STAGE_PARSE
        from repro.ssa.builder import build_program_from_files, parse_source_file

        collector = collector or NULL
        files = []
        for path in paths:
            with open(path) as handle:
                source = handle.read()
            with collector.span(STAGE_PARSE):
                files.append(parse_source_file(source, path))
        program = build_program_from_files(files, collector=collector)
        single = len(files) == 1
        return cls(
            source=files[0].source if single else "",
            filename=files[0].filename if single else "<project>",
            program=program,
            collector=collector,
        )

    @classmethod
    def from_path(cls, path: str, collector: Optional[Collector] = None) -> "Project":
        """Load ``path``: one ``.go`` file, or a directory of them (sorted)."""
        import os

        if os.path.isdir(path):
            names = sorted(n for n in os.listdir(path) if n.endswith(".go"))
            if not names:
                raise FileNotFoundError(f"no .go files under {path}")
            return cls.from_files([os.path.join(path, n) for n in names],
                                  collector=collector)
        return cls.from_file(path, collector=collector)

    def _obs(self, collector: Optional[Collector]) -> Optional[Collector]:
        """Resolve a per-call collector override against the project's."""
        chosen = collector or self.collector
        return chosen if chosen else None

    # -- detection ---------------------------------------------------------

    def detect(
        self,
        disentangle: bool = True,
        collector: Optional[Collector] = None,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        cache=None,
        budget_wall_seconds: Optional[float] = None,
        budget_solver_nodes: Optional[int] = None,
        max_retries: Optional[int] = None,
        retry_timeouts: bool = False,
        checkers: Optional[List[str]] = None,
        solver_mode: Optional[str] = None,
    ) -> GCatchResult:
        """Run GCatch (BMOC detector + the five traditional checkers).

        ``jobs`` > 1 (default: the ``REPRO_JOBS`` env var) shards the
        per-primitive analysis across a pool via :mod:`repro.engine`;
        ``cache`` (a :class:`repro.engine.ResultCache`) makes re-runs
        incremental; ``budget_*`` bound per-primitive effort, degrading
        to TIMEOUT markers instead of unbounded analysis.

        Every analysis unit runs behind the :mod:`repro.resilience`
        firewall: a crashing unit becomes an incident on the result
        (``result.incidents``, ``result.health()``) instead of aborting
        the run. ``max_retries`` (default: ``REPRO_MAX_RETRIES``, else 1)
        bounds transient-failure retries; ``retry_timeouts`` retries a
        solver-timeout shard once with a quartered node budget;
        ``checkers`` (default: ``REPRO_CHECKERS``, else all) restricts
        the traditional-checker set. ``solver_mode`` (default:
        ``REPRO_SOLVER_MODE``, else ``batched``) selects the per-group
        constraint-solving pipeline: ``batched`` reuses structures across
        a primitive's suspicious groups through a
        :class:`repro.constraints.session.SolverSession`; ``classic``
        encodes and solves every group from scratch (the escape hatch —
        both produce byte-identical reports).
        """
        return run_gcatch(
            self.program,
            disentangle=disentangle,
            collector=self._obs(collector),
            jobs=jobs,
            backend=backend,
            cache=cache,
            budget_wall_seconds=budget_wall_seconds,
            budget_solver_nodes=budget_solver_nodes,
            max_retries=max_retries,
            retry_timeouts=retry_timeouts,
            checkers=checkers,
            solver_mode=solver_mode,
        )

    # -- fixing -------------------------------------------------------------

    def fix(self, report: BugReport, collector: Optional[Collector] = None) -> FixResult:
        """Run GFix on one detected BMOC bug."""
        return self._gfix_for(collector).fix(report)

    def fix_all(
        self, reports: List[BugReport], collector: Optional[Collector] = None
    ) -> GFixSummary:
        return self._gfix_for(collector).fix_all(reports)

    def _gfix_for(self, collector: Optional[Collector]) -> GFix:
        obs = self._obs(collector)
        if self._gfix is None or (obs is not None and self._gfix.collector is not obs):
            self._gfix = GFix(self.program, self.source, collector=obs)
        return self._gfix

    def apply_fix(self, fix: FixResult) -> "Project":
        """Return a new Project with the patch applied."""
        if fix.patch is None:
            raise ValueError("fix produced no patch")
        return Project.from_source(fix.patch.apply(), self.filename)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        entry: str = "main",
        seed: int = 0,
        max_steps: int = 100_000,
        args: Optional[List[Any]] = None,
        collector: Optional[Collector] = None,
    ) -> ExecutionResult:
        """Execute the program under one seeded schedule."""
        return run_program(
            self.program,
            entry=entry,
            seed=seed,
            max_steps=max_steps,
            args=args,
            collector=self._obs(collector),
        )

    def stress(
        self,
        entry: str = "main",
        seeds: int = 20,
        max_steps: int = 100_000,
        args: Optional[List[Any]] = None,
        collector: Optional[Collector] = None,
    ) -> List[ExecutionResult]:
        """Explore many schedules (the paper's random-sleep validation)."""
        return explore_schedules(
            self.program,
            entry=entry,
            seeds=seeds,
            max_steps=max_steps,
            args=args,
            collector=self._obs(collector),
        )

    def explore(
        self,
        entry: str = "main",
        max_runs: int = 512,
        max_steps: int = 20_000,
        preemption_bound: Optional[int] = None,
        args: Optional[List[Any]] = None,
        collector: Optional[Collector] = None,
    ) -> Exploration:
        """Systematically enumerate schedules (the explorer's dynamic oracle)."""
        return explore(
            self.program,
            entry=entry,
            max_runs=max_runs,
            max_steps=max_steps,
            preemption_bound=preemption_bound,
            args=args,
            collector=self._obs(collector),
        )

    def replay(
        self,
        trace: List[Choice],
        entry: str = "main",
        max_steps: int = 100_000,
        args: Optional[List[Any]] = None,
        collector: Optional[Collector] = None,
    ) -> ExecutionResult:
        """Deterministically re-run one recorded choice trace."""
        return replay_trace(
            self.program,
            trace,
            entry=entry,
            max_steps=max_steps,
            args=args,
            collector=self._obs(collector),
        )


def detect_and_fix(
    source: str, filename: str = "<minigo>", collector: Optional[Collector] = None
) -> GFixSummary:
    """One-shot pipeline: detect all channel-only BMOC bugs and fix them."""
    project = Project.from_source(source, filename, collector=collector)
    result = project.detect()
    return project.fix_all(result.bmoc.bmoc_channel_bugs())
