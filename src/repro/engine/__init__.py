"""repro.engine — parallel, incremental detection with result caching.

See :mod:`repro.engine.engine` for the sharding/orchestration model,
:mod:`repro.engine.fingerprint` for the content-addressing scheme,
:mod:`repro.engine.cache` for the two-tier result cache, and
:mod:`repro.resilience` for the crash-isolation firewall every shard and
cache probe runs behind.
"""

from repro.engine.cache import CachedShard, CacheView, ResultCache, cache_from_env
from repro.engine.engine import (
    TRADITIONAL_CHECKERS,
    DetectionEngine,
    EngineConfig,
    ShardInfo,
    run_engine,
)
from repro.engine.fingerprint import (
    ENGINE_VERSION,
    ProgramDigests,
    channel_fingerprint,
    function_digest,
    traditional_fingerprint,
)
from repro.engine.invalidate import (
    InvalidationDelta,
    diff_fingerprints,
    shard_fingerprints,
    shard_key,
)

__all__ = [
    "CachedShard",
    "CacheView",
    "DetectionEngine",
    "ENGINE_VERSION",
    "EngineConfig",
    "InvalidationDelta",
    "ProgramDigests",
    "ResultCache",
    "ShardInfo",
    "TRADITIONAL_CHECKERS",
    "cache_from_env",
    "channel_fingerprint",
    "diff_fingerprints",
    "function_digest",
    "run_engine",
    "shard_fingerprints",
    "shard_key",
    "traditional_fingerprint",
]
