"""Cross-run result cache for detection-engine shards.

Entries are keyed by the content-addressed fingerprints of
:mod:`repro.engine.fingerprint`; a key names the *complete* input of one
shard's analysis, so entries never need explicit invalidation — an edit
simply produces a different key.

Two tiers:

* an in-process memory tier (always on) holding full-fidelity
  :class:`CachedShard` objects — warm re-runs inside one process return
  the very same report objects;
* an optional disk tier (pass ``path`` or set ``REPRO_CACHE_DIR``)
  persisting pickled entries across processes.

Disk layout (documented in README "Performance")::

    <cache-dir>/objects/<first two hex chars>/<sha256 fingerprint>.pkl

A disk entry is one pickled :class:`CachedShard`. Unreadable or
version-incompatible entries are **quarantined**: the corrupt file is
deleted on first contact (counted in ``corrupt``) so it costs exactly one
failed load, then behaves as an ordinary miss — never as an error, and
never as a miss re-paid forever.

Fault injection: the ``cache-read`` / ``cache-write`` sites of
:mod:`repro.resilience.faultinject` fire here, keyed by fingerprint;
``corrupt``-mode write faults persist garbage bytes (exercising the
read-side quarantine end to end), ``raise``-mode faults surface as
incidents in the engine's firewall.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.detector.bmoc import DetectionStats
from repro.detector.reporting import BugReport
from repro.resilience.faultinject import maybe_fault


@dataclass
class CachedShard:
    """One shard's complete outcome: its reports plus the effort behind them."""

    reports: List[BugReport]
    stats: DetectionStats = field(default_factory=DetectionStats)
    counters: Dict[str, int] = field(default_factory=dict)
    outcome: str = "ok"  # 'ok' (only completed shards are cached)


class ResultCache:
    """Memory + optional-disk shard cache with hit/miss/corruption accounting."""

    def __init__(self, path: Optional[str] = None):
        self.path = Path(path) if path else None
        self._memory: Dict[str, CachedShard] = {}
        self.hits = 0
        self.misses = 0
        self.corrupt = 0  # quarantined entries (deleted on first contact)

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Optional[CachedShard]:
        if maybe_fault("cache-read", key):
            # injected corruption: drop any live copy and quarantine disk
            before = self.corrupt
            self._quarantine(key)
            if self._memory.pop(key, None) is not None and self.corrupt == before:
                self.corrupt += 1
            self.misses += 1
            return None
        entry = self._memory.get(key)
        if entry is None and self.path is not None:
            entry = self._load(key)
            if entry is not None:
                self._memory[key] = entry
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: str, entry: CachedShard) -> None:
        self._memory[key] = entry
        if self.path is not None:
            self._store(key, entry)

    def __len__(self) -> int:
        return len(self._memory)

    # -- disk tier ---------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.path / "objects" / key[:2] / (key + ".pkl")

    def _load(self, key: str) -> Optional[CachedShard]:
        target = self._entry_path(key)
        try:
            with open(target, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (
            OSError,
            pickle.PickleError,
            EOFError,
            AttributeError,
            ImportError,
            # garbage bytes surface as any of these from the unpickler
            ValueError,
            IndexError,
            KeyError,
            UnicodeDecodeError,
        ):
            self._quarantine(key)
            return None
        if not isinstance(entry, CachedShard):
            self._quarantine(key)
            return None
        return entry

    def _quarantine(self, key: str) -> None:
        """Delete a corrupted disk entry so it costs exactly one failed load."""
        if self.path is None:
            return
        try:
            os.unlink(self._entry_path(key))
        except OSError:
            return
        self.corrupt += 1

    def _store(self, key: str, entry: CachedShard) -> None:
        target = self._entry_path(key)
        tmp: Optional[str] = None
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            # write-then-rename so concurrent writers never expose torn files
            fd, tmp = tempfile.mkstemp(dir=str(target.parent), suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                if maybe_fault("cache-write", key):
                    handle.write(b"\x80corrupt-injected")
                else:
                    pickle.dump(entry, handle)
            os.replace(tmp, target)
            tmp = None
        except (OSError, pickle.PicklingError, TypeError):
            pass  # a cache that cannot persist is still a cache
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass


def cache_from_env() -> Optional[ResultCache]:
    """A disk-backed cache when ``REPRO_CACHE_DIR`` is set, else None."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    return ResultCache(cache_dir) if cache_dir else None
