"""Cross-run result cache for detection-engine shards.

Entries are keyed by the content-addressed fingerprints of
:mod:`repro.engine.fingerprint`; a key names the *complete* input of one
shard's analysis, so entries never need explicit invalidation — an edit
simply produces a different key.

Two tiers:

* an in-process memory tier (always on) holding full-fidelity
  :class:`CachedShard` objects — warm re-runs inside one process return
  the very same report objects;
* an optional disk tier (pass ``path`` or set ``REPRO_CACHE_DIR``)
  persisting pickled entries across processes.

Disk layout (documented in README "Performance")::

    <cache-dir>/objects/<first two hex chars>/<sha256 fingerprint>.pkl

A disk entry is one pickled :class:`CachedShard`. Unreadable or
version-incompatible entries are **quarantined**: the corrupt file is
deleted on first contact (counted in ``corrupt``) so it costs exactly one
failed load, then behaves as an ordinary miss — never as an error, and
never as a miss re-paid forever.

Fault injection: the ``cache-read`` / ``cache-write`` sites of
:mod:`repro.resilience.faultinject` fire here, keyed by fingerprint;
``corrupt``-mode write faults persist garbage bytes (exercising the
read-side quarantine end to end), ``raise``-mode faults surface as
incidents in the engine's firewall.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.detector.bmoc import DetectionStats
from repro.detector.reporting import BugReport
from repro.resilience.faultinject import maybe_fault


@dataclass
class CachedShard:
    """One shard's complete outcome: its reports plus the effort behind them."""

    reports: List[BugReport]
    stats: DetectionStats = field(default_factory=DetectionStats)
    counters: Dict[str, int] = field(default_factory=dict)
    outcome: str = "ok"  # 'ok' (only completed shards are cached)


class ResultCache:
    """Memory + optional-disk shard cache with hit/miss/corruption accounting.

    The disk tier is bounded: ``max_entries``/``max_bytes`` (or the
    ``REPRO_CACHE_MAX_ENTRIES``/``REPRO_CACHE_MAX_BYTES`` env vars via
    :func:`cache_from_env`) cap the object store, evicting
    least-recently-used entries — disk hits re-touch their file's mtime,
    which is the recency order — after every store. Evictions are counted
    in ``evicted`` and surface as the engine's ``cache.evict`` counter.
    Unbounded remains the default (both caps ``None``).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ):
        self.path = Path(path) if path else None
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._memory: Dict[str, CachedShard] = {}
        # the multi-tenant daemon shares one cache across worker threads,
        # so the accounting (not just the dict) must be race-free
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0  # quarantined entries (deleted on first contact)
        self.evicted = 0  # disk entries removed by the size/count bound

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Optional[CachedShard]:
        if maybe_fault("cache-read", key):
            # injected corruption: drop any live copy and quarantine disk
            before = self.corrupt
            self._quarantine(key)
            dropped = self._memory.pop(key, None) is not None
            with self._lock:
                if dropped and self.corrupt == before:
                    self.corrupt += 1
                self.misses += 1
            return None
        entry = self._memory.get(key)
        if entry is None and self.path is not None:
            entry = self._load(key)
            if entry is not None:
                self._memory[key] = entry
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def put(self, key: str, entry: CachedShard) -> None:
        self._memory[key] = entry
        if self.path is not None:
            self._store(key, entry)

    def __len__(self) -> int:
        return len(self._memory)

    # -- disk tier ---------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.path / "objects" / key[:2] / (key + ".pkl")

    def _load(self, key: str) -> Optional[CachedShard]:
        target = self._entry_path(key)
        try:
            with open(target, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (
            OSError,
            pickle.PickleError,
            EOFError,
            AttributeError,
            ImportError,
            # garbage bytes surface as any of these from the unpickler
            ValueError,
            IndexError,
            KeyError,
            UnicodeDecodeError,
        ):
            self._quarantine(key)
            return None
        if not isinstance(entry, CachedShard):
            self._quarantine(key)
            return None
        try:
            os.utime(target, None)  # refresh LRU recency on a disk hit
        except OSError:
            pass
        return entry

    def _quarantine(self, key: str) -> None:
        """Delete a corrupted disk entry so it costs exactly one failed load."""
        if self.path is None:
            return
        try:
            os.unlink(self._entry_path(key))
        except OSError:
            return
        with self._lock:
            self.corrupt += 1

    def _store(self, key: str, entry: CachedShard) -> None:
        target = self._entry_path(key)
        tmp: Optional[str] = None
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            # write-then-rename so concurrent writers never expose torn files
            fd, tmp = tempfile.mkstemp(dir=str(target.parent), suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                if maybe_fault("cache-write", key):
                    handle.write(b"\x80corrupt-injected")
                else:
                    pickle.dump(entry, handle)
            os.replace(tmp, target)
            tmp = None
            self._evict_disk(keep=target)
        except (OSError, pickle.PicklingError, TypeError):
            pass  # a cache that cannot persist is still a cache
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def _evict_disk(self, keep: Optional[Path] = None) -> None:
        """Enforce the disk bound: drop oldest-mtime entries until the
        store fits ``max_entries``/``max_bytes`` again. The entry just
        written (``keep``) is never evicted — a bound smaller than one
        entry still caches the current shard for this run."""
        if self.path is None or (self.max_entries is None and self.max_bytes is None):
            return
        entries = []
        for target in self.path.glob("objects/*/*.pkl"):
            try:
                stat = target.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, target, stat.st_size))
        entries.sort()
        count = len(entries)
        total = sum(size for _, _, size in entries)
        for _, target, size in entries:
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            if keep is not None and target == keep:
                continue
            try:
                os.unlink(target)
            except OSError:
                continue
            count -= 1
            total -= size
            with self._lock:
                self.evicted += 1


class CacheView:
    """A per-request window onto a shared :class:`ResultCache`.

    The multi-tenant daemon serves requests from several worker threads
    against *one* cache (cross-tenant sharing is the point: fingerprints
    are content-addressed, so identical code keys identical entries).
    That makes "cache hits during *this* request" impossible to compute
    from the shared counters — a concurrent tenant's traffic would leak
    into the before/after delta. A view forwards ``get``/``put`` to the
    shared cache, counting hits and misses locally; the engine sees a
    cache, the request sees its own accounting.
    """

    def __init__(self, cache: ResultCache):
        self.cache = cache
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[CachedShard]:
        entry = self.cache.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: str, entry: CachedShard) -> None:
        self.cache.put(key, entry)

    def __len__(self) -> int:
        return len(self.cache)

    @property
    def corrupt(self) -> int:
        return self.cache.corrupt

    @property
    def evicted(self) -> int:
        return self.cache.evicted


def _env_int(name: str) -> Optional[int]:
    try:
        value = int(os.environ.get(name, "") or 0)
    except ValueError:
        return None
    return value if value > 0 else None


def cache_from_env() -> Optional[ResultCache]:
    """A disk-backed cache when ``REPRO_CACHE_DIR`` is set, else None.

    ``REPRO_CACHE_MAX_ENTRIES`` / ``REPRO_CACHE_MAX_BYTES`` bound the disk
    tier (unset or non-positive means unbounded).
    """
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        return None
    return ResultCache(
        cache_dir,
        max_entries=_env_int("REPRO_CACHE_MAX_ENTRIES"),
        max_bytes=_env_int("REPRO_CACHE_MAX_BYTES"),
    )
