"""Shard-level invalidation: which cached results does an edit kill?

The engine's cache never invalidates entries explicitly — an edit simply
changes the content-addressed fingerprints of the shards it can affect,
and the old entries become unreachable. That implicit scheme is perfect
for correctness but silent: a serving daemon wants to *report* the delta
("this edit re-solves 2 of 31 shards") and assert the complement answered
warm. This module makes the implicit diff explicit:

* :func:`shard_fingerprints` plans one program's shards and returns their
  fingerprints without executing any — it pays the front half of the
  pipeline (parse already done, SSA digests, call graph, per-primitive
  scopes) but zero path enumeration and zero solver work;
* :func:`diff_fingerprints` compares two such plans into an
  :class:`InvalidationDelta`: shards whose fingerprint survived answer
  from the warm cache, shards whose fingerprint changed (or that are new)
  must re-run.

Correctness rests on the fingerprint contract of
:mod:`repro.engine.fingerprint`: a shard's key names the complete input
of its analysis (scope SSA, Pset identity, options, versions), so
``old[key] == new[key]`` implies the re-run would reproduce the cached
result byte-for-byte, and any input change — however indirect, e.g. an
edit to a callee deep inside the scope — changes the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.engine import DetectionEngine, EngineConfig, ShardInfo
from repro.obs import Collector
from repro.ssa import ir


def shard_key(info: ShardInfo) -> str:
    """Stable identity of one shard across runs: its kind and label."""
    return f"{info.kind}:{info.label}"


def shard_fingerprints(
    program: ir.Program,
    config: Optional[EngineConfig] = None,
    collector: Optional[Collector] = None,
) -> Dict[str, str]:
    """Plan ``program``'s shards and return ``{shard key: fingerprint}``."""
    engine = DetectionEngine(program, config=config, collector=collector)
    return {shard_key(info): info.fingerprint for info in engine.plan()}


@dataclass
class InvalidationDelta:
    """The shard-set difference between two plans of (versions of) a project."""

    reused: List[str] = field(default_factory=list)  # same fingerprint: warm
    invalidated: List[str] = field(default_factory=list)  # changed: must re-run
    added: List[str] = field(default_factory=list)  # new shard (new primitive)
    removed: List[str] = field(default_factory=list)  # shard no longer planned

    @property
    def total(self) -> int:
        """Shards in the *new* plan."""
        return len(self.reused) + len(self.invalidated) + len(self.added)

    @property
    def skip_rate(self) -> float:
        """Fraction of the new plan that answers from the warm cache."""
        return len(self.reused) / self.total if self.total else 1.0

    def is_noop(self) -> bool:
        return not (self.invalidated or self.added or self.removed)

    def to_json(self) -> dict:
        return {
            "reused": list(self.reused),
            "invalidated": list(self.invalidated),
            "added": list(self.added),
            "removed": list(self.removed),
            "total": self.total,
            "skip_rate": self.skip_rate,
        }


def diff_fingerprints(
    old: Dict[str, str], new: Dict[str, str]
) -> InvalidationDelta:
    """Classify every shard of ``new`` against ``old`` (both from
    :func:`shard_fingerprints`), in deterministic key order."""
    delta = InvalidationDelta()
    for key in sorted(new):
        if key not in old:
            delta.added.append(key)
        elif old[key] == new[key]:
            delta.reused.append(key)
        else:
            delta.invalidated.append(key)
    delta.removed = sorted(key for key in old if key not in new)
    return delta
