"""The parallel, incremental detection engine.

The paper's disentangling strategy exists so each channel's BMOC analysis
runs in a small, independent scope (its ``Pset``). This engine exploits
that independence three ways:

* **sharding** — each post-disentangle primitive analysis, plus each of
  the five traditional checkers, is one shard; shards run across a
  ``concurrent.futures`` pool (``jobs=N``) and results are reassembled in
  program order, so the report set is identical regardless of completion
  order (asserted by the parity suite);
* **incrementality** — with a :class:`~repro.engine.cache.ResultCache`,
  each shard is keyed by a content-addressed fingerprint of its analysis
  scope; a warm re-run skips solved primitives entirely, and an edit
  invalidates only the primitives whose scope contains the edited
  function;
* **budgets** — per-primitive wall-clock/solver-node budgets degrade
  gracefully: a shard that exhausts its budget keeps the reports it found,
  is marked TIMEOUT, and the engine continues (the paper's per-package Z3
  timeout discipline).

Backends: ``thread`` (default) shares the analyzed program in memory and
returns full-fidelity reports; ``process`` forks workers for true CPU
parallelism on multi-core hosts (falling back to threads where ``fork``
is unavailable) at the cost of coarser per-shard traces.

Observability: per-shard ``engine-shard`` spans, plus the ``cache.hit`` /
``cache.miss`` / ``cache.skipped-solver-calls`` / ``engine.timeout`` /
``engine.shards`` counters, all through the run's :mod:`repro.obs`
collector.

Resilience (:mod:`repro.resilience`): every shard and every cache probe
runs behind an exception firewall — a crash anywhere inside one shard
(path enumeration, encoding, the solver, a traditional checker, an
injected fault) degrades into a structured ``Incident`` and a ``failed``
shard record; every *other* shard's reports are kept. Transient failures
(cache I/O, fork-pool worker death) retry with deterministic backoff,
and a shard whose budget timed out can optionally retry once with a
smaller per-solve node cap (``retry_timeouts``).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detector.bmoc import AnalysisBudget, BMOCDetector, DetectionResult, DetectionStats
from repro.detector.reporting import BugReport, dedup_reports
from repro.detector.traditional.double_lock import check_double_lock
from repro.detector.traditional.fatal_goroutine import check_fatal_goroutine
from repro.detector.traditional.forget_unlock import check_forget_unlock
from repro.detector.traditional.lock_order import check_lock_order
from repro.detector.traditional.struct_race import check_struct_races
from repro.engine.cache import CachedShard, ResultCache
from repro.engine.fingerprint import (
    ProgramDigests,
    channel_fingerprint,
    traditional_fingerprint,
)
from repro.obs import NULL, STAGE_ENGINE_SHARD, Collector, Dist, Span
from repro.resilience.firewall import BrokenProcessPool, Firewall, RetryPolicy
from repro.resilience.incidents import Incident, make_incident
from repro.ssa import ir

#: the five traditional checkers, in the fixed order the serial pipeline
#: runs them (report order and dedup depend on it)
TRADITIONAL_CHECKERS: Tuple[str, ...] = (
    "forget-unlock",
    "double-lock",
    "conflict-lock",
    "struct-race",
    "fatal-goroutine",
)


@dataclass
class EngineConfig:
    """Knobs of one engine run; all have serial-compatible defaults."""

    jobs: int = 1
    backend: str = "thread"  # 'thread' | 'process'
    cache: Optional[ResultCache] = None
    budget_wall_seconds: Optional[float] = None  # per primitive
    budget_solver_nodes: Optional[int] = None  # per primitive, across solves
    solver_max_nodes: Optional[int] = None  # per individual solve
    solver_mode: str = "batched"  # 'batched' (SolverSession) | 'classic'
    disentangle: bool = True
    max_loop_unroll: int = 2
    prune_infeasible: bool = True
    # resilience knobs (repro.resilience)
    checkers: Optional[Sequence[str]] = None  # None = all TRADITIONAL_CHECKERS
    max_retries: int = 1  # bounded retries for transient failures
    retry_backoff: float = 0.0  # deterministic backoff base, seconds
    retry_timeouts: bool = False  # retry TIMEOUT shards once, smaller budget


@dataclass
class ShardInfo:
    """Engine-level record of one shard: what ran, how, and at what cost."""

    kind: str  # 'bmoc' | 'traditional'
    label: str  # channel site repr or checker name
    fingerprint: str = ""
    seconds: float = 0.0
    outcome: str = "ok"  # 'ok' | 'timeout' | 'cached' | 'failed'
    reports: int = 0


@dataclass
class _ShardOutcome:
    index: int
    reports: List[BugReport]
    stats: DetectionStats
    seconds: float
    timed_out: bool
    counters: Dict[str, int] = field(default_factory=dict)
    #: span trees serialized as dicts when the outcome crossed a process
    #: boundary (forked worker); lineage is rebuilt on adoption
    spans: List[dict] = field(default_factory=list)
    #: distributions serialized as dicts for the same reason
    dists: Dict[str, dict] = field(default_factory=dict)
    collector: Optional[Collector] = None
    failed: bool = False
    incident: Optional[Incident] = None


# module-level slot a forked worker inherits; see _run_shard_in_worker
_FORKED_ENGINE: Optional["DetectionEngine"] = None


def _run_shard_in_worker(index: int):
    # _execute_guarded, not _execute_shard: a crash inside a forked worker
    # degrades into an Incident that ships back with the outcome instead of
    # poisoning the pool
    outcome = _FORKED_ENGINE._execute_guarded(index)
    # Collector objects hold locks and cannot cross the process boundary;
    # ship the counters, the distributions, and the span trees *as dicts*
    # so the parent can rebuild the exact serial span shape with lineage
    if outcome.collector is not None:
        outcome.counters = dict(outcome.collector.counters)
        outcome.spans = [s.to_dict() for s in outcome.collector.spans]
        outcome.dists = {
            name: dist.to_dict()
            for name, dist in outcome.collector.dists.items()
        }
        outcome.collector = None
    return outcome


class DetectionEngine:
    """Shards one program's detection across a pool, with result caching."""

    def __init__(
        self,
        program: ir.Program,
        config: Optional[EngineConfig] = None,
        collector: Optional[Collector] = None,
    ):
        self.program = program
        self.config = config or EngineConfig()
        self.collector = collector or NULL
        self.firewall = Firewall(
            collector=self.collector,
            policy=RetryPolicy(
                max_retries=self.config.max_retries,
                backoff_base=self.config.retry_backoff,
            ),
        )
        self.detector: Optional[BMOCDetector] = None
        self._channels: List = []
        self._shards: List[ShardInfo] = []

    # -- shard bodies ------------------------------------------------------

    def _make_budget(self) -> Optional[AnalysisBudget]:
        cfg = self.config
        if (
            cfg.budget_wall_seconds is None
            and cfg.budget_solver_nodes is None
            and cfg.solver_max_nodes is None
        ):
            return None
        return AnalysisBudget(
            wall_seconds=cfg.budget_wall_seconds,
            solver_nodes=cfg.budget_solver_nodes,
            max_nodes_per_solve=cfg.solver_max_nodes,
        )

    def _execute_shard(
        self, index: int, budget: Optional[AnalysisBudget] = None
    ) -> _ShardOutcome:
        info = self._shards[index]
        child = Collector(f"shard:{info.label}") if self.collector else None
        start = time.perf_counter()
        stats = DetectionStats()
        with (child or NULL).span(STAGE_ENGINE_SHARD, shard=info.label, kind=info.kind):
            if info.kind == "bmoc":
                detector = self.detector.for_shard(child or NULL)
                channel = self._channels[index]
                stats.channels_analyzed = 1
                reports, timed_out = detector.analyze_channel(
                    channel, stats, budget or self._make_budget()
                )
            else:
                reports = self._run_checker(info.label)
                timed_out = False
        seconds = time.perf_counter() - start
        if info.kind == "bmoc":
            stats.per_channel_seconds[info.label] = seconds
        return _ShardOutcome(
            index=index,
            reports=reports,
            stats=stats,
            seconds=seconds,
            timed_out=timed_out,
            collector=child,
        )

    def _execute_guarded(self, index: int) -> _ShardOutcome:
        """One shard behind the firewall: a crash becomes a failed outcome
        carrying its incident; the incident is *recorded* (once, in shard
        order) by the reassembly loop, not here — this may run in a forked
        worker whose firewall ledger never returns to the parent."""
        info = self._shards[index]
        start = time.perf_counter()
        guarded = self.firewall.call(
            lambda: self._execute_shard(index),
            site="shard",
            label=info.label,
            record=False,
        )
        if guarded.ok:
            outcome = guarded.value
            if outcome.timed_out and self.config.retry_timeouts:
                outcome = self._retry_with_smaller_budget(index, outcome)
            return outcome
        return _ShardOutcome(
            index=index,
            reports=[],
            stats=DetectionStats(),
            seconds=time.perf_counter() - start,
            timed_out=False,
            failed=True,
            incident=guarded.incident,
        )

    def _retry_with_smaller_budget(
        self, index: int, first: _ShardOutcome
    ) -> _ShardOutcome:
        """The solver-timeout transient path: one re-run with a per-solve
        node cap a quarter of the original, so every solve gives up early
        and the combination sweep itself can complete inside the budget."""
        from repro.constraints.solver import MAX_NODES

        if self._shards[index].kind != "bmoc":
            return first
        cap = (self.config.solver_max_nodes or MAX_NODES) // 4 or 1
        budget = AnalysisBudget(
            wall_seconds=self.config.budget_wall_seconds,
            solver_nodes=self.config.budget_solver_nodes,
            max_nodes_per_solve=cap,
        )
        if self.collector:
            self.collector.count("resilience.retry")
        guarded = self.firewall.call(
            lambda: self._execute_shard(index, budget=budget),
            site="shard",
            label=self._shards[index].label,
            record=False,
        )
        if guarded.ok and not guarded.value.timed_out:
            return guarded.value
        if self.collector:
            self.collector.count("resilience.gave-up")
        return first

    def _run_checker(self, name: str) -> List[BugReport]:
        detector = self.detector
        if name == "forget-unlock":
            return check_forget_unlock(self.program, detector.alias)
        if name == "double-lock":
            return check_double_lock(self.program, detector.alias)
        if name == "conflict-lock":
            return check_lock_order(self.program, detector.alias)
        if name == "struct-race":
            return check_struct_races(self.program, detector.alias)
        if name == "fatal-goroutine":
            return check_fatal_goroutine(self.program, detector.call_graph)
        raise ValueError(
            f"unknown traditional checker: {name!r} "
            f"(valid checkers: {', '.join(TRADITIONAL_CHECKERS)})"
        )

    # -- orchestration -----------------------------------------------------

    def run(self) -> "GCatchResult":
        from repro.detector.gcatch import GCatchResult

        obs = self.collector
        cfg = self.config
        start = time.perf_counter()
        corrupt_before = cfg.cache.corrupt if cfg.cache is not None else 0
        evicted_before = cfg.cache.evicted if cfg.cache is not None else 0
        bmoc_reports: List[BugReport] = []
        traditional: List[BugReport] = []
        agg = DetectionStats()
        with obs.span("gcatch"):
            prepared = self.firewall.call(
                self._prepare, site="detect-init", label=self.program.filename or ""
            )
            if not prepared.ok:
                # a pipeline-level crash before sharding: nothing to salvage,
                # but the caller still gets a structured (failed) result
                return self._aborted_result(start)
            cached, pending = self._probe_cache()
            executed = self._execute(pending)
            outcomes: Dict[int, _ShardOutcome] = {}
            outcomes.update(cached)
            outcomes.update(executed)

            # reassembly runs inside the gcatch span so adopted shard span
            # trees (thread pool and forked workers alike) graft under it:
            # one rooted tree per detect, identical in shape to serial
            for index, info in enumerate(self._shards):
                outcome = outcomes[index]
                info.seconds = outcome.seconds
                info.reports = len(outcome.reports)
                if outcome.failed:
                    info.outcome = "failed"
                    if outcome.incident is not None:
                        self.firewall.record(outcome.incident)
                    continue
                if outcome.timed_out:
                    info.outcome = "timeout"
                agg.merge(outcome.stats)
                if info.kind == "bmoc":
                    bmoc_reports.extend(outcome.reports)
                else:
                    traditional.extend(outcome.reports)
                self._record_observability(info, outcome)
                self._store_cache(info, outcome)
        agg.elapsed_seconds = time.perf_counter() - start
        result = GCatchResult(
            bmoc=DetectionResult(reports=dedup_reports(bmoc_reports), stats=agg),
            traditional=dedup_reports(traditional),
            shards=list(self._shards),
            incidents=list(self.firewall.incidents),
        )
        result.elapsed_seconds = agg.elapsed_seconds
        if obs:
            obs.count("engine.shards", len(self._shards))
            obs.count("detect.channels", agg.channels_analyzed)
            obs.count("detect.groups", agg.groups_checked)
            obs.count("detect.reports", len(result.all_reports()))
            if cfg.cache is not None and cfg.cache.corrupt > corrupt_before:
                obs.count("cache.corrupt", cfg.cache.corrupt - corrupt_before)
            if cfg.cache is not None and cfg.cache.evicted > evicted_before:
                obs.count("cache.evict", cfg.cache.evicted - evicted_before)
            result.trace = obs
        return result

    def plan(self) -> List[ShardInfo]:
        """Prepare the shard plan — detector, shard list, fingerprints —
        without executing any shard.

        This is the entry point of the incremental service's invalidation
        step: fingerprinting costs the front half of the pipeline (SSA
        digests, call graph, scopes) but no path enumeration and no solver
        work, so a daemon can ask "which cached results does this edit
        kill?" far cheaper than re-analyzing.
        """
        if self.detector is None:
            self._prepare()
        if self._shards and not self._shards[0].fingerprint:
            self._fingerprint_shards()
        return list(self._shards)

    def _prepare(self) -> None:
        if self.detector is not None:
            return  # already planned (plan() ran first); run() reuses it
        cfg = self.config
        self.detector = BMOCDetector(
            self.program,
            disentangle=cfg.disentangle,
            max_loop_unroll=cfg.max_loop_unroll,
            prune_infeasible=cfg.prune_infeasible,
            collector=self.collector,
            solver_max_nodes=cfg.solver_max_nodes,
            solver_mode=cfg.solver_mode,
        )
        self._plan_shards()

    def _aborted_result(self, start: float) -> "GCatchResult":
        from repro.detector.gcatch import GCatchResult

        stats = DetectionStats()
        stats.elapsed_seconds = time.perf_counter() - start
        result = GCatchResult(
            bmoc=DetectionResult(reports=[], stats=stats),
            traditional=[],
            shards=[],
            incidents=list(self.firewall.incidents),
        )
        result.elapsed_seconds = stats.elapsed_seconds
        if self.collector:
            result.trace = self.collector
        return result

    def _plan_shards(self) -> None:
        self._channels = list(self.detector.channels_to_analyze())
        self._shards = [
            ShardInfo(kind="bmoc", label=str(channel.site))
            for channel in self._channels
        ]
        # an unknown checker name (config/env typo) still gets a shard: it
        # fails inside the firewall and degrades the run instead of
        # aborting it, and its incident message names the valid set
        names = self.config.checkers
        names = list(TRADITIONAL_CHECKERS) if names is None else list(names)
        self._shards.extend(ShardInfo(kind="traditional", label=name) for name in names)
        if self.config.cache is not None:
            self._fingerprint_shards()

    def _fingerprint_shards(self) -> None:
        cfg = self.config
        digests = ProgramDigests(self.program)
        detector = self.detector
        for index, channel in enumerate(self._channels):
            if cfg.disentangle:
                # the detector's Pset memo: computed once, shared with the
                # analysis itself instead of re-derived for fingerprinting
                pset = detector.pset_of(channel)
                scope_functions = detector.scopes[channel].functions
            else:
                pset = [p for p in detector.pmap if p.site.kind != "ctxdone"]
                scope_functions = set(self.program.functions)
            self._shards[index].fingerprint = channel_fingerprint(
                digests,
                channel,
                pset,
                scope_functions,
                disentangle=cfg.disentangle,
                max_loop_unroll=cfg.max_loop_unroll,
                prune_infeasible=cfg.prune_infeasible,
                solver_max_nodes=cfg.solver_max_nodes,
                solver_mode=cfg.solver_mode,
            )
        for index in range(len(self._channels), len(self._shards)):
            info = self._shards[index]
            info.fingerprint = traditional_fingerprint(digests, info.label)

    def _probe_cache(self) -> Tuple[Dict[int, _ShardOutcome], List[int]]:
        cache = self.config.cache
        cached: Dict[int, _ShardOutcome] = {}
        pending: List[int] = []
        for index, info in enumerate(self._shards):
            entry = None
            if cache is not None:
                # a crash while probing (cache I/O, injected fault) is an
                # incident and an ordinary miss: the shard simply re-runs
                probe = self.firewall.call(
                    lambda key=info.fingerprint: cache.get(key),
                    site="cache-read",
                    label=info.label,
                )
                entry = probe.value if probe.ok else None
            if entry is None:
                pending.append(index)
                continue
            info.outcome = "cached"
            cached[index] = _ShardOutcome(
                index=index,
                reports=entry.reports,
                stats=entry.stats,
                seconds=0.0,
                timed_out=False,
                counters=dict(entry.counters),
            )
        return cached, pending

    def _execute(self, pending: List[int]) -> Dict[int, _ShardOutcome]:
        jobs = max(1, self.config.jobs)
        if jobs == 1 or len(pending) <= 1:
            return {i: self._execute_guarded(i) for i in pending}
        backend = self.config.backend
        if backend == "process" and "fork" not in multiprocessing.get_all_start_methods():
            backend = "thread"
        if backend == "process":
            return self._execute_process(pending, jobs)
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(self._execute_guarded, pending))
        return {o.index: o for o in outcomes}

    def _execute_process(self, pending: List[int], jobs: int) -> Dict[int, _ShardOutcome]:
        """Fork-pool execution with the worker-death transient path: a
        broken pool is retried (fresh pool, bounded by ``max_retries``),
        then degrades to guarded in-process execution — shard results are
        never lost to pool mechanics."""
        global _FORKED_ENGINE
        context = multiprocessing.get_context("fork")
        attempts = 0
        while attempts <= max(0, self.config.max_retries):
            _FORKED_ENGINE = self
            try:
                with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
                    outcomes = list(pool.map(_run_shard_in_worker, pending))
                return {o.index: o for o in outcomes}
            except BrokenProcessPool as exc:
                attempts += 1
                if self.collector:
                    self.collector.count("resilience.retry")
                broken = exc
            finally:
                _FORKED_ENGINE = None
        self.firewall.record(
            make_incident("pool", "process-pool", broken, attempts=attempts, transient=True)
        )
        if self.collector:
            self.collector.count("resilience.gave-up")
        return {i: self._execute_guarded(i) for i in pending}

    # -- result assembly ---------------------------------------------------

    def _annotate_shard_spans(self, info: ShardInfo, spans: List[Span]) -> None:
        """Evidence pointers on the shard's root span: which shard, its
        scope fingerprint (cache lineage) and how it ended — the fields a
        slow-request exemplar needs to be replayable after the fact."""
        for span in spans:
            if span.name != STAGE_ENGINE_SHARD:
                continue
            span.attrs.setdefault("shard", info.label)
            span.attrs.setdefault("kind", info.kind)
            span.attrs["outcome"] = info.outcome
            if info.fingerprint:
                span.attrs.setdefault("fingerprint", info.fingerprint)

    def _record_observability(self, info: ShardInfo, outcome: _ShardOutcome) -> None:
        obs = self.collector
        if not obs:
            return
        if info.outcome == "cached":
            obs.count("cache.hit")
            obs.count("cache.skipped-solver-calls", outcome.stats.solver_calls)
            return
        if self.config.cache is not None:
            obs.count("cache.miss")
        obs.observe("engine.shard.seconds", outcome.seconds)
        if outcome.collector is not None:
            # in-process shard (serial or thread pool): merge adopts the
            # span trees under the open gcatch span with lineage intact
            self._annotate_shard_spans(info, outcome.collector.spans)
            obs.merge(outcome.collector)
            return
        # a forked worker: replay counters and distributions, rebuild the
        # shipped span trees (same shape as serial) and adopt them
        for name, n in outcome.counters.items():
            obs.count(name, n)
        for name, payload in outcome.dists.items():
            shipped = Dist.from_dict(payload)
            with obs._lock:
                mine = obs.dists.get(name)
                if mine is None:
                    mine = obs.dists[name] = Dist()
                mine.merge(shipped)
        if outcome.spans:
            spans = [Span.from_dict(s) for s in outcome.spans]
        else:
            spans = [Span(name=STAGE_ENGINE_SHARD, start=0.0, end=outcome.seconds)]
        self._annotate_shard_spans(info, spans)
        obs.adopt_spans(spans)

    def _store_cache(self, info: ShardInfo, outcome: _ShardOutcome) -> None:
        cache = self.config.cache
        if cache is None or info.outcome != "ok":
            return  # only completed shards are cached; timeouts re-run
        counters = (
            dict(outcome.collector.counters)
            if outcome.collector is not None
            else dict(outcome.counters)
        )
        entry = CachedShard(
            reports=outcome.reports, stats=outcome.stats, counters=counters
        )
        # a failed store (cache I/O, injected fault) is an incident, not an
        # abort: the reports are already in hand, only persistence is lost
        self.firewall.call(
            lambda: cache.put(info.fingerprint, entry),
            site="cache-write",
            label=info.label,
        )


def run_engine(
    program: ir.Program,
    config: Optional[EngineConfig] = None,
    collector: Optional[Collector] = None,
) -> "GCatchResult":
    """Convenience wrapper: one engine run over a lowered program."""
    return DetectionEngine(program, config=config, collector=collector).run()
