"""Content-addressed fingerprints for detection-engine shards.

A primitive's BMOC analysis depends only on its post-disentangle scope:
the SSA of every function reachable in its ``Pset`` scope, the identities
of the primitives analyzed with it, the detector options, and the versions
of the encoder and the decision procedure. Hashing exactly those inputs
gives a key with the invalidation behaviour the engine's cache needs:

* re-running over unchanged source produces the same keys (warm hits);
* editing a function invalidates only the primitives whose scope contains
  it — an unrelated edit is a 100% cache hit;
* bumping :data:`~repro.constraints.encoding.ENCODER_VERSION` or
  :data:`~repro.constraints.solver.SOLVER_VERSION` (or this module's
  :data:`ENGINE_VERSION`) invalidates everything.

Fingerprints are line-sensitive by design: bug reports carry source line
numbers, so an edit that shifts a scope function's lines must re-analyze
the primitives that would otherwise report stale locations.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List, Optional

from repro.analysis.primitives import Primitive
from repro.constraints import encoding, solver
from repro.ssa import ir

#: version tag of the engine itself (shard layout, cache entry shape,
#: path-enumeration semantics such as the dead-select-arm pruning rule)
ENGINE_VERSION = "2"


def _operand(op: object, labels: Dict[int, str]) -> str:
    if op is None:
        return "_"
    if isinstance(op, ir.Const):
        return f"#{op.value!r}"
    if isinstance(op, ir.Var):
        return f"%{op.name}"
    if isinstance(op, ir.FuncRef):
        return f"@{op.name}"
    if isinstance(op, ir.MethodRef):
        return f"@?.{op.name}"
    if isinstance(op, ir.Block):
        return labels.get(id(op), "?b")
    if isinstance(op, list):
        return "[" + ",".join(_operand(v, labels) for v in op) + "]"
    if dataclasses.is_dataclass(op) and not isinstance(op, type):
        inner = ",".join(
            f"{f.name}={_operand(getattr(op, f.name), labels)}"
            for f in dataclasses.fields(op)
        )
        return f"{type(op).__name__}({inner})"
    return repr(op)


def _instr_sig(instr: ir.Instr, labels: Dict[int, str]) -> str:
    parts = [type(instr).__name__]
    for f in dataclasses.fields(instr):
        parts.append(f"{f.name}={_operand(getattr(instr, f.name), labels)}")
    return " ".join(parts)


def function_digest(fn: ir.Function) -> str:
    """Deterministic digest of one lowered function's SSA."""
    blocks = fn.reachable_blocks()
    labels = {id(b): f"b{i}" for i, b in enumerate(blocks)}
    h = hashlib.sha256()
    h.update(
        (
            f"func {fn.name}({','.join(fn.params)})->{fn.result_count}"
            f" line={fn.decl_line} closure={fn.is_closure}"
            f" free={','.join(fn.free_vars)}\n"
        ).encode()
    )
    for block in blocks:
        h.update((labels[id(block)] + ":\n").encode())
        for instr in block.all_instrs():
            h.update((_instr_sig(instr, labels) + "\n").encode())
    return h.hexdigest()


class ProgramDigests:
    """Memoized per-function digests for one program (one engine run)."""

    def __init__(self, program: ir.Program):
        self.program = program
        self._digests: Dict[str, str] = {}

    def of(self, name: str) -> str:
        digest = self._digests.get(name)
        if digest is None:
            digest = self._digests[name] = function_digest(self.program.functions[name])
        return digest


def _version_preamble() -> List[str]:
    # read the tags dynamically so a (monkey-patched or real) version bump
    # is always picked up
    return [
        f"engine={ENGINE_VERSION}",
        f"encoder={encoding.ENCODER_VERSION}",
        f"solver={solver.SOLVER_VERSION}",
    ]


def _options_line(
    disentangle: bool, max_loop_unroll: int, prune_infeasible: bool,
    solver_max_nodes: Optional[int], solver_mode: str,
) -> str:
    # solver_mode is included conservatively: batched and classic produce
    # byte-identical reports (the parity suite proves it), but cache entries
    # should still say which pipeline produced them
    return (
        f"opts disentangle={disentangle} unroll={max_loop_unroll} "
        f"prune={prune_infeasible} max_nodes={solver_max_nodes} "
        f"solver_mode={solver_mode}"
    )


def channel_fingerprint(
    digests: ProgramDigests,
    channel: Primitive,
    pset: Iterable[Primitive],
    scope_functions: Iterable[str],
    *,
    disentangle: bool = True,
    max_loop_unroll: int = 2,
    prune_infeasible: bool = True,
    solver_max_nodes: Optional[int] = None,
    solver_mode: str = "batched",
) -> str:
    """Fingerprint of one channel's BMOC analysis scope."""
    h = hashlib.sha256()
    for line in _version_preamble():
        h.update((line + "\n").encode())
    h.update(
        (
            _options_line(
                disentangle, max_loop_unroll, prune_infeasible,
                solver_max_nodes, solver_mode,
            )
            + "\n"
        ).encode()
    )
    h.update((f"channel {channel.site!r}\n").encode())
    for site in sorted(repr(p.site) for p in pset):
        h.update((f"pset {site}\n").encode())
    program = digests.program
    for name in sorted(set(scope_functions) & set(program.functions)):
        h.update((f"fn {name} {digests.of(name)}\n").encode())
    return h.hexdigest()


def traditional_fingerprint(digests: ProgramDigests, checker: str) -> str:
    """Fingerprint of one whole-program traditional checker run.

    Traditional checkers consume the whole program (plus the alias
    analysis), so any function edit invalidates them — their scope *is*
    the program.
    """
    h = hashlib.sha256()
    for line in _version_preamble():
        h.update((line + "\n").encode())
    h.update((f"checker {checker}\n").encode())
    for name in sorted(digests.program.functions):
        h.update((f"fn {name} {digests.of(name)}\n").encode())
    return h.hexdigest()
