"""The fleet driver: dispatch work units to daemons, checkpoint, aggregate.

Placement is **least-loaded by construction**: one driver thread per
daemon pulls the next unit from a shared plan-ordered queue the moment
its daemon is free, so a slow unit on one daemon never idles the others
(classic work-queue scheduling — no load estimator to get wrong).

Per-attempt failure handling, in order of escalation:

* ``OVERLOADED`` / ``QUOTA_EXCEEDED`` sheds honor the daemon's
  ``retry_after`` hint (bounded waits, then the unit counts a dispatch
  attempt and re-enters the queue);
* a crashed request (``REQUEST_FAILED``) or in-queue deadline is retried
  up to ``max_attempts`` times, then recorded as a failed unit;
* a dead or *stalled* daemon — connection refused, connection lost, or a
  unit exceeding ``straggler_timeout`` with no response — is killed and
  restarted through the supervisor's bounded policy, and the unit is
  re-dispatched (straggler re-dispatch and crash recovery are the same
  code path: the attempt is abandoned, the unit re-queued).

Completed units append to the :class:`~repro.fleet.manifest.SweepManifest`
*before* the supervisor checkpoint fires, so a sweep killed at a
checkpoint has every finished unit on disk and a resume re-runs only the
rest. Outcomes are the deterministic payload slice
(:mod:`repro.fleet.report`), which is what makes fleet == serial ==
killed-and-resumed byte-identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fleet.manifest import SweepManifest
from repro.fleet.plan import SweepPlan, WorkUnit
from repro.fleet.report import (
    aggregate,
    merge_telemetry,
    outcome_from_detect,
    outcome_from_fuzz,
)
from repro.fleet.supervisor import FleetSupervisor, SupervisorError
from repro.obs import Collector
from repro.obs.journal import TelemetryJournal, request_record
from repro.resilience.faultinject import FaultInjected, maybe_fault
from repro.service.client import ServiceConnectionError, ServiceRequestError
from repro.service.protocol import (
    DEADLINE_EXCEEDED,
    OVERLOADED,
    QUOTA_EXCEEDED,
    is_error,
)

#: ceiling on one backpressure wait, whatever the daemon hints
MAX_RETRY_AFTER = 2.0

#: backpressure retries per dispatch attempt before the attempt fails
MAX_SHED_RETRIES = 8


class SweepKilled(RuntimeError):
    """The sweep aborted at a supervisor checkpoint (chaos or operator
    kill). Completed units are on the manifest; resume picks them up."""


@dataclass
class FleetResult:
    """Everything a sweep produced, deterministic and not."""

    plan: SweepPlan
    outcomes: Dict[str, dict] = field(default_factory=dict)
    metas: Dict[str, dict] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)  # uid -> reason
    restarts: int = 0
    sheds: int = 0
    incidents: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def report(self) -> dict:
        return aggregate(self.plan, self.outcomes)

    def telemetry(self) -> dict:
        return merge_telemetry(
            self.metas,
            self.elapsed_seconds,
            restarts=self.restarts,
            sheds=self.sheds,
            incidents=len(self.incidents),
        )

    def complete(self) -> bool:
        return len(self.outcomes) == len(self.plan.units)


def _detect_params(options: dict) -> dict:
    params = {}
    for key in ("strict", "fail_on_timeout"):
        if options.get(key):
            params[key] = True
    return params


def run_sweep(
    plan: SweepPlan,
    daemons: int = 1,
    mode: str = "thread",
    manifest_path: Optional[str] = None,
    service_options: Optional[dict] = None,
    workers: int = 1,
    max_queue: Optional[int] = None,
    tenant_max_queue: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    straggler_timeout: Optional[float] = None,
    max_attempts: int = 3,
    collector: Optional[Collector] = None,
    journal_path: Optional[str] = None,
    supervisor: Optional[FleetSupervisor] = None,
) -> FleetResult:
    """Sweep ``plan`` across ``daemons`` daemon processes/threads.

    Passing an already-started ``supervisor`` hands over daemon
    lifecycle to the caller (tests use this to pre-crash daemons); by
    default the driver owns one sized ``daemons`` and tears it down.
    """
    if not plan.units:
        raise ValueError("empty sweep plan")
    obs = collector
    manifest = SweepManifest(manifest_path) if manifest_path else None
    journal = TelemetryJournal(journal_path) if journal_path else None
    result = FleetResult(plan=plan)
    started = time.perf_counter()

    # resume: replay checkpointed outcomes whose fingerprints still match
    pending: List[WorkUnit] = []
    for unit in plan.units:
        reusable = manifest.reusable_outcome(unit.uid, unit.fingerprint) if manifest else None
        if reusable is not None:
            result.outcomes[unit.uid] = reusable
            result.metas[unit.uid] = {"skipped": True}
            if obs:
                obs.count("fleet.units.skipped")
        else:
            pending.append(unit)

    own_supervisor = supervisor is None
    if own_supervisor:
        seed_path = plan.units[0].path or _fuzz_seed_path(manifest_path)
        supervisor = FleetSupervisor(
            daemons,
            seed_path,
            mode=mode,
            service_options=service_options,
            workers=workers,
            max_queue=max_queue,
            tenant_max_queue=tenant_max_queue,
            collector=obs,
        ).start()
    assert supervisor is not None

    lock = threading.Lock()
    attempts: Dict[str, int] = {}
    fatal: List[BaseException] = []

    def next_unit() -> Optional[WorkUnit]:
        with lock:
            if fatal:
                return None
            return pending.pop(0) if pending else None

    def requeue(unit: WorkUnit, reason: str) -> None:
        with lock:
            attempts[unit.uid] = attempts.get(unit.uid, 0) + 1
            if attempts[unit.uid] >= max_attempts:
                result.failed[unit.uid] = reason
                if manifest:
                    manifest.record_unit(
                        unit.uid, unit.fingerprint, ok=False, outcome=None,
                        meta={"error": reason},
                    )
            else:
                pending.append(unit)

    def worker(name: str) -> None:
        while True:
            unit = next_unit()
            if unit is None:
                return
            unit_started = time.perf_counter()
            try:
                response, sheds = _dispatch(supervisor, name, unit)
            except ServiceRequestError as exc:
                # tenant registration rejected — a request-level failure,
                # not a daemon death: count the attempt and requeue
                requeue(unit, str(exc))
                continue
            except (ServiceConnectionError, FaultInjected) as exc:
                # dead daemon, stalled unit (socket timeout), or chaos:
                # same recovery — fresh daemon, unit back on the queue
                result.incidents.append(f"{unit.uid} on {name}: {exc}")
                if obs:
                    obs.count("fleet.daemon-failures")
                try:
                    supervisor.kill(name)
                    supervisor.restart(name, reason=str(exc))
                except SupervisorError as dead:
                    with lock:
                        fatal.append(dead)
                    return
                requeue(unit, f"daemon failure: {exc}")
                continue
            with lock:
                result.sheds += sheds
            elapsed = time.perf_counter() - unit_started
            if is_error(response):
                error = response["error"]
                reason = f"[{error.get('code')}] {error.get('message')}"
                requeue(unit, reason)
                _journal_unit(journal, unit, name, "error", elapsed)
                continue
            payload = response.get("result") or {}
            outcome = (
                outcome_from_detect(payload)
                if unit.kind == "project"
                else outcome_from_fuzz(payload)
            )
            meta = {
                "daemon": name,
                "attempts": attempts.get(unit.uid, 0) + 1,
                "elapsed_seconds": round(elapsed, 6),
                "sheds": sheds,
            }
            if unit.kind == "project":
                meta["cache"] = {
                    "hits": payload.get("shards", {}).get("cached", 0),
                    "misses": payload.get("shards", {}).get("executed", 0),
                }
            with lock:
                result.outcomes[unit.uid] = outcome
                result.metas[unit.uid] = meta
            if manifest:
                manifest.record_unit(
                    unit.uid, unit.fingerprint, ok=True, outcome=outcome, meta=meta
                )
            _journal_unit(journal, unit, name, "ok", elapsed, outcome)
            if obs:
                obs.count("fleet.units.completed")
            try:
                supervisor.checkpoint(unit.uid)
            except FaultInjected as exc:
                with lock:
                    fatal.append(SweepKilled(str(exc)))
                return

    def _dispatch(sup: FleetSupervisor, name: str, unit: WorkUnit):
        """One dispatch attempt; returns (response, shed_count). Raises
        ServiceConnectionError/FaultInjected for daemon-level failure."""
        maybe_fault("fleet-dispatch", unit.uid)
        sheds = 0
        while True:
            client = sup.client(name)
            if unit.kind == "project":
                if not sup.is_registered(name, unit.uid):
                    client.result(
                        "register", {"tenant": unit.uid, "path": unit.path}
                    )
                    sup.mark_registered(name, unit.uid)
                params = dict(detect_params)
                if deadline_seconds is not None:
                    params["deadline_seconds"] = deadline_seconds
                response = client.call("detect", params, tenant=unit.uid)
            else:
                response = client.call(
                    "fuzz",
                    {"seed": unit.seed, "start": unit.start, "count": unit.count},
                )
            if is_error(response):
                error = response["error"]
                if error.get("code") in (OVERLOADED, QUOTA_EXCEEDED):
                    sheds += 1
                    if obs:
                        obs.count("fleet.backpressure")
                    if sheds > MAX_SHED_RETRIES:
                        return response, sheds
                    wait = float(error.get("retry_after") or 0.05)
                    time.sleep(min(wait, MAX_RETRY_AFTER))
                    continue
                if error.get("code") == DEADLINE_EXCEEDED:
                    return response, sheds
            return response, sheds

    detect_params = _detect_params(service_options or {})
    if straggler_timeout is not None:
        supervisor.request_timeout = straggler_timeout

    threads = [
        threading.Thread(target=worker, args=(name,), name=f"fleet-driver-{name}")
        for name in list(supervisor.daemons)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        if own_supervisor:
            supervisor.stop()
    result.restarts = supervisor.restarts()
    result.incidents.extend(supervisor.incidents)
    result.elapsed_seconds = time.perf_counter() - started
    if fatal:
        raise fatal[0]
    return result


def _journal_unit(
    journal: Optional[TelemetryJournal],
    unit: WorkUnit,
    daemon: str,
    outcome: str,
    elapsed: float,
    payload: Optional[dict] = None,
) -> None:
    if journal is None:
        return
    record = request_record(
        trace_id=f"fleet-{unit.uid}",
        method="fleet-unit",
        outcome=outcome,
        elapsed_seconds=elapsed,
        tenant=unit.uid,
        reports=len(payload.get("reports", [])) if payload else None,
        code=payload.get("code") if payload else None,
    )
    record["daemon"] = daemon
    journal.append(record)


def _fuzz_seed_path(manifest_path: Optional[str]) -> str:
    """Fuzz sweeps need a daemon seed project; write a trivial one next
    to the manifest (or in a temp dir) — it is never analyzed."""
    import os
    import tempfile

    base = (
        os.path.dirname(os.path.abspath(manifest_path))
        if manifest_path
        else tempfile.mkdtemp(prefix="repro-fleet-")
    )
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, "fleet-seed.go")
    if not os.path.exists(path):
        with open(path, "w") as handle:
            handle.write("package main\n\nfunc main() {\n}\n")
    return path


# ---------------------------------------------------------------------------
# the serial reference


def serial_sweep(
    plan: SweepPlan,
    service_options: Optional[dict] = None,
    collector: Optional[Collector] = None,
) -> FleetResult:
    """The one-shot reference: every unit, in plan order, in-process.

    Project units run through a real :class:`AnalysisService` (same
    handler code the daemons run, no sockets); fuzz units through
    :func:`repro.fuzz.campaign.run_campaign` shards. The fleet parity
    suite asserts ``canonical_bytes`` equality against this.
    """
    from repro.service.daemon import AnalysisService

    if not plan.units:
        raise ValueError("empty sweep plan")
    options = dict(service_options or {})
    detect_params = _detect_params(options)
    options.pop("strict", None)
    options.pop("fail_on_timeout", None)
    result = FleetResult(plan=plan)
    started = time.perf_counter()
    service = None
    project_units = [u for u in plan.units if u.kind == "project"]
    if project_units:
        service = AnalysisService(project_units[0].path, **options).start()
    try:
        for unit in plan.units:
            unit_started = time.perf_counter()
            if unit.kind == "project":
                assert service is not None
                service.call("register", {"tenant": unit.uid, "path": unit.path})
                response = service.call("detect", detect_params, tenant=unit.uid)
                if is_error(response):
                    error = response["error"]
                    result.failed[unit.uid] = (
                        f"[{error.get('code')}] {error.get('message')}"
                    )
                    continue
                outcome = outcome_from_detect(response.get("result") or {})
            else:
                from repro.fuzz.campaign import run_campaign

                report = run_campaign(
                    unit.seed, unit.count, start=unit.start, collector=collector
                )
                outcome = outcome_from_fuzz(
                    {
                        "triages": [t.to_dict() for t in report.triages],
                        "unexplained": len(report.unexplained()),
                        "crashes": len(report.crashes()),
                    }
                )
            result.outcomes[unit.uid] = outcome
            result.metas[unit.uid] = {
                "daemon": "serial",
                "attempts": 1,
                "elapsed_seconds": round(time.perf_counter() - unit_started, 6),
            }
    finally:
        if service is not None:
            service.stop()
    result.elapsed_seconds = time.perf_counter() - started
    return result


__all__ = ["FleetResult", "SweepKilled", "run_sweep", "serial_sweep"]
