"""Fleet aggregation: merge per-unit results into one deterministic report.

The aggregate is the sweep's parity surface: :func:`canonical_bytes`
over it must be byte-identical whether the units ran serially in one
process, across N daemons, or across a kill + resume. That works because
*outcomes* keep only the deterministic slice of a daemon's ``detect`` /
``fuzz`` payload — reports, exit code, health, counts — and every
wall-clock, placement, generation, or cache field lives in the
*telemetry* side channel (:func:`merge_telemetry`), which feeds
``BENCH_fleet.json`` and ``repro top`` but never the canonical bytes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.fleet.plan import SweepPlan
from repro.obs import Dist

FLEET_REPORT_KIND = "repro.fleet/1"


def outcome_from_detect(payload: dict) -> dict:
    """The deterministic slice of a daemon ``detect`` payload."""
    return {
        "kind": "project",
        "code": payload.get("code"),
        "health": payload.get("health"),
        "timed_out": bool(payload.get("timed_out")),
        "bmoc": payload.get("bmoc", 0),
        "traditional": payload.get("traditional", 0),
        "reports": [
            {
                "category": r.get("category"),
                "description": r.get("description"),
                "lines": r.get("lines"),
                "render": r.get("render"),
            }
            for r in payload.get("reports", [])
        ],
    }


def outcome_from_fuzz(payload: dict) -> dict:
    """The deterministic slice of a daemon ``fuzz`` payload: triage
    dicts carry no timing, and bucket order is generation order."""
    return {
        "kind": "fuzz",
        "triages": payload.get("triages", []),
        "unexplained": payload.get("unexplained", 0),
        "crashes": payload.get("crashes", 0),
    }


def aggregate(plan: SweepPlan, outcomes: Dict[str, dict]) -> dict:
    """The fleet report: units in plan order, totals across them.

    ``outcomes`` maps unit uid -> deterministic outcome dict (fresh or
    replayed from the manifest — indistinguishable by construction).
    """
    units = []
    codes: Dict[str, int] = {}
    health: Dict[str, int] = {}
    categories: Dict[str, int] = {}
    buckets: Dict[str, int] = {}
    total_reports = 0
    incomplete = []
    for unit in plan.units:
        outcome = outcomes.get(unit.uid)
        if outcome is None:
            incomplete.append(unit.uid)
            continue
        units.append(
            {"uid": unit.uid, "fingerprint": unit.fingerprint, "outcome": outcome}
        )
        if outcome.get("kind") == "project":
            codes[str(outcome.get("code"))] = codes.get(str(outcome.get("code")), 0) + 1
            health[str(outcome.get("health"))] = (
                health.get(str(outcome.get("health")), 0) + 1
            )
            for report in outcome.get("reports", []):
                total_reports += 1
                cat = str(report.get("category"))
                categories[cat] = categories.get(cat, 0) + 1
        else:
            for triage in outcome.get("triages", []):
                bucket = str(triage.get("bucket"))
                buckets[bucket] = buckets.get(bucket, 0) + 1
    totals = {
        "units": len(plan.units),
        "completed": len(units),
        "incomplete": sorted(incomplete),
        "reports": total_reports,
        "by_code": codes,
        "by_health": health,
        "by_category": categories,
    }
    if buckets:
        totals["by_bucket"] = buckets
    return {"kind": FLEET_REPORT_KIND, "plan": plan.kind, "units": units, "totals": totals}


def canonical_bytes(report: dict) -> bytes:
    """The byte-parity surface: compact, sorted-keys, newline-terminated."""
    return (
        json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def render(report: dict) -> str:
    """Human summary of a fleet report."""
    totals = report["totals"]
    lines = [
        f"fleet sweep: {totals['completed']}/{totals['units']} unit(s) complete, "
        f"{totals['reports']} report(s)"
    ]
    if totals.get("by_category"):
        cats = ", ".join(
            f"{cat}: {n}" for cat, n in sorted(totals["by_category"].items())
        )
        lines.append(f"  by category: {cats}")
    if totals.get("by_health"):
        hs = ", ".join(f"{h}: {n}" for h, n in sorted(totals["by_health"].items()))
        lines.append(f"  by health: {hs}")
    if totals.get("by_bucket"):
        bs = ", ".join(f"{b}: {n}" for b, n in sorted(totals["by_bucket"].items()))
        lines.append(f"  by bucket: {bs}")
    for uid in totals["incomplete"]:
        lines.append(f"  INCOMPLETE: {uid}")
    buggy = [
        u
        for u in report["units"]
        if u["outcome"].get("kind") == "project" and u["outcome"].get("reports")
    ]
    for unit in buggy[:20]:
        lines.append(
            f"  {unit['uid']}: {len(unit['outcome']['reports'])} report(s), "
            f"code {unit['outcome']['code']}"
        )
    if len(buggy) > 20:
        lines.append(f"  ... {len(buggy) - 20} more unit(s) with reports")
    return "\n".join(lines)


def merge_telemetry(
    metas: Dict[str, dict],
    elapsed_seconds: float,
    restarts: int = 0,
    sheds: int = 0,
    incidents: int = 0,
) -> dict:
    """Fleet-level telemetry from per-unit dispatch metadata.

    Everything here is wall-clock or placement derived — real, useful,
    and deliberately *outside* the canonical report bytes.
    """
    unit_seconds = Dist()
    attempts = 0
    skipped = 0
    by_daemon: Dict[str, int] = {}
    cache_hits = cache_misses = 0
    for meta in metas.values():
        if meta.get("skipped"):
            skipped += 1
            continue
        unit_seconds.add(float(meta.get("elapsed_seconds", 0.0)))
        attempts += int(meta.get("attempts", 1))
        daemon = meta.get("daemon")
        if daemon is not None:
            by_daemon[str(daemon)] = by_daemon.get(str(daemon), 0) + 1
        cache = meta.get("cache") or {}
        cache_hits += int(cache.get("hits", 0) or 0)
        cache_misses += int(cache.get("misses", 0) or 0)
    executed = len(metas) - skipped
    probes = cache_hits + cache_misses
    return {
        "elapsed_seconds": elapsed_seconds,
        "units": len(metas),
        "executed": executed,
        "skipped": skipped,
        "units_per_second": executed / elapsed_seconds if elapsed_seconds > 0 else None,
        "unit_p50_seconds": unit_seconds.p50,
        "unit_p95_seconds": unit_seconds.p95,
        "dispatch_attempts": attempts,
        "redispatches": max(0, attempts - executed),
        "by_daemon": by_daemon,
        "restarts": restarts,
        "sheds": sheds,
        "incidents": incidents,
        "cache_hit_rate": cache_hits / probes if probes else None,
    }


__all__ = [
    "FLEET_REPORT_KIND",
    "aggregate",
    "canonical_bytes",
    "merge_telemetry",
    "outcome_from_detect",
    "outcome_from_fuzz",
    "render",
]
