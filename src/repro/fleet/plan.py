"""Corpus-sweep planning: deterministic work units with content fingerprints.

A *plan* turns a sweep's input — a corpus directory tree, or a fuzz
campaign spec — into an ordered list of :class:`WorkUnit`. Units are the
granularity of everything downstream: dispatch, manifest checkpointing,
resume, and aggregation. The contract that makes sweeps resumable and
fleet==serial provable:

* planning is **deterministic**: the same tree (same bytes) plans the
  same units in the same order with the same fingerprints;
* a unit's ``fingerprint`` covers exactly what its analysis reads — the
  sorted file set with content hashes, plus the engine/encoder/solver
  version preamble — so a manifest entry is reusable iff the fingerprint
  still matches (an edit *or* a detector-semantics bump re-runs it);
* unit ids are stable path-derived slugs, usable directly as daemon
  tenant ids.

A *project* unit mirrors :class:`repro.service.project.ProjectState`'s
path semantics exactly: a directory unit covers the ``*.go`` files
directly inside it (non-recursive — nested directories are their own
units), a file unit covers one ``.go`` file.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.constraints import encoding, solver
from repro.engine import fingerprint as engine_fp


def _version_preamble() -> str:
    """Detection-semantics tag folded into every unit fingerprint: a
    version bump must invalidate checkpointed outcomes on resume."""
    return (
        f"engine={engine_fp.ENGINE_VERSION};"
        f"encoder={encoding.ENCODER_VERSION};"
        f"solver={solver.SOLVER_VERSION}"
    )


@dataclass(frozen=True)
class WorkUnit:
    """One dispatchable unit of a sweep."""

    uid: str  # stable id; doubles as the daemon tenant id
    kind: str  # 'project' | 'fuzz'
    fingerprint: str
    path: Optional[str] = None  # project units: the .go file or directory
    seed: Optional[int] = None  # fuzz units: campaign seed
    start: Optional[int] = None  # fuzz units: first program index
    count: Optional[int] = None  # fuzz units: programs in this shard

    def to_json(self) -> dict:
        payload = {"uid": self.uid, "kind": self.kind, "fingerprint": self.fingerprint}
        if self.kind == "project":
            payload["path"] = self.path
        else:
            payload["seed"] = self.seed
            payload["start"] = self.start
            payload["count"] = self.count
        return payload


@dataclass
class SweepPlan:
    """The ordered unit list plus enough provenance to re-plan."""

    kind: str  # 'corpus' | 'fuzz'
    root: Optional[str]
    units: List[WorkUnit] = field(default_factory=list)

    def by_uid(self) -> Dict[str, WorkUnit]:
        return {unit.uid: unit for unit in self.units}

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "root": self.root,
            "units": [unit.to_json() for unit in self.units],
        }


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def unit_fingerprint(paths: List[str], root: str) -> str:
    """Content fingerprint of one project unit's file set."""
    h = hashlib.sha256()
    h.update((_version_preamble() + "\n").encode())
    for path in sorted(paths):
        rel = os.path.relpath(path, root)
        with open(path, "rb") as handle:
            digest = _sha(handle.read())
        h.update(f"{rel}={digest}\n".encode())
    return h.hexdigest()


def _slug(rel: str) -> str:
    if rel in (".", ""):
        return "root"
    slug = rel.replace(os.sep, "/")
    return slug[:-3] if slug.endswith(".go") else slug


def plan_corpus(root: str) -> SweepPlan:
    """Walk a corpus tree into project units.

    Every directory that directly contains at least one ``.go`` file is
    one unit (covering exactly those files, like ``ProjectState`` on a
    directory); a root that is itself a single ``.go`` file is one unit.
    Walk order is sorted, so the plan is deterministic.
    """
    root = os.path.abspath(root)
    if not os.path.exists(root):
        raise FileNotFoundError(root)
    plan = SweepPlan(kind="corpus", root=root)
    if os.path.isfile(root):
        if not root.endswith(".go"):
            raise ValueError(f"not a .go file or directory: {root}")
        plan.units.append(
            WorkUnit(
                uid=_slug(os.path.basename(root)),
                kind="project",
                fingerprint=unit_fingerprint([root], os.path.dirname(root)),
                path=root,
            )
        )
        return plan
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        go_files = sorted(
            os.path.join(dirpath, n) for n in filenames if n.endswith(".go")
        )
        if not go_files:
            continue
        plan.units.append(
            WorkUnit(
                uid=_slug(os.path.relpath(dirpath, root)),
                kind="project",
                fingerprint=unit_fingerprint(go_files, root),
                path=dirpath,
            )
        )
    if not plan.units:
        raise FileNotFoundError(f"no .go files under {root}")
    return plan


def plan_fuzz(seed: int, count: int, shard_size: int = 25) -> SweepPlan:
    """Shard one fuzz campaign into ``ceil(count / shard_size)`` units.

    Program generation is a pure function of ``(seed, index)``, so a
    shard's fingerprint is its spec plus the version preamble — there is
    no file content to hash.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    plan = SweepPlan(kind="fuzz", root=None)
    start = 0
    while start < count:
        size = min(shard_size, count - start)
        spec = f"fuzz;{_version_preamble()};seed={seed};start={start};count={size}"
        plan.units.append(
            WorkUnit(
                uid=f"fuzz-s{seed}-{start:05d}",
                kind="fuzz",
                fingerprint=_sha(spec.encode()),
                seed=seed,
                start=start,
                count=size,
            )
        )
        start += size
    return plan


def materialize_bugset(root: str) -> List[str]:
    """Write the 49-program public bug set (§5.2) as a corpus tree:
    one ``<case_id>/main.go`` per case. Idempotent — rewriting the same
    set leaves fingerprints unchanged, so a resume still skips. Returns
    the case directories in plan (sorted) order."""
    from repro.corpus.bugset import build_bug_set

    root = os.path.abspath(root)
    os.makedirs(root, exist_ok=True)
    dirs = []
    for case in build_bug_set():
        case_dir = os.path.join(root, case.case_id)
        os.makedirs(case_dir, exist_ok=True)
        path = os.path.join(case_dir, "main.go")
        data = case.source if case.source.endswith("\n") else case.source + "\n"
        existing = None
        if os.path.exists(path):
            with open(path, "r") as handle:
                existing = handle.read()
        if existing != data:
            with open(path, "w") as handle:
                handle.write(data)
        dirs.append(case_dir)
    return sorted(dirs)


__all__ = [
    "SweepPlan",
    "WorkUnit",
    "materialize_bugset",
    "plan_corpus",
    "plan_fuzz",
    "unit_fingerprint",
]
