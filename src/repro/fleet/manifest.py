"""The resumable sweep manifest: a JSONL checkpoint of unit outcomes.

One line per completed (or failed) unit, appended the moment the unit
finishes — never buffered — so a killed sweep loses at most the unit in
flight. Reads tolerate torn tails exactly like
:class:`repro.obs.journal.TelemetryJournal`: a line the killed writer
never finished is skipped, not fatal, and the unit it would have
recorded simply re-runs.

Resume contract (the driver's skip rule):

* a unit is **reusable** iff the manifest's latest record for its uid
  has ``ok: true`` and the *same fingerprint* the fresh plan computed —
  an edited unit (or a detector-version bump, which is folded into the
  fingerprint) re-runs even though its uid completed before;
* the latest record per uid wins, so a re-run simply appends over
  history (the file is an append-only log, not a table);
* failed records (``ok: false``) are never reused — a resume retries
  them.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterator, List, Optional


class SweepManifest:
    """Append-only JSONL checkpoint, torn-line tolerant on read."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()

    # -- write ---------------------------------------------------------------

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            # a killed writer can leave a torn, newline-less tail; start on
            # a fresh line so only the torn record is lost, not ours too
            if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                with open(self.path, "rb") as tail:
                    tail.seek(-1, os.SEEK_END)
                    if tail.read(1) != b"\n":
                        line = "\n" + line
            with open(self.path, "a") as handle:
                handle.write(line)
                handle.flush()

    def record_unit(
        self,
        uid: str,
        fingerprint: str,
        ok: bool,
        outcome: Optional[dict],
        meta: Optional[dict] = None,
    ) -> None:
        """The one record shape per finished unit. ``outcome`` is the
        deterministic result payload (what aggregation reads); ``meta``
        is wall-clock/placement telemetry excluded from parity."""
        record = {
            "kind": "unit",
            "uid": uid,
            "fingerprint": fingerprint,
            "ok": bool(ok),
            "outcome": outcome,
        }
        if meta:
            record["meta"] = meta
        self.append(record)

    # -- read ----------------------------------------------------------------

    def iter_records(self) -> Iterator[dict]:
        """All parseable records, file order; torn/corrupt lines skipped."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a killed writer
                if isinstance(record, dict):
                    yield record

    def latest_by_uid(self) -> Dict[str, dict]:
        """Last record per unit id (a re-run supersedes history)."""
        latest: Dict[str, dict] = {}
        for record in self.iter_records():
            if record.get("kind") == "unit" and isinstance(record.get("uid"), str):
                latest[record["uid"]] = record
        return latest

    def reusable_outcome(self, uid: str, fingerprint: str) -> Optional[dict]:
        """The checkpointed outcome for ``uid`` — only if it completed
        ok under the exact fingerprint the current plan computed."""
        record = self.latest_by_uid().get(uid)
        if (
            record is not None
            and record.get("ok") is True
            and record.get("fingerprint") == fingerprint
            and isinstance(record.get("outcome"), dict)
        ):
            return record["outcome"]
        return None

    def completed_uids(self) -> List[str]:
        return sorted(
            uid for uid, rec in self.latest_by_uid().items() if rec.get("ok") is True
        )


__all__ = ["SweepManifest"]
