"""repro.fleet — resumable corpus sweeps across N analysis daemons.

The fleet pipeline, module per stage:

* :mod:`repro.fleet.plan` — walk a corpus (or shard a fuzz campaign)
  into deterministic, content-fingerprinted work units;
* :mod:`repro.fleet.supervisor` — spawn/health-check/restart N
  ``repro serve`` daemons (thread or process backend);
* :mod:`repro.fleet.driver` — least-loaded dispatch with backpressure,
  straggler re-dispatch, and checkpointing; plus the serial reference
  sweep the parity suite compares against;
* :mod:`repro.fleet.manifest` — the torn-line-tolerant JSONL checkpoint
  a killed sweep resumes from;
* :mod:`repro.fleet.report` — deterministic aggregation (the byte-parity
  surface) and the separate telemetry rollup.
"""

from repro.fleet.driver import FleetResult, SweepKilled, run_sweep, serial_sweep
from repro.fleet.manifest import SweepManifest
from repro.fleet.plan import (
    SweepPlan,
    WorkUnit,
    materialize_bugset,
    plan_corpus,
    plan_fuzz,
    unit_fingerprint,
)
from repro.fleet.report import (
    FLEET_REPORT_KIND,
    aggregate,
    canonical_bytes,
    merge_telemetry,
    outcome_from_detect,
    outcome_from_fuzz,
    render,
)
from repro.fleet.supervisor import DaemonHandle, FleetSupervisor, SupervisorError

__all__ = [
    "DaemonHandle",
    "FLEET_REPORT_KIND",
    "FleetResult",
    "FleetSupervisor",
    "SupervisorError",
    "SweepKilled",
    "SweepManifest",
    "SweepPlan",
    "WorkUnit",
    "aggregate",
    "canonical_bytes",
    "materialize_bugset",
    "merge_telemetry",
    "outcome_from_detect",
    "outcome_from_fuzz",
    "plan_corpus",
    "plan_fuzz",
    "render",
    "run_sweep",
    "serial_sweep",
    "unit_fingerprint",
]
