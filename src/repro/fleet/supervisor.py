"""The fleet supervisor: N `repro serve` daemons, health-checked, restarted.

Two daemon backends behind one handle interface:

* ``thread`` — an in-process :class:`~repro.service.daemon.AnalysisService`
  behind a real TCP :class:`~repro.service.daemon.ServiceServer` on an
  ephemeral port, served from a thread. Fast to spawn (no interpreter
  fork), used by tests and benchmarks; still exercises the full wire
  protocol, admission, and scheduler.
* ``process`` — ``python -m repro serve <seed> --port 0`` as a child
  process, the bound port parsed from the daemon's banner line (the same
  line the CI smoke job parses). Used by the CLI and the fleet-smoke CI
  job; a killed child is detected by its dead socket and restarted.

Restart policy is :class:`repro.resilience.firewall.RetryPolicy`'s
bounded deterministic backoff. Every spawn (first or restart) passes the
``fleet-supervisor`` fault site, so chaos plans can starve a daemon of
restarts or kill the whole sweep at a deterministic point; restarts are
also counted and surfaced as supervisor incidents when the budget runs
out.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resilience.faultinject import maybe_fault
from repro.resilience.firewall import RetryPolicy
from repro.service.client import ServiceClient, ServiceConnectionError

#: banner printed by ``repro serve --port`` — the port source of truth
_BANNER = "repro-serve listening on "


class SupervisorError(RuntimeError):
    """The supervisor could not (re)establish its daemon fleet."""


@dataclass
class DaemonHandle:
    """One managed daemon: its address plus backend-specific state."""

    name: str
    mode: str  # 'thread' | 'process'
    host: str = "127.0.0.1"
    port: int = 0
    restarts: int = 0
    # thread backend
    service: object = None
    server: object = None
    thread: Optional[threading.Thread] = None
    # process backend
    proc: Optional[subprocess.Popen] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def alive(self) -> bool:
        if self.mode == "process":
            return self.proc is not None and self.proc.poll() is None
        return self.thread is not None and self.thread.is_alive()


class FleetSupervisor:
    """Spawns, health-checks, restarts, and tears down N daemons."""

    def __init__(
        self,
        count: int,
        seed_path: str,
        mode: str = "thread",
        service_options: Optional[dict] = None,
        workers: int = 1,
        max_queue: Optional[int] = None,
        tenant_max_queue: Optional[int] = None,
        restart_policy: Optional[RetryPolicy] = None,
        connect_timeout: float = 10.0,
        collector=None,
        _sleep=time.sleep,
    ):
        if count <= 0:
            raise ValueError("daemon count must be positive")
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown fleet mode {mode!r}")
        self.count = count
        self.seed_path = seed_path
        self.mode = mode
        self.service_options = dict(service_options or {})
        self.workers = workers
        self.max_queue = max_queue
        self.tenant_max_queue = tenant_max_queue
        self.restart_policy = restart_policy or RetryPolicy(
            max_retries=2, retry_all=True
        )
        self.connect_timeout = connect_timeout
        #: per-request socket timeout for driver clients; the driver sets
        #: this to its straggler budget so a stalled unit surfaces as a
        #: ServiceConnectionError and triggers restart + re-dispatch
        self.request_timeout: Optional[float] = None
        self.collector = collector
        self._sleep = _sleep
        self.daemons: Dict[str, DaemonHandle] = {}
        self.incidents: List[str] = []
        #: tenants known registered, per daemon (cleared on restart)
        self.registered: Dict[str, set] = {}
        self._clients: Dict[str, ServiceClient] = {}
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        """Spawn all daemons concurrently (a process daemon pays a full
        interpreter start; paying it N times serially would make fleet
        startup linear in width). Any daemon that exhausts its spawn
        retries fails the whole start — survivors are torn down."""
        names = [f"d{i}" for i in range(self.count)]
        failures: Dict[str, BaseException] = {}

        def spawn(name: str) -> None:
            try:
                self.daemons[name] = self._spawn_with_retries(name)
            except (SupervisorError, Exception) as exc:  # noqa: BLE001
                failures[name] = exc

        threads = [
            threading.Thread(target=spawn, args=(name,), name=f"spawn-{name}")
            for name in names
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            self.stop()
            name = sorted(failures)[0]
            exc = failures[name]
            if isinstance(exc, SupervisorError):
                raise exc
            raise SupervisorError(f"cannot start daemon {name}: {exc}") from exc
        # deterministic iteration order for the driver's worker naming
        self.daemons = {name: self.daemons[name] for name in names}
        return self

    def stop(self) -> None:
        for name, daemon in self.daemons.items():
            self._teardown(daemon)
            client = self._clients.pop(name, None)
            if client is not None:
                client.close()

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- health / restart ----------------------------------------------------

    def checkpoint(self, label: str) -> None:
        """A deterministic supervisor liveness point (after each unit's
        manifest record lands). Chaos plans kill the sweep here."""
        maybe_fault("fleet-supervisor", f"checkpoint:{label}")

    def client(self, name: str) -> ServiceClient:
        """A connected client for ``name`` (cached; one driver thread per
        daemon, so per-daemon caching needs no further locking)."""
        client = self._clients.get(name)
        if client is None:
            daemon = self.daemons[name]
            client = ServiceClient(
                daemon.host,
                daemon.port,
                timeout=self.request_timeout if self.request_timeout else 30.0,
                connect_timeout=self.connect_timeout,
            )
            self._clients[name] = client
        return client

    def restart(self, name: str, reason: str = "") -> None:
        """Replace a dead (or misbehaving) daemon with a fresh one."""
        daemon = self.daemons[name]
        self._teardown(daemon)
        client = self._clients.pop(name, None)
        if client is not None:
            client.close()
        self.registered.pop(name, None)
        restarts = daemon.restarts + 1
        if self.collector:
            self.collector.count("fleet.restarts")
        fresh = self._spawn_with_retries(name, reason=reason)
        fresh.restarts = restarts
        self.daemons[name] = fresh

    def restarts(self) -> int:
        return sum(d.restarts for d in self.daemons.values())

    def mark_registered(self, name: str, tenant: str) -> None:
        self.registered.setdefault(name, set()).add(tenant)

    def is_registered(self, name: str, tenant: str) -> bool:
        return tenant in self.registered.get(name, set())

    # -- spawning ------------------------------------------------------------

    def _spawn_with_retries(self, name: str, reason: str = "") -> DaemonHandle:
        attempt = 0
        while True:
            try:
                maybe_fault("fleet-supervisor", f"{name}:spawn")
                daemon = self._spawn(name)
                # liveness probe: the daemon answers before it counts
                probe = ServiceClient(
                    daemon.host, daemon.port, connect_timeout=self.connect_timeout
                )
                try:
                    probe.result("ping")
                finally:
                    probe.close()
                return daemon
            except (ServiceConnectionError, OSError, RuntimeError) as exc:
                if attempt >= self.restart_policy.retries_for(exc):
                    self.incidents.append(
                        f"daemon {name} failed to start after "
                        f"{attempt + 1} attempt(s): {exc}"
                    )
                    raise SupervisorError(
                        f"cannot (re)start daemon {name}: {exc}"
                    ) from exc
                self._sleep(self.restart_policy.backoff(attempt))
                attempt += 1

    def _spawn(self, name: str) -> DaemonHandle:
        if self.mode == "process":
            return self._spawn_process(name)
        return self._spawn_thread(name)

    def _spawn_thread(self, name: str) -> DaemonHandle:
        from repro.service.daemon import AnalysisService, serve_tcp

        service = AnalysisService(
            self.seed_path,
            workers=self.workers,
            max_queue=self.max_queue,
            tenant_max_queue=self.tenant_max_queue,
            **self.service_options,
        ).start()
        server = serve_tcp(service)
        host, port = server.address
        thread = threading.Thread(
            target=server.serve_until_shutdown, name=f"fleet-{name}", daemon=True
        )
        thread.start()
        return DaemonHandle(
            name=name,
            mode="thread",
            host=host,
            port=port,
            service=service,
            server=server,
            thread=thread,
        )

    def _spawn_process(self, name: str) -> DaemonHandle:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            self.seed_path,
            "--port",
            "0",
            "--workers",
            str(self.workers),
        ]
        if self.max_queue is not None:
            argv += ["--max-queue", str(self.max_queue)]
        if self.tenant_max_queue is not None:
            argv += ["--tenant-max-queue", str(self.tenant_max_queue)]
        for flag, key in (
            ("--jobs", "jobs"),
            ("--backend", "backend"),
            ("--cache-dir", "cache_dir"),
            ("--solver-mode", "solver_mode"),
        ):
            value = self.service_options.get(key)
            if value is not None:
                argv += [flag, str(value)]
        env = dict(os.environ)
        # chaos plans target the *driver* process; a child daemon
        # inheriting them would double-inject every fleet fault
        env.pop("REPRO_FAULTS", None)
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        assert proc.stdout is not None
        banner = proc.stdout.readline()
        if not banner.startswith(_BANNER):
            proc.kill()
            raise RuntimeError(
                f"daemon {name} printed no listen banner (got {banner!r})"
            )
        host, _, port = banner[len(_BANNER):].strip().rpartition(":")
        return DaemonHandle(
            name=name, mode="process", host=host, port=int(port), proc=proc
        )

    # -- teardown ------------------------------------------------------------

    def _teardown(self, daemon: DaemonHandle) -> None:
        if daemon.mode == "process":
            if daemon.proc is not None and daemon.proc.poll() is None:
                daemon.proc.terminate()
                try:
                    daemon.proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    daemon.proc.kill()
                    daemon.proc.wait(timeout=5)
            return
        if daemon.server is not None:
            try:
                daemon.server.begin_shutdown()
            except Exception:
                pass
            try:
                daemon.server.shutdown()
            except Exception:
                pass
        if daemon.thread is not None:
            daemon.thread.join(timeout=5)

    def kill(self, name: str) -> None:
        """Hard-kill a daemon (no graceful shutdown) — the chaos path."""
        daemon = self.daemons[name]
        if daemon.mode == "process":
            if daemon.proc is not None and daemon.proc.poll() is None:
                daemon.proc.kill()
                daemon.proc.wait(timeout=5)
        else:
            self._teardown(daemon)


__all__ = ["DaemonHandle", "FleetSupervisor", "SupervisorError"]
