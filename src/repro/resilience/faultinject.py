"""Deterministic fault injection for the analysis pipeline.

Every pipeline stage carries a named injection site (the call is a no-op
unless a plan is active, so the hot path pays one global read):

========== ==========================================================
site       where it fires
========== ==========================================================
parse      :func:`repro.golang.parser.parse_file`
ssa-build  :func:`repro.ssa.builder.build_program` (after parse)
encode     per suspicious group, before constraint encoding
solve      per suspicious group, before the decision procedure
cache-read :meth:`repro.engine.cache.ResultCache.get`
cache-write :meth:`repro.engine.cache.ResultCache._store`
fix-apply  per GFix strategy attempt
validate   :func:`repro.fixer.validate.validate_patch`
service-request  per analysis-daemon request (:mod:`repro.service`)
service-admission  per admission decision, before a request is queued
service-scheduler  per dispatched request, as a worker picks it up
fuzz-program  per generated program in a fuzz campaign (:mod:`repro.fuzz`)
fleet-supervisor  per daemon spawn and per post-unit checkpoint (:mod:`repro.fleet`)
fleet-dispatch  per unit dispatch, before the request leaves the driver
========== ==========================================================

A :class:`FaultPlan` is a list of rules parsed from a compact spec
(the ``REPRO_FAULTS`` env var or the ``--faults`` CLI knob)::

    solve:raise                  raise at every solve call
    solve@alpha:raise            ... only where the unit label contains 'alpha'
    solve:raise:n=3              ... only on the 3rd matching call
    parse:raise-transient:times=1  raise once, classified transient (retryable)
    cache-read:corrupt           corrupted-pickle behaviour instead of raising
    encode:stall:ms=25           stall 25 ms at encode
    solve:raise:p=0.5            seeded coin flip per call (REPRO_FAULT_SEED)

Rules are ``;``-separated. Call counts are kept **per (rule, label)** —
each analysis unit counts its own calls — so a plan degrades the same
shard whether the engine runs serially or with ``jobs=4`` (the chaos
suite's parity matrix depends on this). Probabilistic rules hash
``(seed, site, label, count)`` instead of drawing from shared RNG state,
which keeps them order-independent too.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: every named injection site, in pipeline order
FAULT_SITES: Tuple[str, ...] = (
    "parse",
    "ssa-build",
    "encode",
    "solve",
    "cache-read",
    "cache-write",
    "fix-apply",
    "validate",
    "service-request",
    "service-admission",
    "service-scheduler",
    "fuzz-program",
    "fleet-supervisor",
    "fleet-dispatch",
)

_MODES = ("raise", "raise-transient", "corrupt", "stall")

#: sentinel returned by :meth:`FaultPlan.fire` when the caller should
#: corrupt its payload instead of crashing
CORRUPT = "corrupt"


class FaultInjected(RuntimeError):
    """The injected failure; carries its site so incident records name the
    true origin even when a coarser firewall catches it."""

    def __init__(self, site: str, label: str = "", transient: bool = False):
        super().__init__(f"injected fault at {site}" + (f" [{label}]" if label else ""))
        self.site = site
        self.label = label
        self.transient = transient


@dataclass
class FaultRule:
    """One parsed rule of a plan."""

    site: str
    label: str = ""  # substring match against the call-site label; '' matches all
    mode: str = "raise"  # 'raise' | 'raise-transient' | 'corrupt' | 'stall'
    n: Optional[int] = None  # fire only on the nth matching call (1-based)
    times: Optional[int] = None  # fire at most this many times
    ms: float = 0.0  # stall duration
    p: Optional[float] = None  # seeded per-call probability

    def render(self) -> str:
        parts = [self.site + (f"@{self.label}" if self.label else ""), self.mode]
        if self.n is not None:
            parts.append(f"n={self.n}")
        if self.times is not None:
            parts.append(f"times={self.times}")
        if self.ms:
            parts.append(f"ms={self.ms:g}")
        if self.p is not None:
            parts.append(f"p={self.p:g}")
        return ":".join(parts)


def _parse_rule(text: str) -> FaultRule:
    tokens = [t.strip() for t in text.strip().split(":") if t.strip()]
    if not tokens:
        raise ValueError("empty fault rule")
    head = tokens[0]
    site, _, label = head.partition("@")
    if site not in FAULT_SITES:
        raise ValueError(
            f"unknown fault site {site!r}; valid sites: {', '.join(FAULT_SITES)}"
        )
    rule = FaultRule(site=site, label=label)
    rest = tokens[1:]
    if rest and "=" not in rest[0]:
        rule.mode = rest.pop(0)
        if rule.mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {rule.mode!r}; valid modes: {', '.join(_MODES)}"
            )
    for option in rest:
        key, _, value = option.partition("=")
        if not value:
            raise ValueError(f"malformed fault option {option!r} (want key=value)")
        if key == "n":
            rule.n = int(value)
        elif key == "times":
            rule.times = int(value)
        elif key == "ms":
            rule.ms = float(value)
        elif key == "p":
            rule.p = float(value)
        else:
            raise ValueError(f"unknown fault option {key!r} (n/times/ms/p)")
    return rule


class FaultPlan:
    """A set of rules plus the per-(rule, label) call counters."""

    def __init__(self, rules: List[FaultRule], seed: int = 0):
        self.rules = rules
        self.seed = seed
        self._counts: Dict[Tuple[int, str], int] = {}
        self._fired: Dict[int, int] = {}
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        rules = [_parse_rule(part) for part in spec.split(";") if part.strip()]
        if not rules:
            raise ValueError(f"fault spec {spec!r} contains no rules")
        return cls(rules, seed=seed)

    def render(self) -> str:
        return ";".join(rule.render() for rule in self.rules)

    def _coin(self, rule_index: int, site: str, label: str, count: int, p: float) -> bool:
        payload = f"{self.seed}:{rule_index}:{site}:{label}:{count}"
        digest = hashlib.sha256(payload.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < p

    def fire(self, site: str, label: str = "") -> Optional[str]:
        """Evaluate every rule against one call; raises, stalls, or returns
        :data:`CORRUPT` when the caller should corrupt its own payload."""
        action: Optional[str] = None
        stall_ms = 0.0
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.label and rule.label not in label:
                continue
            with self._lock:
                key = (index, label)
                count = self._counts[key] = self._counts.get(key, 0) + 1
                if rule.n is not None and count != rule.n:
                    continue
                if rule.times is not None and self._fired.get(index, 0) >= rule.times:
                    continue
                if rule.p is not None and not self._coin(index, site, label, count, rule.p):
                    continue
                self._fired[index] = self._fired.get(index, 0) + 1
            if rule.mode == "stall":
                stall_ms = max(stall_ms, rule.ms)
            elif rule.mode == "corrupt":
                action = CORRUPT
            else:
                raise FaultInjected(
                    site, label, transient=rule.mode == "raise-transient"
                )
        if stall_ms:
            time.sleep(stall_ms / 1000.0)
        return action


# -- activation --------------------------------------------------------------

#: the process-wide active plan; forked pool workers inherit it, threads
#: share it (counters are lock-protected)
_PLAN: Optional[FaultPlan] = None


def activate(plan: Optional[FaultPlan]) -> None:
    global _PLAN
    _PLAN = plan


def deactivate() -> None:
    activate(None)


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


@contextmanager
def injected(spec_or_plan, seed: int = 0) -> Iterator[FaultPlan]:
    """Scoped activation — the chaos suite's workhorse::

        with injected("solve@alpha:raise"):
            result = run_gcatch(program, jobs=4)
    """
    plan = (
        spec_or_plan
        if isinstance(spec_or_plan, FaultPlan)
        else FaultPlan.parse(spec_or_plan, seed=seed)
    )
    previous = _PLAN
    activate(plan)
    try:
        yield plan
    finally:
        activate(previous)


def maybe_fault(site: str, label: str = "") -> bool:
    """The per-site hook every pipeline stage calls. No-op (one global
    read) without an active plan. Returns True when the caller should
    corrupt its payload; raises :class:`FaultInjected` for raise rules."""
    plan = _PLAN
    if plan is None:
        return False
    return plan.fire(site, label) == CORRUPT


def plan_from_env() -> Optional[FaultPlan]:
    """A plan from ``REPRO_FAULTS`` (seeded by ``REPRO_FAULT_SEED``), else None."""
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        return None
    try:
        seed = int(os.environ.get("REPRO_FAULT_SEED", "") or 0)
    except ValueError:
        seed = 0
    return FaultPlan.parse(spec, seed=seed)
