"""Structured crash records and run-health classification.

A crash that the firewall intercepts becomes one :class:`Incident` — a
plain-data record of *where* the pipeline degraded (the firewall site and
the unit's label), *what* was raised (exception class, message, a stable
traceback digest for dedup across runs) and *how hard* the firewall tried
(attempt count, transient classification). Incidents are picklable, so
they cross the fork-pool boundary intact, and JSON-serializable, so they
ride in the ``repro.obs/2`` stats payload as the optional ``incidents``
block.

Run health is a three-valued verdict over one run's incidents:

* ``ok`` — no incidents; every analysis unit completed;
* ``degraded`` — some units crashed or were retried, but the run produced
  results for every other unit (the default operating mode);
* ``failed`` — nothing survived: every unit crashed, or a pipeline-level
  failure (parse, SSA build, detector init) prevented analysis entirely.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, field
from typing import List, Optional

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
HEALTH_FAILED = "failed"


@dataclass
class Incident:
    """One intercepted crash, degraded into data."""

    site: str  # firewall/injection site, e.g. 'solve', 'shard', 'cache-read'
    label: str  # the unit: primitive repr, checker name, strategy, filename
    exception: str  # exception class name
    message: str  # str(exc), truncated
    digest: str  # stable traceback digest (dedup key across runs)
    attempts: int = 1  # how many times the firewall ran the unit
    transient: bool = False  # classified retryable
    frames: List[str] = field(default_factory=list)  # summarized traceback

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "label": self.label,
            "exception": self.exception,
            "message": self.message,
            "digest": self.digest,
            "attempts": self.attempts,
            "transient": self.transient,
        }

    def render(self) -> str:
        retry = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return (
            f"[{self.site}] {self.label or '-'}: {self.exception}: "
            f"{self.message} (digest {self.digest}{retry})"
        )


def _digest_of(exc: BaseException, frames: List[str]) -> str:
    """A short, stable identity for one crash shape: exception class plus
    the in-repo frame summary — equal crashes collapse to equal digests
    regardless of timing, pids or memory addresses."""
    payload = "\n".join([type(exc).__name__, *frames])
    return hashlib.sha256(payload.encode("utf-8", "replace")).hexdigest()[:12]


def make_incident(
    site: str,
    label: str,
    exc: BaseException,
    attempts: int = 1,
    transient: bool = False,
) -> Incident:
    """Build an :class:`Incident` from a live exception.

    When the exception carries its own injection ``site`` (a
    :class:`repro.resilience.faultinject.FaultInjected`), that names the
    incident — the firewall site is only the fallback — so a fault
    injected at ``solve`` is reported at ``solve`` even though the
    firewall that caught it wraps the whole shard.
    """
    frames = [
        f"{frame.name}@{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}"
        for frame in traceback.extract_tb(exc.__traceback__)[-5:]
    ]
    message = str(exc)
    if len(message) > 200:
        message = message[:197] + "..."
    return Incident(
        site=getattr(exc, "site", None) or site,
        label=label,
        exception=type(exc).__name__,
        message=message,
        digest=_digest_of(exc, frames),
        attempts=attempts,
        transient=transient,
        frames=frames,
    )


def overall_health(
    incidents: List[Incident],
    units_total: Optional[int] = None,
    units_failed: int = 0,
) -> str:
    """Classify a run: ``ok`` / ``degraded`` / ``failed``.

    ``units_total``/``units_failed`` count the run's isolation units
    (engine shards, or serial channels + checkers). A run with incidents
    but surviving units is ``degraded``; a run where every unit failed —
    or that had incidents while producing no units at all (a
    pipeline-level crash before sharding) — is ``failed``.
    """
    if not incidents:
        return HEALTH_OK
    if units_total is not None and units_total > 0 and units_failed >= units_total:
        return HEALTH_FAILED
    if not units_total:
        return HEALTH_FAILED
    return HEALTH_DEGRADED


def incidents_to_json(incidents: List[Incident]) -> List[dict]:
    return [incident.to_json() for incident in incidents]
