"""repro.resilience — crash isolation, bounded retries, fault injection.

The paper's evaluation only exists because GCatch survives real-world
codebases: it runs under per-package time budgets and keeps going when an
individual analysis blows up. This package is that survival layer for the
reproduction:

* :mod:`repro.resilience.incidents` — the structured :class:`Incident`
  record a crash degrades into, plus run-health classification;
* :mod:`repro.resilience.firewall` — the exception firewall that converts
  crashes into incidents and applies bounded, deterministic retries to
  transient failure classes;
* :mod:`repro.resilience.faultinject` — named injection sites threaded
  through every pipeline stage, activated by a seeded :class:`FaultPlan`
  (``REPRO_FAULTS``), which the chaos suite uses to prove every
  degradation path actually works.
"""

from repro.resilience.faultinject import (
    CORRUPT,
    FAULT_SITES,
    FaultInjected,
    FaultPlan,
    FaultRule,
    activate,
    active_plan,
    deactivate,
    injected,
    maybe_fault,
    plan_from_env,
)
from repro.resilience.firewall import Firewall, Guarded, RetryPolicy, is_transient
from repro.resilience.incidents import (
    HEALTH_DEGRADED,
    HEALTH_FAILED,
    HEALTH_OK,
    Incident,
    incidents_to_json,
    make_incident,
    overall_health,
)

__all__ = [
    "CORRUPT",
    "FAULT_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "Firewall",
    "Guarded",
    "HEALTH_DEGRADED",
    "HEALTH_FAILED",
    "HEALTH_OK",
    "Incident",
    "RetryPolicy",
    "activate",
    "active_plan",
    "deactivate",
    "incidents_to_json",
    "injected",
    "is_transient",
    "make_incident",
    "maybe_fault",
    "overall_health",
    "plan_from_env",
]
