"""The exception firewall: crashes become incidents, transient ones retry.

One :class:`Firewall` guards one run. Call :meth:`Firewall.call` around an
isolation unit (an engine shard, a serial per-channel analysis, a cache
probe, a GFix strategy) and a crash inside it is converted into a
structured :class:`~repro.resilience.incidents.Incident` instead of
propagating — completed units are always kept.

Retries are bounded and deterministic: transient failure classes (pool
worker death, cache I/O, injected-transient faults) are re-attempted up
to ``RetryPolicy.max_retries`` times with a fixed exponential backoff
schedule (``backoff_base * 2**attempt`` seconds — no jitter, so runs are
reproducible). Everything else fails fast into an incident.

Observability counters: ``resilience.incident`` (one per final failure),
``resilience.retry`` (one per re-attempt) and ``resilience.gave-up`` (one
per unit whose retries were exhausted).
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.obs import NULL
from repro.resilience.faultinject import FaultInjected
from repro.resilience.incidents import Incident, make_incident

try:  # BrokenProcessPool signals fork-pool worker death
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - always present on CPython 3.8+
    class BrokenProcessPool(Exception):
        pass


#: exception classes retried by default: I/O flakiness and pool death
TRANSIENT_TYPES = (OSError, EOFError, ConnectionError, pickle.PickleError, BrokenProcessPool)


def is_transient(exc: BaseException) -> bool:
    """Is this failure class worth a bounded retry?"""
    if isinstance(exc, FaultInjected):
        return exc.transient
    return isinstance(exc, TRANSIENT_TYPES)


@dataclass
class RetryPolicy:
    """Bounded, deterministic retry configuration."""

    max_retries: int = 1
    backoff_base: float = 0.0  # seconds; attempt k waits base * 2**k
    retry_all: bool = False  # retry every exception class, not just transient

    def retries_for(self, exc: BaseException) -> int:
        if self.retry_all or is_transient(exc):
            return max(0, self.max_retries)
        return 0

    def backoff(self, attempt: int) -> float:
        return self.backoff_base * (2**attempt)


@dataclass
class Guarded:
    """Outcome of one firewalled call: the value or the incident."""

    ok: bool
    value: Any = None
    incident: Optional[Incident] = None


class Firewall:
    """Run-scoped crash isolation with incident accounting.

    Thread-safe: engine shards running across a pool report into one
    firewall. ``incidents`` accumulates in completion order; callers that
    need deterministic ordering sort by their own unit index.
    """

    def __init__(self, collector=None, policy: Optional[RetryPolicy] = None):
        self.collector = collector or NULL
        self.policy = policy or RetryPolicy()
        self.incidents: List[Incident] = []
        self._lock = threading.Lock()

    def record(self, incident: Incident) -> None:
        """Admit an externally-built incident (e.g. shipped back from a
        forked worker) into this run's ledger."""
        with self._lock:
            self.incidents.append(incident)
        if self.collector:
            self.collector.count("resilience.incident")

    def call(
        self,
        fn: Callable[[], Any],
        site: str,
        label: str = "",
        reraise: tuple = (),
        record: bool = True,
    ) -> Guarded:
        """Run ``fn`` behind the firewall.

        ``reraise`` names exception types that must propagate (control-flow
        exceptions like ``BudgetExceeded`` that the caller handles itself).
        ``KeyboardInterrupt``/``SystemExit`` always propagate.
        ``record=False`` builds the incident without admitting it to the
        ledger — the engine defers recording to its reassembly loop so
        incidents land in deterministic shard order (and exactly once,
        whether the shard ran in-process or in a forked worker).
        """
        attempt = 0
        while True:
            try:
                return Guarded(ok=True, value=fn())
            except reraise:
                raise
            except Exception as exc:  # noqa: BLE001 - the firewall's whole job
                retries = self.policy.retries_for(exc)
                if attempt < retries:
                    if self.collector:
                        self.collector.count("resilience.retry")
                    delay = self.policy.backoff(attempt)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                incident = make_incident(
                    site, label, exc, attempts=attempt + 1, transient=is_transient(exc)
                )
                if record:
                    self.record(incident)
                if self.collector and attempt > 0:
                    self.collector.count("resilience.gave-up")
                return Guarded(ok=False, incident=incident)
