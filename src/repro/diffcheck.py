"""Static↔dynamic differential testing of the detector.

GCatch's BMOC detector (the static oracle) and the systematic schedule
explorer (the dynamic oracle) both claim to know whether a program can
leak a goroutine. Neither is trusted alone: the static analysis has
documented soundness holes (the corpus ``Miss*`` cases), and the dynamic
search is bounded. Running both over every program of the 49-bug corpus
and *diffing their verdicts* turns each one into a test of the other:

* **agreement** — both say "bug" (a leaking schedule was exhibited for a
  static report) or both say "clean" (no report, and the exhaustive
  search proved leak-freedom);
* **static-only** — GCatch reports a bug but no schedule within the bound
  leaks: a false-positive candidate for the detector (or an under-explored
  program, when the search was truncated);
* **dynamic-only** — the explorer exhibits a leaking schedule GCatch
  missed: a false-negative candidate. For corpus ``Miss*`` cases these are
  *expected* and each carries the corpus' documented ``miss_reason``;
  a dynamic-only leak with no such explanation is a detector regression;
* **divergence** — the program never terminates within the step budget
  (e.g. a livelock guarded by a dynamic value), so the dynamic oracle
  cannot issue a verdict either way.

``run_diffcheck`` sweeps the corpus and classifies every case;
:class:`DifferentialReport.unexplained` is the regression signal the
benchmark suite asserts empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.bugset import BugCase, build_bug_set
from repro.detector.gcatch import run_gcatch
from repro.runtime.explorer import Exploration, explore
from repro.ssa.builder import build_program

AGREE_BUG = "agree-bug"
AGREE_CLEAN = "agree-clean"
STATIC_ONLY = "static-only"
DYNAMIC_ONLY = "dynamic-only"
DIVERGENCE = "divergence"

#: every classification a reconciled verdict can carry, in report order
CLASSIFICATIONS = (AGREE_BUG, AGREE_CLEAN, STATIC_ONLY, DYNAMIC_ONLY, DIVERGENCE)


@dataclass(frozen=True)
class Explanations:
    """Documented causes that can explain an oracle disagreement.

    The three disagreement classes have *different* legitimate causes, so
    an explanation only discharges the class it is declared for: a corpus
    ``miss_reason`` (a known static false negative) explains a
    ``dynamic-only`` leak but never a ``static-only`` report, while a
    seeded FP template (a known static false positive) explains the
    reverse. Anything not covered stays an unexplained finding.
    """

    dynamic_only: Tuple[str, ...] = ()
    static_only: Tuple[str, ...] = ()
    divergence: Tuple[str, ...] = ()

    @staticmethod
    def for_case(case: BugCase) -> "Explanations":
        """A corpus case's miss_reason explains missed leaks/divergence."""
        miss = (case.miss_reason,) if case.miss_reason else ()
        return Explanations(dynamic_only=miss, divergence=miss)


def dynamic_verdict(exploration: Exploration) -> str:
    """Collapse an exploration into the dynamic oracle's verdict."""
    if exploration.any_leak:
        return "leak"
    if exploration.step_limited_runs:
        return "divergence"
    return "clean"


def classify_oracles(
    static_bug: bool,
    exploration: Exploration,
    explanations: Explanations = Explanations(),
) -> Tuple[str, str, bool, str]:
    """Reconcile the two oracles' verdicts on one program.

    Returns ``(dynamic, classification, explained, explanation)`` — the
    shared core of :func:`diff_case` (corpus sweep) and the fuzz-campaign
    triage (:mod:`repro.fuzz.campaign`).
    """
    dynamic = dynamic_verdict(exploration)
    if dynamic == "leak":
        if static_bug:
            return dynamic, AGREE_BUG, True, ""
        # a leak the static analysis missed: fine iff a documented reason
        # places this shape outside BMOC's model
        cause = "; ".join(explanations.dynamic_only)
        return dynamic, DYNAMIC_ONLY, bool(cause), cause
    if dynamic == "divergence":
        cause = "; ".join(explanations.divergence)
        return dynamic, DIVERGENCE, bool(cause), cause
    # dynamically clean
    if static_bug:
        if not exploration.complete:
            # bounded search proves nothing; flag it but name the bound
            return dynamic, STATIC_ONLY, True, "search truncated by bound"
        cause = "; ".join(explanations.static_only)
        if cause:
            return dynamic, STATIC_ONLY, True, cause
        return dynamic, STATIC_ONLY, False, "exhaustive search found no leak"
    return dynamic, AGREE_CLEAN, True, ""


def aggregate_verdicts(verdicts: Sequence["CaseVerdict"]) -> Dict[str, object]:
    """Campaign/corpus-level rollup of a batch of reconciled verdicts."""
    by_class = {c: 0 for c in CLASSIFICATIONS}
    unexplained = []
    for v in verdicts:
        by_class[v.classification] = by_class.get(v.classification, 0) + 1
        if v.classification in (STATIC_ONLY, DYNAMIC_ONLY, DIVERGENCE) and not v.explained:
            unexplained.append(v.case_id)
    agreed = by_class[AGREE_BUG] + by_class[AGREE_CLEAN]
    return {
        "total": len(verdicts),
        "by_class": by_class,
        "agreement_rate": (agreed / len(verdicts)) if verdicts else 1.0,
        "unexplained": unexplained,
    }


@dataclass
class CaseVerdict:
    """Both oracles' verdicts on one corpus program, reconciled."""

    case_id: str
    static_bug: bool
    static_reports: int
    dynamic: str  # 'leak' | 'clean' | 'divergence'
    classification: str
    explained: bool
    explanation: str = ""
    runs: int = 0
    complete: bool = False
    distinct_outcomes: int = 0
    leak_schedules: int = 0

    def row(self) -> List[str]:
        return [
            self.case_id,
            "bug" if self.static_bug else "clean",
            self.dynamic,
            f"{self.runs}{'' if self.complete else '+'}",
            str(self.distinct_outcomes),
            self.classification,
            self.explanation or ("-" if self.explained else "UNEXPLAINED"),
        ]

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "static_bug": self.static_bug,
            "static_reports": self.static_reports,
            "dynamic": self.dynamic,
            "classification": self.classification,
            "explained": self.explained,
            "explanation": self.explanation,
            "runs": self.runs,
            "complete": self.complete,
            "distinct_outcomes": self.distinct_outcomes,
            "leak_schedules": self.leak_schedules,
        }


@dataclass
class DifferentialReport:
    """Corpus-wide agreement between the static and dynamic oracles."""

    verdicts: List[CaseVerdict] = field(default_factory=list)
    max_runs: int = 0
    max_steps: int = 0
    trace: Optional[object] = None  # the sweep's repro.obs.Collector, if any

    def by_class(self, classification: str) -> List[CaseVerdict]:
        return [v for v in self.verdicts if v.classification == classification]

    def unexplained(self) -> List[CaseVerdict]:
        """Disagreements with no documented cause — the regression signal."""
        return [
            v
            for v in self.verdicts
            if v.classification in (STATIC_ONLY, DYNAMIC_ONLY, DIVERGENCE) and not v.explained
        ]

    @property
    def agreement_rate(self) -> float:
        if not self.verdicts:
            return 1.0
        agreed = len(self.by_class(AGREE_BUG)) + len(self.by_class(AGREE_CLEAN))
        return agreed / len(self.verdicts)

    def render(self) -> str:
        from repro.report.differential import render_differential

        return render_differential(self)

    def to_json(self) -> dict:
        """Machine-readable report (schema shared with ``repro.obs.stats``)."""
        from repro.obs import SCHEMA, snapshot

        payload: dict = {
            "schema": SCHEMA,
            "kind": "diffcheck",
            "max_runs": self.max_runs,
            "max_steps": self.max_steps,
            "agreement_rate": self.agreement_rate,
            "by_class": aggregate_verdicts(self.verdicts)["by_class"],
            "unexplained": [v.case_id for v in self.unexplained()],
            "verdicts": [v.to_dict() for v in self.verdicts],
        }
        if self.trace:
            payload["stats"] = snapshot(self.trace)
        return payload


def diff_case(
    case: BugCase,
    max_runs: int = 512,
    max_steps: int = 20_000,
    collector=None,
) -> CaseVerdict:
    """Run both oracles on one corpus case and reconcile their verdicts."""
    program = build_program(case.source, case.case_id + ".go", collector=collector)
    static = run_gcatch(program, collector=collector)
    static_bug = bool(static.bmoc.reports)
    exploration = explore(
        program,
        entry=case.driver or "main",
        max_runs=max_runs,
        max_steps=max_steps,
        collector=collector,
    )
    return _classify(case, static_bug, len(static.bmoc.reports), exploration)


def _classify(
    case: BugCase,
    static_bug: bool,
    static_reports: int,
    exploration: Exploration,
) -> CaseVerdict:
    dynamic, classification, explained, explanation = classify_oracles(
        static_bug, exploration, Explanations.for_case(case)
    )
    return CaseVerdict(
        case_id=case.case_id,
        static_bug=static_bug,
        static_reports=static_reports,
        dynamic=dynamic,
        classification=classification,
        explained=explained,
        explanation=explanation,
        runs=exploration.runs,
        complete=exploration.complete,
        distinct_outcomes=len(exploration.outcomes),
        leak_schedules=len(exploration.leaking()),
    )


def run_diffcheck(
    cases: Optional[Sequence[BugCase]] = None,
    max_runs: int = 512,
    max_steps: int = 20_000,
    collector=None,
) -> DifferentialReport:
    """Diff the two oracles over the whole corpus (or a subset)."""
    report = DifferentialReport(max_runs=max_runs, max_steps=max_steps)
    for case in cases if cases is not None else build_bug_set():
        report.verdicts.append(
            diff_case(case, max_runs=max_runs, max_steps=max_steps, collector=collector)
        )
    if collector:
        report.trace = collector
    return report
