"""Reproduction of "Automatically Detecting and Fixing Concurrency Bugs in
Go Software Systems" (GCatch + GFix, ASPLOS 2021) on a pure-Python stack.

Public entry points:

* :class:`repro.Project` — load a MiniGo program, detect, fix, execute;
* :func:`repro.detect_and_fix` — one-shot pipeline;
* :func:`repro.run_gcatch` / :func:`repro.detect_bmoc` — the detector;
* :class:`repro.GFix` — the fixer;
* :func:`repro.build_program` — the MiniGo frontend + IR;
* :func:`repro.run_program` — the runtime/testbed.
"""

from repro.api import Project, detect_and_fix
from repro.detector.bmoc import detect_bmoc
from repro.detector.gcatch import run_gcatch
from repro.fixer.dispatcher import GFix, fix_bugs
from repro.runtime.scheduler import explore_schedules, run_program
from repro.ssa.builder import build_program

__version__ = "1.0.0"

__all__ = [
    "Project",
    "detect_and_fix",
    "detect_bmoc",
    "run_gcatch",
    "GFix",
    "fix_bugs",
    "build_program",
    "run_program",
    "explore_schedules",
    "__version__",
]
