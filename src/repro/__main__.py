"""Module entry point: ``python -m repro ...``.

Exit-code propagation matters here: the daemon/client subcommands promise
the same codes as one-shot ``detect`` (0 clean, 1 findings, 3 exhausted
budgets, 4 resilience failures, 2 usage errors), and scripts — the CI
smoke job included — branch on them. ``run()`` therefore coerces whatever
``main`` hands back into a real process exit code instead of trusting
``sys.exit``'s permissive argument handling (``sys.exit(None)`` is 0 but
``sys.exit("3")`` would be 1-with-a-printed-string), and maps Ctrl-C —
the normal way to stop ``serve``/``watch`` — to the conventional 130
rather than a KeyboardInterrupt traceback.
"""

import sys

from repro.cli import main


def run() -> int:
    try:
        code = main()
    except KeyboardInterrupt:
        return 130
    if code is None:
        return 0
    if isinstance(code, (int, bool)):
        return int(code)
    try:
        return int(code)
    except (TypeError, ValueError):
        return 1


if __name__ == "__main__":
    sys.exit(run())
