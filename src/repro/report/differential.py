"""Rendering for the static↔dynamic differential study (see repro.diffcheck).

The table lists one row per corpus case — static verdict, dynamic verdict,
search effort, reconciled classification — followed by a summary block with
the agreement rate and a count of unexplained disagreements (which the
benchmark suite requires to be zero).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.report.table import render_simple

if TYPE_CHECKING:  # pragma: no cover
    from repro.diffcheck import DifferentialReport

HEADERS = ["Case", "Static", "Dynamic", "Runs", "Outcomes", "Class", "Explanation"]


def render_differential(report: "DifferentialReport") -> str:
    from repro import diffcheck

    table = render_simple(
        HEADERS,
        [v.row() for v in report.verdicts],
        title=(
            "Static vs dynamic oracle differential "
            f"(bound: {report.max_runs} runs x {report.max_steps} steps; "
            "Runs '+' = search truncated)"
        ),
    )
    counts = {
        "agree (bug)": len(report.by_class(diffcheck.AGREE_BUG)),
        "agree (clean)": len(report.by_class(diffcheck.AGREE_CLEAN)),
        "static-only": len(report.by_class(diffcheck.STATIC_ONLY)),
        "dynamic-only": len(report.by_class(diffcheck.DYNAMIC_ONLY)),
        "divergence": len(report.by_class(diffcheck.DIVERGENCE)),
    }
    summary = ", ".join(f"{name}: {n}" for name, n in counts.items() if n)
    lines = [
        table,
        "",
        f"{len(report.verdicts)} case(s) — {summary}",
        f"agreement rate: {report.agreement_rate:.0%}; "
        f"unexplained disagreements: {len(report.unexplained())}",
    ]
    return "\n".join(lines)
