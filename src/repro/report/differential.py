"""Rendering for the static↔dynamic differential study (see repro.diffcheck).

The table lists one row per corpus case — static verdict, dynamic verdict,
search effort, reconciled classification — followed by a summary block with
the agreement rate and a count of unexplained disagreements (which the
benchmark suite requires to be zero).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.report.table import render_simple

if TYPE_CHECKING:  # pragma: no cover
    from repro.diffcheck import DifferentialReport
    from repro.fuzz.campaign import CampaignReport

HEADERS = ["Case", "Static", "Dynamic", "Runs", "Outcomes", "Class", "Explanation"]

CAMPAIGN_HEADERS = ["Program", "Motifs", "Static", "Dynamic", "Runs", "Bucket", "Explanation"]


def render_differential(report: "DifferentialReport") -> str:
    from repro import diffcheck

    table = render_simple(
        HEADERS,
        [v.row() for v in report.verdicts],
        title=(
            "Static vs dynamic oracle differential "
            f"(bound: {report.max_runs} runs x {report.max_steps} steps; "
            "Runs '+' = search truncated)"
        ),
    )
    counts = {
        "agree (bug)": len(report.by_class(diffcheck.AGREE_BUG)),
        "agree (clean)": len(report.by_class(diffcheck.AGREE_CLEAN)),
        "static-only": len(report.by_class(diffcheck.STATIC_ONLY)),
        "dynamic-only": len(report.by_class(diffcheck.DYNAMIC_ONLY)),
        "divergence": len(report.by_class(diffcheck.DIVERGENCE)),
    }
    summary = ", ".join(f"{name}: {n}" for name, n in counts.items() if n)
    lines = [
        table,
        "",
        f"{len(report.verdicts)} case(s) — {summary}",
        f"agreement rate: {report.agreement_rate:.0%}; "
        f"unexplained disagreements: {len(report.unexplained())}",
    ]
    return "\n".join(lines)


def render_campaign(report: "CampaignReport") -> str:
    """The fuzz-campaign triage table + bucket summary.

    Clean programs (agree bucket) are summarized, not listed — a 10k
    campaign's interesting rows are the disagreements and crashes.
    """
    interesting = [t for t in report.triages if t.bucket != "agree"]
    rows = [
        [
            t.name,
            ",".join(t.templates) or "-",
            f"{t.static_reports}" if t.classification else "?",
            t.dynamic or "?",
            f"{t.runs}{'' if t.complete else '+'}" if t.classification else "-",
            t.bucket,
            t.explanation or t.error or ("-" if t.explained else "UNEXPLAINED"),
        ]
        for t in interesting
    ]
    config = report.config
    parts = []
    if rows:
        parts.append(
            render_simple(
                CAMPAIGN_HEADERS,
                rows,
                title=(
                    f"Fuzz campaign seed={report.seed} count={report.count} "
                    f"(bound: {config.max_runs} runs x {config.max_steps} steps, "
                    f"{config.max_total_steps} total; Runs '+' = truncated)"
                ),
            )
        )
        parts.append("")
    buckets = report.buckets()
    summary = ", ".join(f"{name}: {n}" for name, n in buckets.items() if n)
    parts.append(
        f"{len(report.triages)} program(s) in {report.elapsed_seconds:.1f}s — {summary}"
    )
    parts.append(
        f"agreement rate: {report.agreement_rate:.0%}; "
        f"unexplained: {len(report.unexplained())}; "
        f"crashes: {len(report.crashes())}"
    )
    unexplained = report.unexplained()
    if unexplained:
        parts.append("")
        parts.append("replay an unexplained finding with: "
                     "repro fuzz --seed SEED --only INDEX --dump-dir DIR")
        for t in unexplained:
            parts.append(f"  {t.name}: index {t.index} "
                         f"[{','.join(t.templates)}] {t.classification}")
    return "\n".join(parts)
