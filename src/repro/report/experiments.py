"""Experiment runners shared by the benchmark harness and EXPERIMENTS.md.

``evaluate_app`` runs GCatch + GFix over one corpus application and
classifies every report against the seeded ground truth; ``evaluate_corpus``
aggregates that into the Table 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.corpus.apps import CorpusApp, build_corpus
from repro.corpus.templates import TemplateInstance
from repro.detector.gcatch import GCatchResult, run_gcatch
from repro.detector.reporting import BugReport
from repro.fixer.dispatcher import FixResult, GFix
from repro.report.table import cell, plain, render_table


@dataclass
class ChannelVerdict:
    """One channel the BMOC detector reported on, matched to its seed."""

    instance: Optional[TemplateInstance]
    category: str  # 'bmoc-chan' | 'bmoc-mutex'
    reports: List[BugReport] = field(default_factory=list)

    @property
    def is_real(self) -> bool:
        return self.instance is not None and self.instance.real

    @property
    def fp_cause(self) -> Optional[str]:
        return self.instance.fp_cause if self.instance else None


@dataclass
class AppEvaluation:
    app: CorpusApp
    gcatch: GCatchResult
    bmoc_verdicts: List[ChannelVerdict] = field(default_factory=list)
    traditional_verdicts: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    fixes: List[FixResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def bmoc_counts(self, category: str) -> Tuple[int, int]:
        real = sum(1 for v in self.bmoc_verdicts if v.category == category and v.is_real)
        fp = sum(1 for v in self.bmoc_verdicts if v.category == category and not v.is_real)
        return real, fp

    def fix_counts(self) -> Dict[str, int]:
        out = {"buffer": 0, "defer": 0, "stop": 0}
        for fix in self.fixes:
            if fix.strategy in out:
                out[fix.strategy] += 1
        return out

    def unfixed(self) -> List[FixResult]:
        return [f for f in self.fixes if not f.fixed]


def evaluate_app(app: CorpusApp) -> AppEvaluation:
    """Run the full GCatch + GFix pipeline on one corpus application."""
    program = app.program()
    gcatch = run_gcatch(program)
    evaluation = AppEvaluation(app=app, gcatch=gcatch, elapsed_seconds=gcatch.elapsed_seconds)

    # group BMOC reports per channel primitive, then match seeds
    by_channel: Dict[int, List[BugReport]] = {}
    prim_of: Dict[int, object] = {}
    for report in gcatch.bmoc.reports:
        by_channel.setdefault(id(report.primitive), []).append(report)
        prim_of[id(report.primitive)] = report.primitive
    for key, reports in by_channel.items():
        prim = prim_of[key]
        category = (
            "bmoc-mutex" if any(r.category == "bmoc-mutex" for r in reports) else "bmoc-chan"
        )
        instance = app.instance_for_function(prim.site.function)
        evaluation.bmoc_verdicts.append(
            ChannelVerdict(instance=instance, category=category, reports=reports)
        )

    # traditional categories: match each report to a seeded instance
    for category in ("forget-unlock", "double-lock", "conflict-lock", "struct-race", "fatal-goroutine"):
        real = fp = 0
        for report in gcatch.traditional:
            if report.category != category:
                continue
            function = report.blocked_ops[0].function if report.blocked_ops else ""
            instance = app.instance_for_function(function)
            if instance is not None and instance.real and instance.category == category:
                real += 1
            else:
                fp += 1
        evaluation.traditional_verdicts[category] = (real, fp)

    # GFix runs on the real channel-only BMOC bugs (the paper feeds GFix the
    # 147 BMOC_C bugs; false positives were weeded out by inspection)
    gfix = GFix(program, app.source)
    for verdict in evaluation.bmoc_verdicts:
        if verdict.category != "bmoc-chan" or not verdict.is_real:
            continue
        fixed: Optional[FixResult] = None
        for report in verdict.reports:
            result = gfix.fix(report)
            if result.fixed:
                fixed = result
                break
            fixed = result
        if fixed is not None:
            evaluation.fixes.append(fixed)
    return evaluation


@dataclass
class CorpusEvaluation:
    evaluations: List[AppEvaluation] = field(default_factory=list)

    def table1_rows(self) -> List[Dict[str, str]]:
        rows: List[Dict[str, str]] = []
        totals: Dict[str, List[int]] = {}

        def accumulate(key: str, real: int, fp: int) -> None:
            bucket = totals.setdefault(key, [0, 0])
            bucket[0] += real
            bucket[1] += fp

        for evaluation in self.evaluations:
            row: Dict[str, str] = {"app": evaluation.app.name}
            total_real = total_fp = 0
            for key, category in (
                ("bmoc_c", "bmoc-chan"),
                ("bmoc_m", "bmoc-mutex"),
            ):
                real, fp = evaluation.bmoc_counts(category)
                row[key] = cell(real, fp)
                accumulate(key, real, fp)
                total_real += real
                total_fp += fp
            for key, category in (
                ("forget_unlock", "forget-unlock"),
                ("double_lock", "double-lock"),
                ("conflict_lock", "conflict-lock"),
                ("struct_field", "struct-race"),
                ("fatal", "fatal-goroutine"),
            ):
                real, fp = evaluation.traditional_verdicts.get(category, (0, 0))
                row[key] = cell(real, fp)
                accumulate(key, real, fp)
                total_real += real
                total_fp += fp
            row["total"] = cell(total_real, total_fp)
            accumulate("total", total_real, total_fp)
            fix_counts = evaluation.fix_counts()
            row["s1"] = plain(fix_counts["buffer"])
            row["s2"] = plain(fix_counts["defer"])
            row["s3"] = plain(fix_counts["stop"])
            row["fix_total"] = plain(sum(fix_counts.values()))
            accumulate("s1", fix_counts["buffer"], 0)
            accumulate("s2", fix_counts["defer"], 0)
            accumulate("s3", fix_counts["stop"], 0)
            accumulate("fix_total", sum(fix_counts.values()), 0)
            rows.append(row)
        total_row: Dict[str, str] = {"app": "Total"}
        for key, (real, fp) in totals.items():
            if key in ("s1", "s2", "s3", "fix_total"):
                total_row[key] = plain(real)
            else:
                total_row[key] = cell(real, fp)
        rows.append(total_row)
        return rows

    def render(self) -> str:
        return render_table(
            self.table1_rows(),
            title="Table 1 (reproduced): GCatch bugs x(FP) per category and GFix fixes per strategy",
        )

    def totals(self) -> Dict[str, Tuple[int, int]]:
        out: Dict[str, Tuple[int, int]] = {}
        for key, category in (("bmoc_c", "bmoc-chan"), ("bmoc_m", "bmoc-mutex")):
            real = sum(e.bmoc_counts(category)[0] for e in self.evaluations)
            fp = sum(e.bmoc_counts(category)[1] for e in self.evaluations)
            out[key] = (real, fp)
        for key, category in (
            ("forget_unlock", "forget-unlock"),
            ("double_lock", "double-lock"),
            ("conflict_lock", "conflict-lock"),
            ("struct_field", "struct-race"),
            ("fatal", "fatal-goroutine"),
        ):
            real = sum(e.traditional_verdicts.get(category, (0, 0))[0] for e in self.evaluations)
            fp = sum(e.traditional_verdicts.get(category, (0, 0))[1] for e in self.evaluations)
            out[key] = (real, fp)
        return out

    def fix_totals(self) -> Dict[str, int]:
        out = {"buffer": 0, "defer": 0, "stop": 0}
        for evaluation in self.evaluations:
            for strategy, count in evaluation.fix_counts().items():
                out[strategy] += count
        return out

    def fp_causes(self) -> Dict[str, int]:
        """False positives of the BMOC detector, by cause (§5.2)."""
        out: Dict[str, int] = {}
        for evaluation in self.evaluations:
            for verdict in evaluation.bmoc_verdicts:
                if verdict.is_real:
                    continue
                cause = verdict.fp_cause or "unknown"
                out[cause] = out.get(cause, 0) + 1
        return out


def evaluate_corpus(names: Optional[List[str]] = None) -> CorpusEvaluation:
    """Evaluate the whole corpus (or a named subset) with GCatch + GFix."""
    apps = build_corpus()
    if names is not None:
        apps = tuple(app for app in apps if app.name in names)
    return CorpusEvaluation(evaluations=[evaluate_app(app) for app in apps])
