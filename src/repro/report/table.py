"""ASCII rendering of evaluation tables in the paper's Table 1 layout."""

from __future__ import annotations

from typing import Dict, List, Sequence

COLUMNS = [
    ("app", "App Name"),
    ("bmoc_c", "BMOC_C"),
    ("bmoc_m", "BMOC_M"),
    ("forget_unlock", "Forget Unlock"),
    ("double_lock", "Double Lock"),
    ("conflict_lock", "Conflict Lock"),
    ("struct_field", "Struct Field"),
    ("fatal", "Fatal"),
    ("total", "Total"),
    ("s1", "S.-I"),
    ("s2", "S.-II"),
    ("s3", "S.-III"),
    ("fix_total", "Fix Total"),
]


def cell(real: int, fp: int) -> str:
    """Format a Table 1 cell: the paper's x_y notation becomes x(y)."""
    if real == 0 and fp == 0:
        return "-"
    return f"{real}({fp})"


def plain(value: int) -> str:
    return "-" if value == 0 else str(value)


def render_table(rows: List[Dict[str, str]], title: str = "") -> str:
    """Render rows (dicts keyed by COLUMNS ids) as an aligned ASCII table."""
    headers = [header for _, header in COLUMNS]
    keys = [key for key, _ in COLUMNS]
    table_rows = [[row.get(key, "") for key in keys] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table_rows)) if table_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


#: distinct marker for decision-procedure/budget timeouts in cost tables;
#: any other outcome renders as its plain name
TIMEOUT_MARKER = "TIMEOUT !"


def _outcome_cell(outcome: str) -> str:
    if outcome == "timeout":
        return TIMEOUT_MARKER
    return outcome or "-"


def render_bug_costs(
    reports, title: str = "Per-bug solver effort (Table 6 analogue)", timeouts=None
) -> str:
    """One row per BugReport: where it blocks plus the decision-procedure
    cost behind it (clause count, search nodes, outcome).

    ``timeouts`` (engine ``ShardInfo`` records whose budget ran out) append
    one row each, flagged with :data:`TIMEOUT_MARKER` — an incomplete
    analysis is surfaced next to the bugs it did manage to prove.
    """
    rows = []
    for report in reports:
        where = "; ".join(str(op) for op in report.blocked_ops) or report.description
        rows.append(
            [
                report.category,
                where,
                plain(report.clause_count),
                plain(report.solver_nodes),
                _outcome_cell(report.solver_outcome),
            ]
        )
    for shard in timeouts or ():
        rows.append(
            [
                "(budget)",
                f"analysis of {shard.label} incomplete",
                "-",
                "-",
                TIMEOUT_MARKER,
            ]
        )
    return render_simple(["category", "bug", "clauses", "nodes", "outcome"], rows, title=title)


def render_health(status: str, incidents=()) -> str:
    """The run-report health section: overall status plus one row per
    :class:`repro.resilience.incidents.Incident` (site, label, exception,
    attempts, digest). An ``ok`` run renders as a single line.
    """
    header = f"health: {status}"
    if not incidents:
        return header
    rows = []
    for incident in incidents:
        rows.append(
            [
                incident.site,
                incident.label or "-",
                incident.exception,
                str(incident.attempts),
                "yes" if incident.transient else "no",
                incident.digest,
            ]
        )
    table = render_simple(
        ["site", "label", "exception", "attempts", "transient", "digest"],
        rows,
        title=f"{header} — {len(incidents)} incident(s)",
    )
    return table


def render_simple(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    widths = [
        max(len(headers[i]), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_delta(
    old_renders: Sequence[str],
    new_renders: Sequence[str],
    shards_total: int = 0,
    shards_cached: int = 0,
    generation: int = 0,
) -> List[str]:
    """Watch-mode delta lines: reports that appeared/resolved between two
    analyses, plus how much of the shard plan answered from the warm
    cache (the incremental win the service exists for)."""
    old_set, new_set = set(old_renders), set(new_renders)
    lines: List[str] = []
    appeared = [r for r in new_renders if r not in old_set]
    resolved = [r for r in old_renders if r not in new_set]
    for render in appeared:
        first = render.split("\n", 1)[0]
        lines.append(f"+ NEW {first}")
    for render in resolved:
        first = render.split("\n", 1)[0]
        lines.append(f"- RESOLVED {first}")
    if not appeared and not resolved:
        lines.append(f"= no report changes ({len(new_renders)} report(s))")
    executed = shards_total - shards_cached
    rate = shards_cached / shards_total if shards_total else 1.0
    lines.append(
        f"  generation {generation}: re-analyzed {executed}/{shards_total} "
        f"shard(s), {shards_cached} warm ({rate:.0%} skip)"
    )
    return lines
