"""Recursive-descent parser for MiniGo.

The grammar is a faithful subset of Go's: enough to express every program
shape that GCatch and GFix reason about (Figures 1, 3 and 4 of the paper
parse verbatim modulo elided library calls). Qualified standard-library
types (``sync.Mutex``, ``testing.T``, ...) are normalized to MiniGo builtin
type names so later passes can treat them uniformly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.golang import ast_nodes as ast
from repro.golang.lexer import Token, tokenize

_QUALIFIED_TYPES = {
    ("sync", "Mutex"): "mutex",
    ("sync", "RWMutex"): "rwmutex",
    ("sync", "WaitGroup"): "waitgroup",
    ("sync", "Cond"): "cond",
    ("context", "Context"): "context",
    ("testing", "T"): "testing",
    ("bytes", "Buffer"): "buffer",
}

_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{token.line}:{token.col}: {message} (got {token.kind} {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str, filename: str = "<minigo>"):
        self.tokens = tokenize(source, filename)
        self.source = source
        self.filename = filename
        self._idx = 0
        # Go's parser disables composite literals at the top level of
        # if/for conditions to resolve the `if x == T{}` ambiguity; we do
        # the same with this depth flag.
        self._no_composite = 0

    # ------------------------------------------------------------------
    # token helpers

    @property
    def _cur(self) -> Token:
        return self.tokens[self._idx]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self._idx + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != "eof":
            self._idx += 1
        return token

    def _expect_op(self, op: str) -> Token:
        if not self._cur.is_op(op):
            raise ParseError(f"expected {op!r}", self._cur)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise ParseError(f"expected keyword {word!r}", self._cur)
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._cur.kind != "ident":
            raise ParseError("expected identifier", self._cur)
        return self._advance()

    def _skip_semis(self) -> None:
        while self._cur.is_op(";"):
            self._advance()

    # ------------------------------------------------------------------
    # file-level parsing

    def parse_file(self) -> ast.File:
        file = ast.File(filename=self.filename, source=self.source)
        self._skip_semis()
        if self._cur.is_keyword("package"):
            self._advance()
            file.package = self._expect_ident().text
        self._skip_semis()
        while self._cur.is_keyword("import"):
            self._skip_import()
            self._skip_semis()
        while self._cur.kind != "eof":
            if self._cur.is_keyword("func"):
                file.funcs.append(self._parse_func_decl())
            elif self._cur.is_keyword("type"):
                file.structs.append(self._parse_struct_decl())
            else:
                raise ParseError("expected top-level declaration", self._cur)
            self._skip_semis()
        return file

    def _skip_import(self) -> None:
        self._advance()
        if self._cur.is_op("("):
            self._advance()
            while not self._cur.is_op(")"):
                if self._cur.kind == "eof":
                    raise ParseError("unterminated import block", self._cur)
                self._advance()
            self._advance()
        else:
            self._advance()  # the import path string

    def _parse_struct_decl(self) -> ast.StructDecl:
        start = self._expect_keyword("type")
        name = self._expect_ident().text
        self._expect_keyword("struct")
        self._expect_op("{")
        fields: List[ast.Param] = []
        self._skip_semis()
        while not self._cur.is_op("}"):
            field_name = self._expect_ident()
            field_type = self._parse_type()
            fields.append(
                ast.Param(line=field_name.line, col=field_name.col, name=field_name.text, type=field_type)
            )
            self._skip_semis()
        self._expect_op("}")
        return ast.StructDecl(line=start.line, col=start.col, name=name, fields=fields)

    def _parse_func_decl(self) -> ast.FuncDecl:
        start = self._expect_keyword("func")
        receiver: Optional[ast.Param] = None
        if self._cur.is_op("("):
            receiver = self._parse_receiver()
        name = self._expect_ident().text
        params, results = self._parse_signature()
        body = self._parse_block()
        return ast.FuncDecl(
            line=start.line,
            col=start.col,
            name=name,
            receiver=receiver,
            params=params,
            results=results,
            body=body,
        )

    def _parse_receiver(self) -> ast.Param:
        self._expect_op("(")
        name = self._expect_ident()
        typ = self._parse_type()
        self._expect_op(")")
        return ast.Param(line=name.line, col=name.col, name=name.text, type=typ)

    def _parse_signature(self) -> Tuple[List[ast.Param], List[ast.Type]]:
        self._expect_op("(")
        params: List[ast.Param] = []
        while not self._cur.is_op(")"):
            group_start = len(params)
            name = self._expect_ident()
            params.append(ast.Param(line=name.line, col=name.col, name=name.text, type=None))
            while self._cur.is_op(","):
                self._advance()
                name = self._expect_ident()
                params.append(ast.Param(line=name.line, col=name.col, name=name.text, type=None))
            typ = self._parse_type()
            for param in params[group_start:]:
                if param.type is None:
                    param.type = typ
            if self._cur.is_op(","):
                self._advance()
        self._expect_op(")")
        results = self._parse_results()
        return params, results

    def _parse_results(self) -> List[ast.Type]:
        if self._cur.is_op("("):
            self._advance()
            results = [self._parse_type()]
            while self._cur.is_op(","):
                self._advance()
                results.append(self._parse_type())
            self._expect_op(")")
            return results
        if self._starts_type():
            return [self._parse_type()]
        return []

    def _starts_type(self) -> bool:
        token = self._cur
        if token.kind == "ident":
            return True
        if token.kind == "keyword":
            return token.text in ("chan", "struct", "func", "map", "interface")
        if token.kind == "op":
            return token.text in ("*", "[")
        return False

    # ------------------------------------------------------------------
    # types

    def _parse_type(self) -> ast.Type:
        token = self._cur
        if token.is_keyword("chan"):
            self._advance()
            return ast.ChanType(line=token.line, col=token.col, elem=self._parse_type())
        if token.is_op("["):
            self._advance()
            self._expect_op("]")
            return ast.SliceType(line=token.line, col=token.col, elem=self._parse_type())
        if token.is_op("*"):
            self._advance()
            return ast.PointerType(line=token.line, col=token.col, elem=self._parse_type())
        if token.is_keyword("struct"):
            self._advance()
            self._expect_op("{")
            self._expect_op("}")
            return ast.NamedType(line=token.line, col=token.col, name="unit")
        if token.is_keyword("func"):
            self._advance()
            params, results = self._parse_signature()
            return ast.FuncType(line=token.line, col=token.col, params=params, results=results)
        if token.is_keyword("interface"):
            self._advance()
            self._expect_op("{")
            self._expect_op("}")
            return ast.NamedType(line=token.line, col=token.col, name="any")
        if token.kind == "ident":
            self._advance()
            if self._cur.is_op(".") and self._peek().kind == "ident":
                qualified = _QUALIFIED_TYPES.get((token.text, self._peek().text))
                if qualified is not None:
                    self._advance()
                    self._advance()
                    return ast.NamedType(line=token.line, col=token.col, name=qualified)
            return ast.NamedType(line=token.line, col=token.col, name=token.text)
        raise ParseError("expected type", token)

    # ------------------------------------------------------------------
    # statements

    def _parse_block(self) -> ast.Block:
        open_tok = self._expect_op("{")
        stmts: List[ast.Stmt] = []
        self._skip_semis()
        while not self._cur.is_op("}"):
            if self._cur.kind == "eof":
                raise ParseError("unterminated block", self._cur)
            stmts.append(self._parse_stmt())
            self._skip_semis()
        close_tok = self._expect_op("}")
        return ast.Block(line=open_tok.line, col=open_tok.col, stmts=stmts, end_line=close_tok.line)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._cur
        if token.is_keyword("var"):
            return self._parse_var_decl()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("select"):
            return self._parse_select()
        if token.is_keyword("go"):
            self._advance()
            call = self._parse_expr()
            if not isinstance(call, ast.CallExpr):
                raise ParseError("go statement requires a call", token)
            return ast.GoStmt(line=token.line, col=token.col, call=call)
        if token.is_keyword("defer"):
            self._advance()
            call = self._parse_expr()
            if not isinstance(call, ast.CallExpr):
                raise ParseError("defer statement requires a call", token)
            return ast.DeferStmt(line=token.line, col=token.col, call=call)
        if token.is_keyword("return"):
            self._advance()
            values: List[ast.Expr] = []
            if not self._cur.is_op(";") and not self._cur.is_op("}"):
                values.append(self._parse_expr())
                while self._cur.is_op(","):
                    self._advance()
                    values.append(self._parse_expr())
            return ast.ReturnStmt(line=token.line, col=token.col, values=values)
        if token.is_keyword("break"):
            self._advance()
            return ast.BreakStmt(line=token.line, col=token.col)
        if token.is_keyword("continue"):
            self._advance()
            return ast.ContinueStmt(line=token.line, col=token.col)
        if token.is_op("{"):
            return self._parse_block()
        return self._parse_simple_stmt()

    def _parse_var_decl(self) -> ast.Stmt:
        start = self._expect_keyword("var")
        name = self._expect_ident().text
        typ: Optional[ast.Type] = None
        value: Optional[ast.Expr] = None
        if self._cur.is_op("="):
            self._advance()
            value = self._parse_expr()
        else:
            typ = self._parse_type()
            if self._cur.is_op("="):
                self._advance()
                value = self._parse_expr()
        return ast.VarDecl(line=start.line, col=start.col, name=name, type=typ, value=value)

    def _parse_simple_stmt(self) -> ast.Stmt:
        start = self._cur
        first = self._parse_expr()
        if self._cur.is_op("<-"):
            self._advance()
            value = self._parse_expr()
            return ast.SendStmt(line=start.line, col=start.col, chan=first, value=value)
        if self._cur.is_op("++") or self._cur.is_op("--"):
            op = self._advance().text
            return ast.IncDecStmt(line=start.line, col=start.col, target=first, op=op)
        lhs = [first]
        while self._cur.is_op(","):
            self._advance()
            lhs.append(self._parse_expr())
        if self._cur.is_op(":=") or self._cur.is_op("="):
            is_decl = self._advance().text == ":="
            rhs = [self._parse_expr()]
            while self._cur.is_op(","):
                self._advance()
                rhs.append(self._parse_expr())
            return ast.AssignStmt(line=start.line, col=start.col, lhs=lhs, rhs=rhs, is_decl=is_decl)
        if len(lhs) != 1:
            raise ParseError("expected := or = after expression list", self._cur)
        return ast.ExprStmt(line=start.line, col=start.col, expr=first)

    def _parse_if(self) -> ast.IfStmt:
        start = self._expect_keyword("if")
        self._no_composite += 1
        cond = self._parse_expr()
        self._no_composite -= 1
        then = self._parse_block()
        orelse: Optional[ast.Stmt] = None
        if self._cur.is_keyword("else"):
            self._advance()
            if self._cur.is_keyword("if"):
                orelse = self._parse_if()
            else:
                orelse = self._parse_block()
        return ast.IfStmt(line=start.line, col=start.col, cond=cond, then=then, orelse=orelse)

    def _parse_for(self) -> ast.Stmt:
        start = self._expect_keyword("for")
        if self._cur.is_op("{"):
            return ast.ForStmt(line=start.line, col=start.col, body=self._parse_block())
        if self._cur.is_keyword("range"):
            self._advance()
            self._no_composite += 1
            source = self._parse_expr()
            self._no_composite -= 1
            body = self._parse_block()
            return ast.RangeStmt(line=start.line, col=start.col, var="_", source=source, body=body)
        # `for v := range src {`
        if (
            self._cur.kind == "ident"
            and self._peek().is_op(":=")
            and self._peek(2).is_keyword("range")
        ):
            var = self._advance().text
            self._advance()  # :=
            self._advance()  # range
            self._no_composite += 1
            source = self._parse_expr()
            self._no_composite -= 1
            body = self._parse_block()
            return ast.RangeStmt(line=start.line, col=start.col, var=var, source=source, body=body)
        self._no_composite += 1
        first = self._parse_simple_stmt()
        self._no_composite -= 1
        if self._cur.is_op(";"):
            self._advance()
            self._no_composite += 1
            cond = None if self._cur.is_op(";") else self._parse_expr()
            self._expect_op(";")
            post = None if self._cur.is_op("{") else self._parse_simple_stmt()
            self._no_composite -= 1
            body = self._parse_block()
            return ast.ForStmt(
                line=start.line, col=start.col, init=first, cond=cond, post=post, body=body
            )
        if not isinstance(first, ast.ExprStmt):
            raise ParseError("for condition must be an expression", self._cur)
        body = self._parse_block()
        return ast.ForStmt(line=start.line, col=start.col, cond=first.expr, body=body)

    def _parse_select(self) -> ast.SelectStmt:
        start = self._expect_keyword("select")
        self._expect_op("{")
        cases: List[ast.CommClause] = []
        self._skip_semis()
        while not self._cur.is_op("}"):
            cases.append(self._parse_comm_clause())
            self._skip_semis()
        close_tok = self._expect_op("}")
        return ast.SelectStmt(line=start.line, col=start.col, cases=cases, end_line=close_tok.line)

    def _parse_comm_clause(self) -> ast.CommClause:
        token = self._cur
        comm: Optional[ast.Stmt] = None
        if token.is_keyword("default"):
            self._advance()
        else:
            self._expect_keyword("case")
            comm = self._parse_simple_stmt()
        self._expect_op(":")
        body: List[ast.Stmt] = []
        self._skip_semis()
        while not (
            self._cur.is_keyword("case") or self._cur.is_keyword("default") or self._cur.is_op("}")
        ):
            body.append(self._parse_stmt())
            self._skip_semis()
        return ast.CommClause(line=token.line, col=token.col, comm=comm, body=body)

    # ------------------------------------------------------------------
    # expressions

    def _parse_expr(self, min_prec: int = 1) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._cur
            prec = _BINARY_PRECEDENCE.get(token.text) if token.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._parse_expr(prec + 1)
            left = ast.BinaryExpr(line=token.line, col=token.col, op=token.text, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self._cur
        if token.is_op("<-"):
            self._advance()
            return ast.RecvExpr(line=token.line, col=token.col, chan=self._parse_unary())
        if token.is_op("!") or token.is_op("-") or token.is_op("&") or token.is_op("*"):
            self._advance()
            return ast.UnaryExpr(line=token.line, col=token.col, op=token.text, operand=self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._cur
            if token.is_op("("):
                self._advance()
                args: List[ast.Expr] = []
                while not self._cur.is_op(")"):
                    args.append(self._parse_expr())
                    if self._cur.is_op(","):
                        self._advance()
                self._expect_op(")")
                expr = ast.CallExpr(line=token.line, col=token.col, func=expr, args=args)
            elif token.is_op(".") and self._peek().kind == "ident":
                self._advance()
                name = self._advance()
                expr = ast.SelectorExpr(line=name.line, col=name.col, recv=expr, name=name.text)
            elif token.is_op("["):
                self._advance()
                index = self._parse_expr()
                self._expect_op("]")
                expr = ast.IndexExpr(line=token.line, col=token.col, seq=expr, index=index)
            elif (
                token.is_op("{")
                and isinstance(expr, ast.Ident)
                and self._no_composite == 0
                and self._looks_like_composite()
            ):
                expr = self._parse_composite(expr)
            else:
                return expr

    def _looks_like_composite(self) -> bool:
        """Heuristic: ``Ident{`` starts a composite literal when the brace is
        immediately followed by ``}`` or by ``ident :``."""
        if self._peek().is_op("}"):
            return True
        return self._peek().kind == "ident" and self._peek(2).is_op(":")

    def _parse_composite(self, name: ast.Ident) -> ast.CompositeLit:
        self._expect_op("{")
        fields: List[Tuple[str, ast.Expr]] = []
        self._skip_semis()
        while not self._cur.is_op("}"):
            field_name = self._expect_ident().text
            self._expect_op(":")
            fields.append((field_name, self._parse_expr()))
            if self._cur.is_op(","):
                self._advance()
            self._skip_semis()
        self._expect_op("}")
        return ast.CompositeLit(line=name.line, col=name.col, type_name=name.name, fields=fields)

    def _parse_primary(self) -> ast.Expr:
        token = self._cur
        if token.kind == "int":
            self._advance()
            return ast.IntLit(line=token.line, col=token.col, value=int(token.text))
        if token.kind == "string":
            self._advance()
            return ast.StringLit(line=token.line, col=token.col, value=token.text)
        if token.is_keyword("true") or token.is_keyword("false"):
            self._advance()
            return ast.BoolLit(line=token.line, col=token.col, value=token.text == "true")
        if token.is_keyword("nil"):
            self._advance()
            return ast.NilLit(line=token.line, col=token.col)
        if token.is_keyword("struct"):
            # struct{}{} -- the unit value
            self._advance()
            self._expect_op("{")
            self._expect_op("}")
            self._expect_op("{")
            self._expect_op("}")
            return ast.UnitLit(line=token.line, col=token.col)
        if token.is_keyword("func"):
            return self._parse_func_lit()
        if token.is_keyword("chan"):
            raise ParseError("chan type only valid inside make()", token)
        if token.kind == "ident":
            if token.text == "make" and self._peek().is_op("("):
                return self._parse_make()
            self._advance()
            return ast.Ident(line=token.line, col=token.col, name=token.text)
        if token.is_op("("):
            self._advance()
            saved = self._no_composite
            self._no_composite = 0
            expr = self._parse_expr()
            self._no_composite = saved
            self._expect_op(")")
            return expr
        raise ParseError("expected expression", token)

    def _parse_make(self) -> ast.MakeExpr:
        token = self._advance()  # 'make'
        self._expect_op("(")
        typ = self._parse_type()
        size: Optional[ast.Expr] = None
        if self._cur.is_op(","):
            self._advance()
            size = self._parse_expr()
        self._expect_op(")")
        return ast.MakeExpr(line=token.line, col=token.col, type=typ, size=size)

    def _parse_func_lit(self) -> ast.FuncLit:
        token = self._expect_keyword("func")
        params, results = self._parse_signature()
        body = self._parse_block()
        return ast.FuncLit(line=token.line, col=token.col, params=params, results=results, body=body)


def parse_file(source: str, filename: str = "<minigo>") -> ast.File:
    """Parse MiniGo ``source`` into a :class:`repro.golang.ast_nodes.File`."""
    from repro.resilience.faultinject import maybe_fault

    maybe_fault("parse", filename)
    return Parser(source, filename).parse_file()
