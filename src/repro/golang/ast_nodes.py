"""AST node definitions for MiniGo.

Every node records its source ``line`` (and ``col`` where useful) so the
detector can report buggy lines and GFix can splice patches back into
source, mirroring the role of ``go/ast`` in the paper's implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = 0
    col: int = 0


# ---------------------------------------------------------------------------
# Types


@dataclass
class Type(Node):
    pass


@dataclass
class NamedType(Type):
    """A primitive or user-declared type referenced by name.

    Qualified Go standard-library types are normalized by the parser:
    ``sync.Mutex`` -> ``mutex``, ``sync.RWMutex`` -> ``rwmutex``,
    ``sync.WaitGroup`` -> ``waitgroup``, ``context.Context`` -> ``context``,
    ``testing.T`` -> ``testing``, ``struct{}`` -> ``unit``.
    """

    name: str = ""


@dataclass
class ChanType(Type):
    elem: Type = None  # type: ignore[assignment]


@dataclass
class SliceType(Type):
    elem: Type = None  # type: ignore[assignment]


@dataclass
class PointerType(Type):
    elem: Type = None  # type: ignore[assignment]


@dataclass
class FuncType(Type):
    params: List["Param"] = field(default_factory=list)
    results: List[Type] = field(default_factory=list)


@dataclass
class Param(Node):
    name: str = ""
    type: Type = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Expressions


@dataclass
class Expr(Node):
    pass


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NilLit(Expr):
    pass


@dataclass
class UnitLit(Expr):
    """The ``struct{}{}`` value commonly sent on signalling channels."""


@dataclass
class UnaryExpr(Expr):
    op: str = ""  # '!', '-', '&', '*'
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class RecvExpr(Expr):
    """``<-ch``; when used in a two-value context yields (value, ok)."""

    chan: Expr = None  # type: ignore[assignment]


@dataclass
class CallExpr(Expr):
    func: Expr = None  # type: ignore[assignment]
    args: List[Expr] = field(default_factory=list)


@dataclass
class SelectorExpr(Expr):
    """``x.f`` — a field access or a method reference."""

    recv: Expr = None  # type: ignore[assignment]
    name: str = ""


@dataclass
class IndexExpr(Expr):
    seq: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class MakeExpr(Expr):
    """``make(chan T)``, ``make(chan T, n)`` or ``make([]T, n)``."""

    type: Type = None  # type: ignore[assignment]
    size: Optional[Expr] = None


@dataclass
class FuncLit(Expr):
    params: List[Param] = field(default_factory=list)
    results: List[Type] = field(default_factory=list)
    body: "Block" = None  # type: ignore[assignment]


@dataclass
class CompositeLit(Expr):
    """``T{}`` / ``T{f: v, ...}`` struct literals."""

    type_name: str = ""
    fields: List[Tuple[str, Expr]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)
    end_line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class SendStmt(Stmt):
    chan: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class AssignStmt(Stmt):
    """Covers both ``:=`` (is_decl) and ``=``.

    ``lhs`` may contain one or two targets (two for ``v, ok := <-ch`` and
    multi-return calls). ``rhs`` holds a single expression in those forms,
    or parallel expressions for plain tuple assignment.
    """

    lhs: List[Expr] = field(default_factory=list)
    rhs: List[Expr] = field(default_factory=list)
    is_decl: bool = False


@dataclass
class VarDecl(Stmt):
    name: str = ""
    type: Optional[Type] = None
    value: Optional[Expr] = None


@dataclass
class IncDecStmt(Stmt):
    target: Expr = None  # type: ignore[assignment]
    op: str = "++"


@dataclass
class IfStmt(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    orelse: Optional[Stmt] = None  # Block or IfStmt


@dataclass
class ForStmt(Stmt):
    """``for {}``, ``for cond {}`` or ``for init; cond; post {}``."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    post: Optional[Stmt] = None
    body: Block = None  # type: ignore[assignment]


@dataclass
class RangeStmt(Stmt):
    """``for v := range ch {}`` / ``for i := range n {}`` (integer range)."""

    var: str = ""
    source: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass
class GoStmt(Stmt):
    call: CallExpr = None  # type: ignore[assignment]


@dataclass
class DeferStmt(Stmt):
    call: CallExpr = None  # type: ignore[assignment]


@dataclass
class ReturnStmt(Stmt):
    values: List[Expr] = field(default_factory=list)


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class SelectStmt(Stmt):
    cases: List["CommClause"] = field(default_factory=list)
    end_line: int = 0


@dataclass
class CommClause(Node):
    """One ``case`` of a ``select``; ``comm`` is None for ``default``."""

    comm: Optional[Stmt] = None  # SendStmt | AssignStmt | ExprStmt(RecvExpr)
    body: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declarations


@dataclass
class StructDecl(Node):
    name: str = ""
    fields: List[Param] = field(default_factory=list)


@dataclass
class FuncDecl(Node):
    name: str = ""
    receiver: Optional[Param] = None
    params: List[Param] = field(default_factory=list)
    results: List[Type] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]

    @property
    def full_name(self) -> str:
        if self.receiver is not None:
            return f"{_receiver_type_name(self.receiver.type)}.{self.name}"
        return self.name


def _receiver_type_name(typ: Type) -> str:
    if isinstance(typ, PointerType):
        typ = typ.elem
    if isinstance(typ, NamedType):
        return typ.name
    return "?"


@dataclass
class File(Node):
    """A parsed MiniGo source file (one ``package`` clause plus decls)."""

    package: str = "main"
    filename: str = "<minigo>"
    source: str = ""
    structs: List[StructDecl] = field(default_factory=list)
    funcs: List[FuncDecl] = field(default_factory=list)

    def func(self, name: str) -> FuncDecl:
        for decl in self.funcs:
            if decl.full_name == name or decl.name == name:
                return decl
        raise KeyError(name)

    def struct(self, name: str) -> StructDecl:
        for decl in self.structs:
            if decl.name == name:
                return decl
        raise KeyError(name)
