"""AST -> MiniGo source pretty-printer.

The inverse of the parser, used for round-trip testing (``parse(print(ast))``
is structurally equal to ``ast``) and for emitting synthesized programs.
Output follows gofmt conventions: tab indentation, one statement per line,
``else`` on the closing-brace line.
"""

from __future__ import annotations

from typing import List

from repro.golang import ast_nodes as ast


class Printer:
    def __init__(self):
        self._lines: List[str] = []
        self._indent = 0

    # -- emit helpers -------------------------------------------------------

    def _line(self, text: str) -> None:
        self._lines.append("\t" * self._indent + text)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"

    # -- file ---------------------------------------------------------------

    def print_file(self, file: ast.File) -> str:
        self._line(f"package {file.package}")
        for struct in file.structs:
            self._line("")
            self.print_struct(struct)
        for func in file.funcs:
            self._line("")
            self.print_func(func)
        return self.render()

    def print_struct(self, decl: ast.StructDecl) -> None:
        self._line(f"type {decl.name} struct {{")
        self._indent += 1
        for field in decl.fields:
            self._line(f"{field.name} {self.type_str(field.type)}")
        self._indent -= 1
        self._line("}")

    def print_func(self, decl: ast.FuncDecl) -> None:
        receiver = ""
        if decl.receiver is not None:
            receiver = f"({decl.receiver.name} {self.type_str(decl.receiver.type)}) "
        params = ", ".join(f"{p.name} {self.type_str(p.type)}" for p in decl.params)
        results = self._results_str(decl.results)
        self._line(f"func {receiver}{decl.name}({params}){results} {{")
        self._indent += 1
        for stmt in decl.body.stmts:
            self.print_stmt(stmt)
        self._indent -= 1
        self._line("}")

    def _results_str(self, results: List[ast.Type]) -> str:
        if not results:
            return ""
        if len(results) == 1:
            return " " + self.type_str(results[0])
        return " (" + ", ".join(self.type_str(t) for t in results) + ")"

    # -- types ----------------------------------------------------------------

    def type_str(self, typ: ast.Type) -> str:
        if isinstance(typ, ast.NamedType):
            reverse = {
                "mutex": "sync.Mutex",
                "rwmutex": "sync.RWMutex",
                "waitgroup": "sync.WaitGroup",
                "cond": "sync.Cond",
                "context": "context.Context",
                "testing": "testing.T",
                "unit": "struct{}",
                "buffer": "bytes.Buffer",
            }
            return reverse.get(typ.name, typ.name)
        if isinstance(typ, ast.ChanType):
            return f"chan {self.type_str(typ.elem)}"
        if isinstance(typ, ast.SliceType):
            return f"[]{self.type_str(typ.elem)}"
        if isinstance(typ, ast.PointerType):
            return f"*{self.type_str(typ.elem)}"
        if isinstance(typ, ast.FuncType):
            params = ", ".join(f"{p.name} {self.type_str(p.type)}" for p in typ.params)
            return f"func({params}){self._results_str(typ.results)}"
        raise TypeError(f"cannot print type {type(typ).__name__}")

    # -- statements --------------------------------------------------------------

    def print_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if method is None:
            raise TypeError(f"cannot print statement {type(stmt).__name__}")
        method(stmt)

    def _stmt_Block(self, stmt: ast.Block) -> None:
        self._line("{")
        self._indent += 1
        for inner in stmt.stmts:
            self.print_stmt(inner)
        self._indent -= 1
        self._line("}")

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self._line(self.expr_str(stmt.expr))

    def _stmt_SendStmt(self, stmt: ast.SendStmt) -> None:
        self._line(f"{self.expr_str(stmt.chan)} <- {self.expr_str(stmt.value)}")

    def _stmt_AssignStmt(self, stmt: ast.AssignStmt) -> None:
        op = ":=" if stmt.is_decl else "="
        lhs = ", ".join(self.expr_str(e) for e in stmt.lhs)
        rhs = ", ".join(self.expr_str(e) for e in stmt.rhs)
        self._line(f"{lhs} {op} {rhs}")

    def _stmt_VarDecl(self, stmt: ast.VarDecl) -> None:
        if stmt.type is not None and stmt.value is None:
            self._line(f"var {stmt.name} {self.type_str(stmt.type)}")
        elif stmt.type is not None:
            self._line(
                f"var {stmt.name} {self.type_str(stmt.type)} = {self.expr_str(stmt.value)}"
            )
        else:
            self._line(f"var {stmt.name} = {self.expr_str(stmt.value)}")

    def _stmt_IncDecStmt(self, stmt: ast.IncDecStmt) -> None:
        self._line(f"{self.expr_str(stmt.target)}{stmt.op}")

    def _stmt_IfStmt(self, stmt: ast.IfStmt) -> None:
        self._print_if(stmt, prefix="if ")

    def _print_if(self, stmt: ast.IfStmt, prefix: str) -> None:
        self._line(f"{prefix}{self.expr_str(stmt.cond)} {{")
        self._indent += 1
        for inner in stmt.then.stmts:
            self.print_stmt(inner)
        self._indent -= 1
        if stmt.orelse is None:
            self._line("}")
            return
        if isinstance(stmt.orelse, ast.IfStmt):
            # fold `} else if cond {` onto one line
            self._line_join_else()
            self._print_if(stmt.orelse, prefix="} else if ")
            return
        self._line("} else {")
        self._indent += 1
        for inner in stmt.orelse.stmts:
            self.print_stmt(inner)
        self._indent -= 1
        self._line("}")

    def _line_join_else(self) -> None:
        pass  # handled by the '} else if' prefix

    def _stmt_ForStmt(self, stmt: ast.ForStmt) -> None:
        header = "for"
        if stmt.init is not None or stmt.post is not None:
            init = self._inline_stmt(stmt.init) if stmt.init else ""
            cond = self.expr_str(stmt.cond) if stmt.cond else ""
            post = self._inline_stmt(stmt.post) if stmt.post else ""
            header = f"for {init}; {cond}; {post}"
        elif stmt.cond is not None:
            header = f"for {self.expr_str(stmt.cond)}"
        self._line(header + " {")
        self._indent += 1
        for inner in stmt.body.stmts:
            self.print_stmt(inner)
        self._indent -= 1
        self._line("}")

    def _inline_stmt(self, stmt: ast.Stmt) -> str:
        if isinstance(stmt, ast.AssignStmt):
            op = ":=" if stmt.is_decl else "="
            lhs = ", ".join(self.expr_str(e) for e in stmt.lhs)
            rhs = ", ".join(self.expr_str(e) for e in stmt.rhs)
            return f"{lhs} {op} {rhs}"
        if isinstance(stmt, ast.IncDecStmt):
            return f"{self.expr_str(stmt.target)}{stmt.op}"
        if isinstance(stmt, ast.ExprStmt):
            return self.expr_str(stmt.expr)
        raise TypeError(f"cannot inline statement {type(stmt).__name__}")

    def _stmt_RangeStmt(self, stmt: ast.RangeStmt) -> None:
        if stmt.var == "_":
            self._line(f"for range {self.expr_str(stmt.source)} {{")
        else:
            self._line(f"for {stmt.var} := range {self.expr_str(stmt.source)} {{")
        self._indent += 1
        for inner in stmt.body.stmts:
            self.print_stmt(inner)
        self._indent -= 1
        self._line("}")

    def _stmt_GoStmt(self, stmt: ast.GoStmt) -> None:
        self._print_call_stmt("go ", stmt.call)

    def _stmt_DeferStmt(self, stmt: ast.DeferStmt) -> None:
        self._print_call_stmt("defer ", stmt.call)

    def _print_call_stmt(self, keyword: str, call: ast.CallExpr) -> None:
        if isinstance(call.func, ast.FuncLit):
            params = ", ".join(
                f"{p.name} {self.type_str(p.type)}" for p in call.func.params
            )
            self._line(f"{keyword}func({params}){self._results_str(call.func.results)} {{")
            self._indent += 1
            for inner in call.func.body.stmts:
                self.print_stmt(inner)
            self._indent -= 1
            args = ", ".join(self.expr_str(a) for a in call.args)
            self._line(f"}}({args})")
            return
        self._line(keyword + self.expr_str(call))

    def _stmt_ReturnStmt(self, stmt: ast.ReturnStmt) -> None:
        if stmt.values:
            self._line("return " + ", ".join(self.expr_str(v) for v in stmt.values))
        else:
            self._line("return")

    def _stmt_BreakStmt(self, stmt: ast.BreakStmt) -> None:
        self._line("break")

    def _stmt_ContinueStmt(self, stmt: ast.ContinueStmt) -> None:
        self._line("continue")

    def _stmt_SelectStmt(self, stmt: ast.SelectStmt) -> None:
        self._line("select {")
        for clause in stmt.cases:
            if clause.comm is None:
                self._line("default:")
            else:
                self._line(f"case {self._inline_comm(clause.comm)}:")
            self._indent += 1
            for inner in clause.body:
                self.print_stmt(inner)
            self._indent -= 1
        self._line("}")

    def _inline_comm(self, comm: ast.Stmt) -> str:
        if isinstance(comm, ast.SendStmt):
            return f"{self.expr_str(comm.chan)} <- {self.expr_str(comm.value)}"
        if isinstance(comm, ast.ExprStmt):
            return self.expr_str(comm.expr)
        if isinstance(comm, ast.AssignStmt):
            return self._inline_stmt(comm)
        raise TypeError(f"cannot print comm clause {type(comm).__name__}")

    # -- expressions ---------------------------------------------------------------

    def expr_str(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.Ident):
            return expr.name
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.StringLit):
            escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
            return f'"{escaped}"'
        if isinstance(expr, ast.BoolLit):
            return "true" if expr.value else "false"
        if isinstance(expr, ast.NilLit):
            return "nil"
        if isinstance(expr, ast.UnitLit):
            return "struct{}{}"
        if isinstance(expr, ast.UnaryExpr):
            return f"{expr.op}{self._maybe_paren(expr.operand)}"
        if isinstance(expr, ast.BinaryExpr):
            left = self._maybe_paren(expr.left)
            right = self._maybe_paren(expr.right)
            return f"{left} {expr.op} {right}"
        if isinstance(expr, ast.RecvExpr):
            return f"<-{self._maybe_paren(expr.chan)}"
        if isinstance(expr, ast.CallExpr):
            args = ", ".join(self.expr_str(a) for a in expr.args)
            return f"{self.expr_str(expr.func)}({args})"
        if isinstance(expr, ast.SelectorExpr):
            return f"{self._maybe_paren(expr.recv)}.{expr.name}"
        if isinstance(expr, ast.IndexExpr):
            return f"{self._maybe_paren(expr.seq)}[{self.expr_str(expr.index)}]"
        if isinstance(expr, ast.MakeExpr):
            if expr.size is not None:
                return f"make({self.type_str(expr.type)}, {self.expr_str(expr.size)})"
            return f"make({self.type_str(expr.type)})"
        if isinstance(expr, ast.CompositeLit):
            fields = ", ".join(f"{n}: {self.expr_str(v)}" for n, v in expr.fields)
            return f"{expr.type_name}{{{fields}}}"
        if isinstance(expr, ast.FuncLit):
            raise TypeError("function literals print only as statements")
        raise TypeError(f"cannot print expression {type(expr).__name__}")

    def _maybe_paren(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.BinaryExpr):
            return f"({self.expr_str(expr)})"
        return self.expr_str(expr)


def print_file(file: ast.File) -> str:
    """Render a parsed MiniGo file back to source text."""
    return Printer().print_file(file)
