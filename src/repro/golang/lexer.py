"""Tokenizer for MiniGo, the Go subset analyzed by this reproduction.

MiniGo keeps Go's surface syntax for everything GCatch/GFix care about:
goroutines, channels, ``select``, ``defer``, mutexes, struct types, and the
``testing`` idioms. Every token carries a precise source position so that
detector reports and GFix patches can refer back to source lines, exactly as
the paper's tooling does via ``go/ast``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = frozenset(
    [
        "package",
        "import",
        "func",
        "type",
        "struct",
        "interface",
        "var",
        "const",
        "chan",
        "go",
        "defer",
        "select",
        "case",
        "default",
        "if",
        "else",
        "for",
        "range",
        "return",
        "break",
        "continue",
        "switch",
        "map",
        "nil",
        "true",
        "false",
    ]
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<-",
    ":=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "...",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    ".",
]


class LexError(Exception):
    """Raised when the source contains a character sequence MiniGo cannot lex."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based line/col)."""

    kind: str  # 'ident', 'int', 'string', 'keyword', 'op', 'eof'
    text: str
    line: int
    col: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.text!r}, {self.line}:{self.col})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Converts MiniGo source text into a token stream.

    Implements Go's automatic semicolon insertion rule: a newline after an
    identifier, literal, ``return``/``break``/``continue``, ``++``/``--``, or
    a closing bracket inserts a ``;`` token. This lets the parser treat
    statements uniformly, as Go's own scanner does.
    """

    def __init__(self, source: str, filename: str = "<minigo>"):
        self.source = source
        self.filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1
        self._last_significant: Optional[Token] = None

    def tokens(self) -> List[Token]:
        """Lex the whole input, returning the token list ending with EOF."""
        out: List[Token] = []
        for token in self._iter_tokens():
            out.append(token)
        return out

    # ------------------------------------------------------------------
    # internals

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            inserted = self._skip_blank()
            if inserted is not None:
                self._last_significant = None
                yield inserted
                continue
            if self._pos >= len(self.source):
                if self._needs_semicolon():
                    self._last_significant = None
                    yield Token("op", ";", self._line, self._col)
                yield Token("eof", "", self._line, self._col)
                return
            token = self._next_token()
            self._last_significant = token
            yield token

    def _skip_blank(self) -> Optional[Token]:
        """Skip whitespace and comments; return an inserted ';' if ASI fires."""
        while self._pos < len(self.source):
            ch = self.source[self._pos]
            if ch == "\n":
                if self._needs_semicolon():
                    token = Token("op", ";", self._line, self._col)
                    self._advance()
                    return token
                self._advance()
            elif ch in " \t\r":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self.source) and self.source[self._pos] != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return None
        return None

    def _skip_block_comment(self) -> None:
        start_line, start_col = self._line, self._col
        self._advance()
        self._advance()
        while self._pos < len(self.source):
            if self.source[self._pos] == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()
        raise LexError("unterminated block comment", start_line, start_col)

    def _needs_semicolon(self) -> bool:
        last = self._last_significant
        if last is None:
            return False
        if last.kind in ("ident", "int", "string"):
            return True
        if last.kind == "keyword":
            return last.text in ("return", "break", "continue", "true", "false", "nil")
        if last.kind == "op":
            return last.text in (")", "}", "]", "++", "--")
        return False

    def _next_token(self) -> Token:
        ch = self.source[self._pos]
        line, col = self._line, self._col
        if _is_ident_start(ch):
            return self._lex_ident(line, col)
        if ch.isdigit():
            return self._lex_number(line, col)
        if ch == '"':
            return self._lex_string(line, col)
        for op in _OPERATORS:
            if self.source.startswith(op, self._pos):
                for _ in op:
                    self._advance()
                return Token("op", op, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def _lex_ident(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self.source) and _is_ident_char(self.source[self._pos]):
            self._advance()
        text = self.source[start : self._pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self.source) and self.source[self._pos].isdigit():
            self._advance()
        return Token("int", self.source[start : self._pos], line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self._pos >= len(self.source):
                raise LexError("unterminated string literal", line, col)
            ch = self.source[self._pos]
            if ch == "\n":
                raise LexError("newline in string literal", line, col)
            if ch == '"':
                self._advance()
                return Token("string", "".join(chars), line, col)
            if ch == "\\":
                self._advance()
                if self._pos >= len(self.source):
                    raise LexError("unterminated escape", line, col)
                esc = self.source[self._pos]
                chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                self._advance()
            else:
                chars.append(ch)
                self._advance()

    def _peek(self, offset: int) -> str:
        idx = self._pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self) -> None:
        if self.source[self._pos] == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        self._pos += 1


def tokenize(source: str, filename: str = "<minigo>") -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list ending in EOF."""
    return Lexer(source, filename).tokens()
