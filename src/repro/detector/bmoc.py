"""The BMOC detector: Algorithm 1 of the paper, end to end.

For every channel in the program: disentangle (compute scope and Pset),
enumerate per-goroutine paths and path combinations, compute suspicious
groups, encode Φ_R ∧ Φ_B and hand it to the solver. Each satisfiable group
becomes a bug report carrying the witness schedule.

``disentangle=False`` reproduces the paper's ablation (§5.2): every channel
is analyzed with *all* primitives in the whole program starting from
``main``, which is dramatically slower — the measurement behind the
">115x slowdown" result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.alias import run_alias_analysis
from repro.analysis.callgraph import build_call_graph
from repro.analysis.dependency import build_dependency_graph, compute_pset
from repro.analysis.primitives import Primitive, find_primitives
from repro.analysis.scope import Scope, compute_all_scopes
from repro.constraints.encoding import StopPoint, encode
from repro.constraints.session import DEFAULT_SOLVER_MODE, SOLVER_MODES, SolverSession
from repro.constraints.solver import TIMEOUT, solve_detailed
from repro.obs import (
    NULL,
    STAGE_ALIAS,
    STAGE_CALLGRAPH,
    STAGE_DEPGRAPH,
    STAGE_DISENTANGLE,
    STAGE_ENCODE,
    STAGE_PATH_ENUM,
    STAGE_SOLVE,
    STAGE_SUSPICIOUS,
)
from repro.detector.paths import (
    OpEvent,
    PathCombination,
    PathEnumerator,
    SelectChoice,
    _definition_counts,
    enumerate_combinations,
)
from repro.detector.reporting import BlockedOp, BugReport, dedup_reports
from repro.detector.suspicious import enumerate_groups
from repro.resilience.faultinject import maybe_fault


class BudgetExceeded(Exception):
    """A per-primitive analysis budget ran out (wall clock or solver nodes)."""


class AnalysisBudget:
    """Per-primitive effort limits (the paper's per-package Z3 timeout).

    ``wall_seconds`` caps one primitive's total analysis wall-clock time;
    ``solver_nodes`` caps the total decision-procedure nodes it may spend
    across all its solver calls; ``max_nodes_per_solve`` caps any single
    call (defaults to the solver's own :data:`~repro.constraints.solver.MAX_NODES`).
    The budget is consulted between combinations and before every solve,
    so exceeding it degrades gracefully: reports found so far are kept and
    the primitive is marked TIMEOUT.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        solver_nodes: Optional[int] = None,
        max_nodes_per_solve: Optional[int] = None,
    ):
        self.wall_seconds = wall_seconds
        self.solver_nodes = solver_nodes
        self.max_nodes_per_solve = max_nodes_per_solve
        self.deadline = (
            time.perf_counter() + wall_seconds if wall_seconds is not None else None
        )
        self.nodes_left = solver_nodes

    def check(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise BudgetExceeded("wall-clock budget exhausted")
        if self.nodes_left is not None and self.nodes_left <= 0:
            raise BudgetExceeded("solver-node budget exhausted")

    def per_solve_nodes(self) -> Optional[int]:
        if self.nodes_left is None:
            return self.max_nodes_per_solve
        if self.max_nodes_per_solve is None:
            return self.nodes_left
        return min(self.nodes_left, self.max_nodes_per_solve)

    def charge(self, nodes: int) -> None:
        if self.nodes_left is not None:
            self.nodes_left -= nodes


@dataclass
class DetectionStats:
    channels_analyzed: int = 0
    channels_failed: int = 0  # channels whose analysis crashed (firewalled)
    combinations: int = 0
    groups_checked: int = 0
    solver_calls: int = 0
    sat_results: int = 0
    solver_timeouts: int = 0  # solver calls that hit their node budget
    analysis_timeouts: int = 0  # primitives whose AnalysisBudget ran out
    elapsed_seconds: float = 0.0
    per_channel_seconds: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "DetectionStats") -> None:
        """Fold another shard's stats into this one (repro.engine)."""
        self.channels_analyzed += other.channels_analyzed
        self.channels_failed += other.channels_failed
        self.combinations += other.combinations
        self.groups_checked += other.groups_checked
        self.solver_calls += other.solver_calls
        self.sat_results += other.sat_results
        self.solver_timeouts += other.solver_timeouts
        self.analysis_timeouts += other.analysis_timeouts
        self.per_channel_seconds.update(other.per_channel_seconds)


@dataclass
class DetectionResult:
    reports: List[BugReport]
    stats: DetectionStats

    def bmoc_channel_bugs(self) -> List[BugReport]:
        return [r for r in self.reports if r.category == "bmoc-chan"]

    def bmoc_mutex_bugs(self) -> List[BugReport]:
        return [r for r in self.reports if r.category == "bmoc-mutex"]


class BMOCDetector:
    """Detects blocking misuse-of-channel bugs in a lowered program."""

    def __init__(
        self,
        program,
        disentangle: bool = True,
        max_loop_unroll: int = 2,
        prune_infeasible: bool = True,
        collector=None,
        solver_max_nodes: Optional[int] = None,
        solver_mode: str = DEFAULT_SOLVER_MODE,
    ):
        if solver_mode not in SOLVER_MODES:
            raise ValueError(
                f"unknown solver mode: {solver_mode!r} "
                f"(valid modes: {', '.join(SOLVER_MODES)})"
            )
        self.program = program
        self.disentangle = disentangle
        self.max_loop_unroll = max_loop_unroll
        self.prune_infeasible = prune_infeasible
        self.solver_max_nodes = solver_max_nodes
        self.solver_mode = solver_mode
        self.collector = collector or NULL
        with self.collector.span(STAGE_CALLGRAPH):
            self.call_graph = build_call_graph(program)
        with self.collector.span(STAGE_ALIAS):
            self.alias = run_alias_analysis(program, self.call_graph)
        with self.collector.span(STAGE_DEPGRAPH):
            self.pmap = find_primitives(program, self.call_graph, self.alias)
            self.dep_graph = build_dependency_graph(program, self.call_graph, self.pmap)
        with self.collector.span(STAGE_DISENTANGLE):
            self.scopes = compute_all_scopes(self.pmap, self.call_graph)
        # shared across channels: the program-wide definition counts every
        # per-root PathEnumerator needs, and the per-channel Pset memo also
        # consumed by the engine's fingerprinting pass
        self._def_counts = _definition_counts(program)
        self._pset_memo: Dict[int, List[Primitive]] = {}

    def pset_of(self, channel: Primitive) -> List[Primitive]:
        """The channel's Pset (paper §4.2), derived once and shared between
        the analysis itself and the engine's shard fingerprinting."""
        pset = self._pset_memo.get(id(channel))
        if pset is None:
            pset = compute_pset(channel, self.dep_graph, self.scopes)
            self._pset_memo[id(channel)] = pset
        return pset

    def for_shard(self, collector) -> "BMOCDetector":
        """A shallow clone sharing every analysis artifact but reporting
        into its own collector — the unit the engine hands to pool workers
        (the span stack is per-collector, so shards must not share one)."""
        clone = object.__new__(BMOCDetector)
        clone.__dict__.update(self.__dict__)
        clone.collector = collector or NULL
        return clone

    # -- public ---------------------------------------------------------------

    def detect(self, firewall=None) -> DetectionResult:
        """Analyze every channel; with a ``firewall`` (a
        :class:`repro.resilience.Firewall`) each channel is its own
        isolation unit — one crashing analysis loses only that channel's
        reports and is counted in ``stats.channels_failed``."""
        start = time.perf_counter()
        stats = DetectionStats()
        reports: List[BugReport] = []
        for channel in self.channels_to_analyze():
            chan_start = time.perf_counter()
            stats.channels_analyzed += 1
            if firewall is None:
                shard_reports, _ = self.analyze_channel(channel, stats)
            else:
                guarded = firewall.call(
                    lambda channel=channel: self.analyze_channel(channel, stats),
                    site="shard",
                    label=str(channel.site),
                )
                if not guarded.ok:
                    stats.channels_failed += 1
                    continue
                shard_reports, _ = guarded.value
            reports.extend(shard_reports)
            stats.per_channel_seconds[str(channel.site)] = time.perf_counter() - chan_start
        stats.elapsed_seconds = time.perf_counter() - start
        if self.collector:
            self.collector.count("detect.channels", stats.channels_analyzed)
            self.collector.count("detect.groups", stats.groups_checked)
        return DetectionResult(reports=dedup_reports(reports), stats=stats)

    def channels_to_analyze(self) -> List[Primitive]:
        """The per-primitive analysis units, in deterministic program order.

        Done channels are excluded: they are closed by the runtime, not the
        program, so waiting on them forever is normal behaviour.
        """
        return [c for c in self.pmap.channels() if c.site.kind != "ctxdone"]

    # -- per-channel analysis ----------------------------------------------------

    def analyze_channel(
        self,
        channel: Primitive,
        stats: DetectionStats,
        budget: Optional[AnalysisBudget] = None,
    ) -> Tuple[List[BugReport], bool]:
        """Analyze one channel; returns ``(reports, timed_out)``.

        When ``budget`` runs out mid-analysis the reports found so far are
        returned with ``timed_out=True`` — the engine records the TIMEOUT
        and moves on to the next primitive.
        """
        reports: List[BugReport] = []
        # one incremental solver session per primitive: all of this
        # channel's suspicious groups solve inside it (batched mode)
        session = (
            SolverSession(self.collector) if self.solver_mode == "batched" else None
        )
        try:
            self._analyze_channel(channel, stats, reports, budget, session)
            return reports, False
        except BudgetExceeded:
            stats.analysis_timeouts += 1
            if self.collector:
                self.collector.count("engine.timeout")
            return reports, True

    def _analyze_channel(
        self,
        channel: Primitive,
        stats: DetectionStats,
        reports: List[BugReport],
        budget: Optional[AnalysisBudget] = None,
        session: Optional[SolverSession] = None,
    ) -> None:
        collector = self.collector
        if self.disentangle:
            scope = self.scopes[channel]
            with collector.span(STAGE_DISENTANGLE):
                pset = self.pset_of(channel)
            roots = self._roots_for(channel, scope)
            scope_functions = scope.functions
        else:
            # ablation: the whole program and every primitive, from main().
            # Done channels stay excluded in both modes: only the runtime
            # can unblock them, so requiring them to proceed is meaningless.
            pset = [p for p in self.pmap if p.site.kind != "ctxdone"]
            scope_functions = set(self.program.functions)
            roots = ["main"] if "main" in self.program.functions else []
        if collector:
            collector.observe("pset.size", len(pset))
            collector.observe("scope.functions", len(scope_functions))
        for root in roots:
            enumerator = PathEnumerator(
                self.program,
                self.call_graph,
                self.alias,
                self.pmap,
                pset,
                scope_functions,
                max_loop_unroll=self.max_loop_unroll,
                prune_infeasible=self.prune_infeasible,
                collector=collector if collector else None,
                def_counts=self._def_counts,
            )
            with collector.span(STAGE_PATH_ENUM):
                combos = enumerate_combinations(enumerator, root)
            stats.combinations += len(combos)
            if collector:
                collector.count("paths.combinations", len(combos))
            for combo in combos:
                if budget is not None:
                    budget.check()
                reports.extend(
                    self._check_combination(
                        channel, combo, scope_functions, stats, budget, session
                    )
                )

    def _roots_for(self, channel: Primitive, scope: Scope) -> List[str]:
        if scope.lca is not None:
            return [scope.lca]
        creation = [op.function for op in channel.operations if op.kind == "create"]
        return [f for f in creation if f in self.program.functions][:1]

    def _check_combination(
        self,
        channel: Primitive,
        combo: PathCombination,
        scope_functions,
        stats: DetectionStats,
        budget: Optional[AnalysisBudget] = None,
        session: Optional[SolverSession] = None,
    ) -> List[BugReport]:
        collector = self.collector
        reports: List[BugReport] = []
        with collector.span(STAGE_SUSPICIOUS):
            groups = [
                group
                for group in enumerate_groups(combo, collector if collector else None)
                if self._group_targets_channel(group, channel)
            ]
        max_nodes = self.solver_max_nodes
        for group in groups:
            if budget is not None:
                budget.check()
                max_nodes = budget.per_solve_nodes() or self.solver_max_nodes
            stats.groups_checked += 1
            maybe_fault(STAGE_ENCODE, str(channel.site))
            stats.solver_calls += 1
            maybe_fault(STAGE_SOLVE, str(channel.site))
            if session is not None:
                outcome = session.solve_group(combo, group, max_nodes=max_nodes)
            else:
                with collector.span(STAGE_ENCODE):
                    system = encode(combo, group, collector if collector else None)
                with collector.span(STAGE_SOLVE):
                    outcome = solve_detailed(
                        system, collector if collector else None, max_nodes=max_nodes
                    )
            if budget is not None:
                budget.charge(outcome.nodes)
            if outcome.outcome == TIMEOUT:
                stats.solver_timeouts += 1
            if outcome.solution is None:
                continue
            stats.sat_results += 1
            reports.append(
                self._report(channel, combo, group, outcome, scope_functions)
            )
        return reports

    def _group_targets_channel(self, group: List[StopPoint], channel: Primitive) -> bool:
        """Attribute a group to the channel under analysis (avoids
        re-reporting the same mutex-only group once per channel)."""
        for stop in group:
            event = stop.event
            if isinstance(event, OpEvent) and event.prim is channel:
                return True
            if isinstance(event, SelectChoice):
                if any(case.prim is channel for case in event.pset_cases):
                    return True
        return False

    def _report(
        self,
        channel: Primitive,
        combo: PathCombination,
        group: List[StopPoint],
        outcome,
        scope_functions,
    ) -> BugReport:
        blocked: List[BlockedOp] = []
        involves_mutex = False
        for stop in group:
            event = stop.event
            if isinstance(event, OpEvent):
                if event.prim.is_mutex:
                    involves_mutex = True
                blocked.append(
                    BlockedOp(
                        kind=event.kind,
                        line=event.line,
                        function=self._function_of(combo, stop.gid),
                        prim_label=event.prim.site.label or str(event.prim.site),
                    )
                )
            elif isinstance(event, SelectChoice):
                labels = ",".join(c.prim.site.label for c in event.pset_cases)
                blocked.append(
                    BlockedOp(
                        kind="select",
                        line=event.line,
                        function=self._function_of(combo, stop.gid),
                        prim_label=labels,
                    )
                )
        category = "bmoc-mutex" if involves_mutex else "bmoc-chan"
        description = (
            f"goroutine(s) block forever on channel {channel.site.label!r} "
            f"(created at {channel.site.function}:{channel.site.line})"
        )
        return BugReport(
            category=category,
            primitive=channel,
            blocked_ops=blocked,
            description=description,
            combination=combo,
            stops=list(group),
            witness=outcome.solution,
            scope_functions=frozenset(scope_functions),
            clause_count=outcome.clauses,
            solver_nodes=outcome.nodes,
            solver_outcome=outcome.outcome,
        )

    def _function_of(self, combo: PathCombination, gid: int) -> str:
        for goroutine in combo.goroutines:
            if goroutine.gid == gid:
                return goroutine.path.function
        return "?"


def detect_bmoc(
    program,
    disentangle: bool = True,
    max_loop_unroll: int = 2,
    prune_infeasible: bool = True,
    collector=None,
    solver_mode: str = DEFAULT_SOLVER_MODE,
) -> DetectionResult:
    """Convenience wrapper: run the BMOC detector over a program."""
    return BMOCDetector(
        program,
        disentangle=disentangle,
        max_loop_unroll=max_loop_unroll,
        prune_infeasible=prune_infeasible,
        collector=collector,
        solver_mode=solver_mode,
    ).detect()
