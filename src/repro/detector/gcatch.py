"""GCatch: the full detection system (Figure 2, left half).

Combines the BMOC detector with the five traditional checkers and returns
every report, grouped the way Table 1 groups them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.detector.bmoc import BMOCDetector, DetectionResult
from repro.obs import NULL, Collector
from repro.detector.reporting import BugReport, dedup_reports
from repro.detector.traditional.double_lock import check_double_lock
from repro.detector.traditional.fatal_goroutine import check_fatal_goroutine
from repro.detector.traditional.forget_unlock import check_forget_unlock
from repro.detector.traditional.lock_order import check_lock_order
from repro.detector.traditional.struct_race import check_struct_races
from repro.ssa import ir

TABLE1_CATEGORIES = [
    "bmoc-chan",
    "bmoc-mutex",
    "forget-unlock",
    "double-lock",
    "conflict-lock",
    "struct-race",
    "fatal-goroutine",
]


@dataclass
class GCatchResult:
    bmoc: DetectionResult
    traditional: List[BugReport] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    # the run's observability collector, when detection ran with one; its
    # stage table carries the per-stage timings behind elapsed_seconds
    trace: Optional[Collector] = None

    def all_reports(self) -> List[BugReport]:
        return list(self.bmoc.reports) + list(self.traditional)

    def by_category(self) -> Dict[str, List[BugReport]]:
        out: Dict[str, List[BugReport]] = {cat: [] for cat in TABLE1_CATEGORIES}
        for report in self.all_reports():
            out.setdefault(report.category, []).append(report)
        return out

    def count(self, category: str) -> int:
        return len(self.by_category().get(category, []))


def run_gcatch(
    program: ir.Program, disentangle: bool = True, collector: Optional[Collector] = None
) -> GCatchResult:
    """Run the complete GCatch pipeline over a lowered program.

    ``collector`` (see :mod:`repro.obs`) receives per-stage spans for every
    box of the Figure 2 pipeline plus effort counters; the same collector
    is attached to the returned result as ``.trace``.
    """
    obs = collector or NULL
    start = time.perf_counter()
    with obs.span("gcatch"):
        bmoc = BMOCDetector(program, disentangle=disentangle, collector=obs)
        bmoc_result = bmoc.detect()
        call_graph = bmoc.call_graph
        alias = bmoc.alias
        traditional: List[BugReport] = []
        with obs.span("traditional-checkers"):
            traditional.extend(check_forget_unlock(program, alias))
            traditional.extend(check_double_lock(program, alias))
            traditional.extend(check_lock_order(program, alias))
            traditional.extend(check_struct_races(program, alias))
            traditional.extend(check_fatal_goroutine(program, call_graph))
    result = GCatchResult(bmoc=bmoc_result, traditional=dedup_reports(traditional))
    result.elapsed_seconds = time.perf_counter() - start
    if obs:
        obs.count("detect.reports", len(result.all_reports()))
        result.trace = obs
    return result
