"""GCatch: the full detection system (Figure 2, left half).

Combines the BMOC detector with the five traditional checkers and returns
every report, grouped the way Table 1 groups them.

``run_gcatch`` is also the front door of :mod:`repro.engine`: pass
``jobs`` > 1 (or set ``REPRO_JOBS``), a result ``cache``, or a per-primitive
``budget`` and detection runs through the sharded engine instead of the
serial loop — with byte-identical report sets (the parity suite asserts
this over the whole corpus).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.detector.bmoc import BMOCDetector, DetectionResult
from repro.obs import NULL, Collector
from repro.detector.reporting import BugReport, dedup_reports
from repro.detector.traditional.double_lock import check_double_lock
from repro.detector.traditional.fatal_goroutine import check_fatal_goroutine
from repro.detector.traditional.forget_unlock import check_forget_unlock
from repro.detector.traditional.lock_order import check_lock_order
from repro.detector.traditional.struct_race import check_struct_races
from repro.ssa import ir

TABLE1_CATEGORIES = [
    "bmoc-chan",
    "bmoc-mutex",
    "forget-unlock",
    "double-lock",
    "conflict-lock",
    "struct-race",
    "fatal-goroutine",
]


@dataclass
class GCatchResult:
    bmoc: DetectionResult
    traditional: List[BugReport] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    # the run's observability collector, when detection ran with one; its
    # stage table carries the per-stage timings behind elapsed_seconds
    trace: Optional[Collector] = None
    # per-shard records when detection ran through repro.engine
    # (List[repro.engine.ShardInfo]); None on the serial path
    shards: Optional[List] = None

    def all_reports(self) -> List[BugReport]:
        return list(self.bmoc.reports) + list(self.traditional)

    def timed_out_shards(self) -> List:
        """Shards whose per-primitive budget ran out (engine runs only)."""
        return [s for s in (self.shards or []) if s.outcome == "timeout"]

    def has_timeouts(self) -> bool:
        """Any solver node-budget TIMEOUT or per-primitive budget TIMEOUT."""
        return bool(
            self.bmoc.stats.solver_timeouts
            or self.bmoc.stats.analysis_timeouts
            or self.timed_out_shards()
        )

    def by_category(self) -> Dict[str, List[BugReport]]:
        out: Dict[str, List[BugReport]] = {cat: [] for cat in TABLE1_CATEGORIES}
        for report in self.all_reports():
            out.setdefault(report.category, []).append(report)
        return out

    def count(self, category: str) -> int:
        return len(self.by_category().get(category, []))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit ``jobs`` beats ``REPRO_JOBS`` beats serial (1)."""
    if jobs is not None:
        return max(1, jobs)
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "") or 1))
    except ValueError:
        return 1


def run_gcatch(
    program: ir.Program,
    disentangle: bool = True,
    collector: Optional[Collector] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    cache=None,
    budget_wall_seconds: Optional[float] = None,
    budget_solver_nodes: Optional[int] = None,
) -> GCatchResult:
    """Run the complete GCatch pipeline over a lowered program.

    ``collector`` (see :mod:`repro.obs`) receives per-stage spans for every
    box of the Figure 2 pipeline plus effort counters; the same collector
    is attached to the returned result as ``.trace``.

    ``jobs``/``backend``/``cache``/``budget_*`` route detection through the
    sharded :mod:`repro.engine` (defaults: ``REPRO_JOBS``/``REPRO_BACKEND``
    env vars, no cache, no budget). With everything at its default the
    original serial path runs unchanged.
    """
    resolved_jobs = resolve_jobs(jobs)
    resolved_backend = backend or os.environ.get("REPRO_BACKEND") or "thread"
    if (
        resolved_jobs > 1
        or cache is not None
        or budget_wall_seconds is not None
        or budget_solver_nodes is not None
    ):
        from repro.engine import EngineConfig, run_engine

        config = EngineConfig(
            jobs=resolved_jobs,
            backend=resolved_backend,
            cache=cache,
            budget_wall_seconds=budget_wall_seconds,
            budget_solver_nodes=budget_solver_nodes,
            disentangle=disentangle,
        )
        return run_engine(program, config=config, collector=collector)
    obs = collector or NULL
    start = time.perf_counter()
    with obs.span("gcatch"):
        bmoc = BMOCDetector(program, disentangle=disentangle, collector=obs)
        bmoc_result = bmoc.detect()
        call_graph = bmoc.call_graph
        alias = bmoc.alias
        traditional: List[BugReport] = []
        with obs.span("traditional-checkers"):
            traditional.extend(check_forget_unlock(program, alias))
            traditional.extend(check_double_lock(program, alias))
            traditional.extend(check_lock_order(program, alias))
            traditional.extend(check_struct_races(program, alias))
            traditional.extend(check_fatal_goroutine(program, call_graph))
    result = GCatchResult(bmoc=bmoc_result, traditional=dedup_reports(traditional))
    result.elapsed_seconds = time.perf_counter() - start
    if obs:
        obs.count("detect.reports", len(result.all_reports()))
        result.trace = obs
    return result
