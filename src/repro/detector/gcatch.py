"""GCatch: the full detection system (Figure 2, left half).

Combines the BMOC detector with the five traditional checkers and returns
every report, grouped the way Table 1 groups them.

``run_gcatch`` is also the front door of :mod:`repro.engine`: pass
``jobs`` > 1 (or set ``REPRO_JOBS``), a result ``cache``, or a per-primitive
``budget`` and detection runs through the sharded engine instead of the
serial loop — with byte-identical report sets (the parity suite asserts
this over the whole corpus).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.detector.bmoc import BMOCDetector, DetectionResult, DetectionStats
from repro.obs import NULL, Collector
from repro.resilience.firewall import Firewall, RetryPolicy
from repro.resilience.incidents import Incident, overall_health
from repro.detector.reporting import BugReport, dedup_reports
from repro.detector.traditional.double_lock import check_double_lock
from repro.detector.traditional.fatal_goroutine import check_fatal_goroutine
from repro.detector.traditional.forget_unlock import check_forget_unlock
from repro.detector.traditional.lock_order import check_lock_order
from repro.detector.traditional.struct_race import check_struct_races
from repro.ssa import ir

TABLE1_CATEGORIES = [
    "bmoc-chan",
    "bmoc-mutex",
    "forget-unlock",
    "double-lock",
    "conflict-lock",
    "struct-race",
    "fatal-goroutine",
]


@dataclass
class GCatchResult:
    bmoc: DetectionResult
    traditional: List[BugReport] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    # the run's observability collector, when detection ran with one; its
    # stage table carries the per-stage timings behind elapsed_seconds
    trace: Optional[Collector] = None
    # per-shard records when detection ran through repro.engine
    # (List[repro.engine.ShardInfo]); None on the serial path
    shards: Optional[List] = None
    # crashes intercepted by the resilience firewall, in unit order
    incidents: List[Incident] = field(default_factory=list)
    # isolation-unit accounting on the serial path (the engine derives
    # these from its shard records instead)
    units_total: int = 0
    units_failed: int = 0

    def all_reports(self) -> List[BugReport]:
        return list(self.bmoc.reports) + list(self.traditional)

    def timed_out_shards(self) -> List:
        """Shards whose per-primitive budget ran out (engine runs only)."""
        return [s for s in (self.shards or []) if s.outcome == "timeout"]

    def failed_shards(self) -> List:
        """Shards that crashed into an incident (engine runs only)."""
        return [s for s in (self.shards or []) if s.outcome == "failed"]

    def has_timeouts(self) -> bool:
        """Any solver node-budget TIMEOUT or per-primitive budget TIMEOUT."""
        return bool(
            self.bmoc.stats.solver_timeouts
            or self.bmoc.stats.analysis_timeouts
            or self.timed_out_shards()
        )

    def health(self) -> str:
        """``ok`` / ``degraded`` / ``failed`` — see :mod:`repro.resilience`."""
        if self.shards is not None:
            return overall_health(
                self.incidents, len(self.shards), len(self.failed_shards())
            )
        return overall_health(self.incidents, self.units_total, self.units_failed)

    def by_category(self) -> Dict[str, List[BugReport]]:
        out: Dict[str, List[BugReport]] = {cat: [] for cat in TABLE1_CATEGORIES}
        for report in self.all_reports():
            out.setdefault(report.category, []).append(report)
        return out

    def count(self, category: str) -> int:
        return len(self.by_category().get(category, []))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Explicit ``jobs`` beats ``REPRO_JOBS`` beats serial (1)."""
    if jobs is not None:
        return max(1, jobs)
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "") or 1))
    except ValueError:
        return 1


def resolve_max_retries(max_retries: Optional[int] = None) -> int:
    """Explicit ``max_retries`` beats ``REPRO_MAX_RETRIES`` beats 1."""
    if max_retries is not None:
        return max(0, max_retries)
    try:
        return max(0, int(os.environ.get("REPRO_MAX_RETRIES", "") or 1))
    except ValueError:
        return 1


def resolve_solver_mode(solver_mode: Optional[str] = None) -> str:
    """Explicit ``solver_mode`` beats ``REPRO_SOLVER_MODE`` beats batched.

    Unknown names raise immediately with the valid set — a typo'd mode
    would otherwise silently analyze with the wrong pipeline.
    """
    from repro.constraints.session import DEFAULT_SOLVER_MODE, SOLVER_MODES

    mode = solver_mode or os.environ.get("REPRO_SOLVER_MODE") or DEFAULT_SOLVER_MODE
    if mode not in SOLVER_MODES:
        raise ValueError(
            f"unknown solver mode: {mode!r} (valid modes: {', '.join(SOLVER_MODES)})"
        )
    return mode


def resolve_checkers(checkers=None) -> Optional[List[str]]:
    """Explicit ``checkers`` beats ``REPRO_CHECKERS`` beats all (None).

    Names are *not* validated here: an unknown name flows into its own
    analysis unit, crashes against the valid-set error message and
    surfaces as an incident — a typo degrades the run, never aborts it.
    """
    if checkers is not None:
        return list(checkers)
    env = os.environ.get("REPRO_CHECKERS")
    if not env:
        return None
    return [name.strip() for name in env.split(",") if name.strip()]


#: serial-path checker registry, in the fixed pipeline order
_SERIAL_CHECKERS = {
    "forget-unlock": lambda program, bmoc: check_forget_unlock(program, bmoc.alias),
    "double-lock": lambda program, bmoc: check_double_lock(program, bmoc.alias),
    "conflict-lock": lambda program, bmoc: check_lock_order(program, bmoc.alias),
    "struct-race": lambda program, bmoc: check_struct_races(program, bmoc.alias),
    "fatal-goroutine": lambda program, bmoc: check_fatal_goroutine(
        program, bmoc.call_graph
    ),
}


def _serial_checker(name: str, program: ir.Program, bmoc: BMOCDetector) -> List[BugReport]:
    runner = _SERIAL_CHECKERS.get(name)
    if runner is None:
        raise ValueError(
            f"unknown traditional checker: {name!r} "
            f"(valid checkers: {', '.join(_SERIAL_CHECKERS)})"
        )
    return runner(program, bmoc)


def run_gcatch(
    program: ir.Program,
    disentangle: bool = True,
    collector: Optional[Collector] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    cache=None,
    budget_wall_seconds: Optional[float] = None,
    budget_solver_nodes: Optional[int] = None,
    max_retries: Optional[int] = None,
    retry_timeouts: bool = False,
    checkers=None,
    solver_mode: Optional[str] = None,
) -> GCatchResult:
    """Run the complete GCatch pipeline over a lowered program.

    ``collector`` (see :mod:`repro.obs`) receives per-stage spans for every
    box of the Figure 2 pipeline plus effort counters; the same collector
    is attached to the returned result as ``.trace``.

    ``jobs``/``backend``/``cache``/``budget_*`` route detection through the
    sharded :mod:`repro.engine` (defaults: ``REPRO_JOBS``/``REPRO_BACKEND``
    env vars, no cache, no budget). With everything at its default the
    original serial path runs unchanged — except that both paths now run
    behind the :mod:`repro.resilience` firewall: a crash in one channel's
    analysis or one traditional checker becomes an ``Incident`` on the
    result (``result.incidents``, ``result.health()``) and every other
    unit's reports are kept. ``max_retries`` (default: ``REPRO_MAX_RETRIES``
    env var, else 1) bounds transient-failure retries; ``checkers``
    (default: ``REPRO_CHECKERS`` env var, else all) selects traditional
    checkers by name.
    """
    resolved_jobs = resolve_jobs(jobs)
    resolved_backend = backend or os.environ.get("REPRO_BACKEND") or "thread"
    resolved_retries = resolve_max_retries(max_retries)
    resolved_checkers = resolve_checkers(checkers)
    resolved_solver_mode = resolve_solver_mode(solver_mode)
    if (
        resolved_jobs > 1
        or cache is not None
        or budget_wall_seconds is not None
        or budget_solver_nodes is not None
        or retry_timeouts
    ):
        from repro.engine import EngineConfig, run_engine

        config = EngineConfig(
            jobs=resolved_jobs,
            backend=resolved_backend,
            cache=cache,
            budget_wall_seconds=budget_wall_seconds,
            budget_solver_nodes=budget_solver_nodes,
            solver_mode=resolved_solver_mode,
            disentangle=disentangle,
            checkers=resolved_checkers,
            max_retries=resolved_retries,
            retry_timeouts=retry_timeouts,
        )
        return run_engine(program, config=config, collector=collector)
    obs = collector or NULL
    firewall = Firewall(
        collector=obs, policy=RetryPolicy(max_retries=resolved_retries)
    )
    units_total = 0
    units_failed = 0
    start = time.perf_counter()
    with obs.span("gcatch"):
        prepared = firewall.call(
            lambda: BMOCDetector(
                program,
                disentangle=disentangle,
                collector=obs,
                solver_mode=resolved_solver_mode,
            ),
            site="detect-init",
            label=program.filename or "",
        )
        if not prepared.ok:
            # pipeline-level crash before any per-unit analysis: a failed
            # run, reported structurally instead of via a traceback
            stats = DetectionStats()
            stats.elapsed_seconds = time.perf_counter() - start
            result = GCatchResult(
                bmoc=DetectionResult(reports=[], stats=stats),
                incidents=list(firewall.incidents),
            )
            result.elapsed_seconds = stats.elapsed_seconds
            if obs:
                result.trace = obs
            return result
        bmoc = prepared.value
        bmoc_result = bmoc.detect(firewall=firewall)
        units_total += bmoc_result.stats.channels_analyzed
        units_failed += bmoc_result.stats.channels_failed
        traditional: List[BugReport] = []
        names = (
            list(_SERIAL_CHECKERS) if resolved_checkers is None else resolved_checkers
        )
        with obs.span("traditional-checkers"):
            for name in names:
                units_total += 1
                guarded = firewall.call(
                    lambda name=name: _serial_checker(name, program, bmoc),
                    site="checker",
                    label=name,
                )
                if guarded.ok:
                    traditional.extend(guarded.value)
                else:
                    units_failed += 1
    result = GCatchResult(
        bmoc=bmoc_result,
        traditional=dedup_reports(traditional),
        incidents=list(firewall.incidents),
        units_total=units_total,
        units_failed=units_failed,
    )
    result.elapsed_seconds = time.perf_counter() - start
    if obs:
        obs.count("detect.reports", len(result.all_reports()))
        result.trace = obs
    return result
