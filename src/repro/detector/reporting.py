"""Bug report structures shared by the BMOC detector and the traditional
checkers, carrying everything §5.2 says a GCatch report contains: the buggy
primitive, the blocking operations, the path combination, related call
chains, the analysis scope, and the solver's witness schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.analysis.primitives import Primitive
from repro.constraints.solver import Solution
from repro.detector.paths import PathCombination


@dataclass
class BlockedOp:
    """One operation the detector proved can block forever."""

    kind: str
    line: int
    function: str
    prim_label: str

    def __str__(self) -> str:
        return f"{self.kind} on {self.prim_label} at {self.function}:{self.line}"


@dataclass
class BugReport:
    """A detected bug (BMOC or traditional)."""

    category: str  # 'bmoc-chan' | 'bmoc-mutex' | 'forget-unlock' | 'double-lock'
    #               | 'conflict-lock' | 'struct-race' | 'fatal-goroutine'
    primitive: Optional[Primitive]
    blocked_ops: List[BlockedOp] = field(default_factory=list)
    description: str = ""
    combination: Optional[PathCombination] = None
    stops: List[object] = field(default_factory=list)  # constraint StopPoints
    witness: Optional[Solution] = None
    scope_functions: FrozenSet[str] = frozenset()
    extra_lines: List[int] = field(default_factory=list)
    # solver effort behind this report (paper Table 6 analogue); zero for
    # the traditional checkers, which never touch the decision procedure
    clause_count: int = 0
    solver_nodes: int = 0
    solver_outcome: str = ""

    @property
    def lines(self) -> List[int]:
        lines = [op.line for op in self.blocked_ops]
        lines.extend(self.extra_lines)
        return sorted(set(lines))

    def identity(self) -> Tuple:
        """Dedup key: category + the (kind, label, line) of blocked ops."""
        ops = tuple(sorted((op.kind, op.prim_label, op.line) for op in self.blocked_ops))
        return (self.category, ops, tuple(self.extra_lines))

    def render(self) -> str:
        parts = [f"[{self.category}] {self.description}"]
        for op in self.blocked_ops:
            parts.append(f"  blocks forever: {op}")
        if self.witness is not None:
            parts.append(f"  witness: {self.witness.render()}")
        if self.scope_functions:
            parts.append(f"  scope: {', '.join(sorted(self.scope_functions))}")
        if self.clause_count:
            parts.append(
                f"  solver effort: {self.clause_count} clause(s), "
                f"{self.solver_nodes} node(s), {self.solver_outcome or '?'}"
            )
        return "\n".join(parts)


def dedup_reports(reports: List[BugReport]) -> List[BugReport]:
    seen = set()
    out: List[BugReport] = []
    for report in reports:
        key = report.identity()
        if key in seen:
            continue
        seen.add(key)
        out.append(report)
    return out
