"""Per-goroutine execution-path enumeration (paper §3.3).

GCatch enumerates, for every goroutine in a channel's analysis scope, all
execution paths restricted to that scope:

* inter-procedural DFS, but a call is only followed when the callee can
  (transitively) touch a primitive in ``Pset`` — otherwise it is skipped;
* loops with statically unknown trip counts are unrolled at most twice;
* branch conditions over read-only variables and constants are recorded so
  that path combinations with contradictory conditions can be filtered.

A path is a sequence of events: synchronization operations on Pset
primitives, goroutine spawns, select choices, and branch decisions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.alias import AliasAnalysis
from repro.analysis.callgraph import CallGraph, transitive_touchers
from repro.analysis.primitives import Primitive, PrimitiveMap
from repro.ssa import ir
from repro.ssa.builder import (
    DEFER_CLOSE,
    DEFER_LOCK,
    DEFER_RLOCK,
    DEFER_RUNLOCK,
    DEFER_SEND,
    DEFER_UNLOCK,
    DEFER_WG_DONE,
)

MAX_PATHS_PER_GOROUTINE = 128
MAX_LOOP_UNROLL = 2
MAX_COMBINATIONS = 512


# ---------------------------------------------------------------------------
# path events


@dataclass(eq=False)
class OpEvent:
    """A synchronization operation on a Pset primitive."""

    kind: str  # 'send','recv','close','lock','rlock','unlock','runlock','add','done','wait'
    prim: Primitive
    line: int
    instr: ir.Instr
    from_select: bool = False

    @property
    def blocking(self) -> bool:
        return self.kind in ("send", "recv", "lock", "rlock", "wait", "condwait")

    def __repr__(self) -> str:
        return f"{self.kind}({self.prim.site.label})@{self.line}"


@dataclass(eq=False)
class SelectChoice:
    """A select occurrence; the enumerator fixed which branch the path takes.

    ``chosen`` is an OpEvent for a Pset case, the string ``"other"`` for a
    case whose channel is outside Pset, or ``"default"``.
    """

    instr: ir.Select
    line: int
    chosen: object  # OpEvent | 'other' | 'default'
    pset_cases: List[OpEvent] = field(default_factory=list)
    has_other_cases: bool = False

    @property
    def has_default(self) -> bool:
        return self.instr is not None and self.instr.default_target is not None

    def __repr__(self) -> str:
        return f"select@{self.line}->{self.chosen!r}"


@dataclass(eq=False)
class SpawnEvent:
    child_func: str
    line: int
    instr: ir.Go

    def __repr__(self) -> str:
        return f"go {self.child_func}@{self.line}"


@dataclass(eq=False)
class BranchEvent:
    var: str
    op: str
    const: object
    taken: bool
    read_only: bool
    line: int

    def __repr__(self) -> str:
        return f"[{self.var}{self.op}{self.const}={self.taken}]@{self.line}"


@dataclass(eq=False)
class LoopEvent:
    """Records that a loop body was entered ``iterations`` times on this path."""

    cond_key: str
    iterations: int
    line: int

    def __repr__(self) -> str:
        return f"loop({self.cond_key})x{self.iterations}"


PathEvent = object  # union of the event classes above


@dataclass(eq=False)
class Path:
    """One enumerated execution path of one goroutine.

    ``cut`` marks a path the enumerator truncated at the loop-unroll limit:
    the real execution keeps iterating past the recorded prefix. The
    encoder uses it to model *repeatable* operations inside the cut loop
    (a send that will be attempted again on every further iteration).
    """

    function: str
    events: List[PathEvent] = field(default_factory=list)
    cut: bool = False

    def op_events(self) -> List[OpEvent]:
        out: List[OpEvent] = []
        for event in self.events:
            if isinstance(event, OpEvent):
                out.append(event)
            elif isinstance(event, SelectChoice) and isinstance(event.chosen, OpEvent):
                out.append(event.chosen)
        return out

    def blocking_points(self) -> List[int]:
        """Indexes of events at which this path could block forever."""
        out: List[int] = []
        for i, event in enumerate(self.events):
            if isinstance(event, OpEvent) and event.blocking:
                out.append(i)
            elif isinstance(event, SelectChoice) and not event.has_default:
                # a select without default can block, but only when every
                # case is on a Pset primitive can blocking be proven
                if event.pset_cases and not event.has_other_cases:
                    out.append(i)
        return out

    def branch_events(self) -> List[BranchEvent]:
        return [e for e in self.events if isinstance(e, BranchEvent)]

    def loop_events(self) -> List[LoopEvent]:
        return [e for e in self.events if isinstance(e, LoopEvent)]

    def spawn_events(self) -> List[Tuple[int, SpawnEvent]]:
        return [(i, e) for i, e in enumerate(self.events) if isinstance(e, SpawnEvent)]

    def __repr__(self) -> str:
        return f"<Path {self.function}: {self.events!r}>"


# ---------------------------------------------------------------------------
# enumeration


class PathEnumerator:
    """Enumerates paths for one function given an analysis scope and Pset."""

    def __init__(
        self,
        program: ir.Program,
        call_graph: CallGraph,
        alias: AliasAnalysis,
        pmap: PrimitiveMap,
        pset: Sequence[Primitive],
        scope_functions: Set[str],
        max_loop_unroll: int = MAX_LOOP_UNROLL,
        prune_infeasible: bool = True,
        collector=None,
        def_counts: Optional[Dict[str, int]] = None,
    ):
        self.collector = collector
        self.program = program
        self.call_graph = call_graph
        self.alias = alias
        self.pmap = pmap
        self.pset = list(pset)
        self.pset_sites = {p.site for p in pset}
        self.scope_functions = scope_functions
        self.max_loop_unroll = max_loop_unroll
        self.prune_infeasible = prune_infeasible
        direct = {
            op.function for prim in pset for op in prim.operations if op.kind != "create"
        }
        self.relevant_functions = transitive_touchers(call_graph, direct)
        # program-wide, so the detector computes it once and shares it
        # across the per-root enumerators of every channel
        self._def_counts = (
            def_counts if def_counts is not None else _definition_counts(program)
        )
        self._prim_by_site = {p.site: p for p in pmap}

    # -- public ---------------------------------------------------------------

    def enumerate(self, function_name: str) -> List[Path]:
        func = self.program.functions.get(function_name)
        if func is None or func.entry is None:
            return [Path(function_name)]
        paths: List[Path] = []
        self._walk(func, func.entry, 0, [], [], {}, paths, call_stack=(function_name,), deferred=[])
        if not paths:
            paths.append(Path(function_name))
        enumerated = len(paths)
        if self.prune_infeasible:
            paths = [p for p in paths if conditions_satisfiable(p.branch_events())]
        if self.collector:
            self.collector.count("paths.enumerated", enumerated)
            self.collector.count("paths.infeasible-pruned", enumerated - len(paths))
        return paths[:MAX_PATHS_PER_GOROUTINE]

    # -- DFS ------------------------------------------------------------------

    def _walk(
        self,
        func: ir.Function,
        block: ir.Block,
        idx: int,
        events: List[PathEvent],
        loop_stack: List,
        visits: Dict[int, int],
        out: List[Path],
        call_stack: Tuple[str, ...],
        deferred: List[Tuple[str, List[ir.Operand], int]],
    ) -> None:
        if len(out) >= MAX_PATHS_PER_GOROUTINE:
            return
        instrs = block.instrs
        i = idx
        while i < len(instrs):
            instr = instrs[i]
            consumed = self._visit_instr(func, instr, events, out, call_stack, deferred)
            if consumed is False:
                return  # path terminated inside (e.g. inlined call diverged)
            i += 1
        terminator = block.terminator
        if terminator is None or isinstance(terminator, (ir.Return, ir.Panic)):
            self._finish_path(func, events, deferred, out, call_stack)
            return
        if isinstance(terminator, ir.Jump):
            self._enter_block(func, terminator.target, events, loop_stack, visits, out, call_stack, deferred)
            return
        if isinstance(terminator, ir.CondJump):
            info = terminator.branch_info
            # visits was pre-incremented on entry: >1 means a true revisit
            loop_count = visits.get(block.id, 0) - 1
            for taken, target in ((True, terminator.true_block), (False, terminator.false_block)):
                branch_events = list(events)
                if info is not None:
                    branch_events.append(
                        BranchEvent(
                            var=info.var or "?",
                            op=info.op,
                            const=info.const,
                            taken=taken,
                            read_only=self._is_read_only(info.var),
                            line=terminator.line,
                        )
                    )
                    if loop_count >= 1 and not taken:
                        # leaving a loop whose header we revisited: record the
                        # iteration count for the loop-mismatch filter
                        branch_events.append(
                            LoopEvent(
                                cond_key=f"{info.var}{info.op}{info.const}",
                                iterations=loop_count,
                                line=terminator.line,
                            )
                        )
                self._enter_block(
                    func, target, branch_events, loop_stack, dict(visits), out, call_stack, list(deferred)
                )
            return
        if isinstance(terminator, ir.Select):
            self._walk_select(func, terminator, events, loop_stack, visits, out, call_stack, deferred)
            return
        if isinstance(terminator, ir.RangeNext):
            op = self._op_for(terminator, "recv", terminator.chan, terminator.line)
            # body branch: the receive proceeds
            body_events = list(events)
            if op is not None:
                body_events.append(op)
            self._enter_block(func, terminator.body, body_events, loop_stack, dict(visits), out, call_stack, list(deferred))
            # done branch: channel closed & drained (receive still proceeds
            # in Go, yielding ok=false; modelled as a recv occurrence too)
            done_events = list(events)
            if op is not None:
                done_events.append(
                    OpEvent("recv", op.prim, terminator.line, terminator)
                )
            self._enter_block(func, terminator.done, done_events, loop_stack, dict(visits), out, call_stack, list(deferred))
            return
        raise AssertionError(f"unhandled terminator {type(terminator).__name__}")

    def _enter_block(
        self,
        func: ir.Function,
        block: ir.Block,
        events: List[PathEvent],
        loop_stack: List,
        visits: Dict[int, int],
        out: List[Path],
        call_stack: Tuple[str, ...],
        deferred: List[Tuple[str, List[ir.Operand], int]],
    ) -> None:
        count = visits.get(block.id, 0)
        if count >= self.max_loop_unroll:
            # unroll limit reached: emit the path as enumerated so far.
            # Deferred operations are NOT appended — the path never returns.
            if len(out) < MAX_PATHS_PER_GOROUTINE:
                out.append(Path(call_stack[0], list(events), cut=True))
            return
        new_visits = dict(visits)
        new_visits[block.id] = count + 1
        self._walk(func, block, 0, events, loop_stack, new_visits, out, call_stack, deferred)

    def _walk_select(
        self,
        func: ir.Function,
        select: ir.Select,
        events: List[PathEvent],
        loop_stack: List,
        visits: Dict[int, int],
        out: List[Path],
        call_stack: Tuple[str, ...],
        deferred: List[Tuple[str, List[ir.Operand], int]],
    ) -> None:
        pset_cases: List[OpEvent] = []
        case_ops: List[Optional[OpEvent]] = []
        has_other = False
        for case in select.cases:
            op = self._op_for(select, case.kind, case.chan, case.line, from_select=True)
            case_ops.append(op)
            if op is not None:
                pset_cases.append(op)
            else:
                has_other = True
        for case, op in zip(select.cases, case_ops):
            if op is None and self._select_arm_dead(case):
                continue
            choice = SelectChoice(
                instr=select,
                line=select.line,
                chosen=op if op is not None else "other",
                pset_cases=pset_cases,
                has_other_cases=has_other,
            )
            self._enter_block(
                func, case.target, events + [choice], loop_stack, dict(visits), out, call_stack, list(deferred)
            )
        if select.default_target is not None:
            choice = SelectChoice(
                instr=select,
                line=select.line,
                chosen="default",
                pset_cases=pset_cases,
                has_other_cases=has_other,
            )
            self._enter_block(
                func,
                select.default_target,
                events + [choice],
                loop_stack,
                dict(visits),
                out,
                call_stack,
                list(deferred),
            )

    def _visit_instr(
        self,
        func: ir.Function,
        instr: ir.Instr,
        events: List[PathEvent],
        out: List[Path],
        call_stack: Tuple[str, ...],
        deferred: List[Tuple[str, List[ir.Operand], int]],
    ) -> Optional[bool]:
        if isinstance(instr, ir.Send):
            self._append_op(events, instr, "send", instr.chan, instr.line)
        elif isinstance(instr, ir.Recv):
            self._append_op(events, instr, "recv", instr.chan, instr.line)
        elif isinstance(instr, ir.Close):
            self._append_op(events, instr, "close", instr.chan, instr.line)
        elif isinstance(instr, ir.Lock):
            self._append_op(events, instr, "rlock" if instr.read else "lock", instr.mutex, instr.line)
        elif isinstance(instr, ir.Unlock):
            self._append_op(events, instr, "runlock" if instr.read else "unlock", instr.mutex, instr.line)
        elif isinstance(instr, ir.WgAdd):
            self._append_op(events, instr, "add", instr.wg, instr.line)
        elif isinstance(instr, ir.WgDone):
            self._append_op(events, instr, "done", instr.wg, instr.line)
        elif isinstance(instr, ir.WgWait):
            self._append_op(events, instr, "wait", instr.wg, instr.line)
        elif isinstance(instr, ir.CondWait):
            self._append_op(events, instr, "condwait", instr.cond, instr.line)
        elif isinstance(instr, ir.CondSignal):
            # the paper's recipe: Signal is a send in a select with default
            # (never blocks); Broadcast is a loop of those, unrolled twice
            self._append_op(events, instr, "signal", instr.cond, instr.line)
            if instr.broadcast:
                self._append_op(events, instr, "signal", instr.cond, instr.line)
        elif isinstance(instr, ir.Go):
            target = instr.func_op
            if isinstance(target, ir.FuncRef) and target.name in self.program.functions:
                if target.name in self.relevant_functions:
                    events.append(SpawnEvent(child_func=target.name, line=instr.line, instr=instr))
        elif isinstance(instr, ir.Defer):
            self._register_defer(instr, deferred)
        elif isinstance(instr, ir.Call):
            callee = self._inlineable_callee(instr, call_stack)
            if callee is not None:
                # inline: continue enumeration inside the callee; the rest of
                # the caller path continues when the callee path returns
                return self._inline_call(func, instr, callee, events, out, call_stack, deferred)
        return None

    def _register_defer(
        self, instr: ir.Defer, deferred: List[Tuple[str, List[ir.Operand], int]]
    ) -> None:
        if isinstance(instr.func_op, ir.FuncRef):
            deferred.append((instr.func_op.name, list(instr.args), instr.line))

    def _inlineable_callee(self, instr: ir.Call, call_stack: Tuple[str, ...]) -> Optional[str]:
        if not isinstance(instr.func_op, ir.FuncRef):
            return None  # dynamic call: ignored when ambiguous (paper §5.1)
        name = instr.func_op.name
        if name.startswith("$") or name not in self.program.functions:
            return None
        if name not in self.relevant_functions:
            return None  # callee touches nothing in Pset: skipped (§3.3)
        if name in call_stack:
            return None  # bounded recursion: do not re-enter
        return name

    def _inline_call(
        self,
        caller: ir.Function,
        instr: ir.Call,
        callee_name: str,
        events: List[PathEvent],
        out: List[Path],
        call_stack: Tuple[str, ...],
        deferred: List[Tuple[str, List[ir.Operand], int]],
    ) -> bool:
        callee = self.program.functions[callee_name]
        callee_paths: List[Path] = []
        self._walk(
            callee,
            callee.entry,  # type: ignore[arg-type]
            0,
            [],
            [],
            {},
            callee_paths,
            call_stack + (callee_name,),
            deferred=[],
        )
        if not callee_paths:
            callee_paths = [Path(callee_name)]
        # resume the caller after the call for each callee path
        block, idx = _locate(caller, instr)
        for callee_path in callee_paths[: MAX_PATHS_PER_GOROUTINE // 4]:
            resumed = events + list(callee_path.events)
            self._walk(
                caller,
                block,
                idx + 1,
                resumed,
                [],
                {},
                out,
                call_stack,
                list(deferred),
            )
        return False  # the inline handled all continuations

    def _finish_path(
        self,
        func: ir.Function,
        events: List[PathEvent],
        deferred: List[Tuple[str, List[ir.Operand], int]],
        out: List[Path],
        call_stack: Tuple[str, ...],
    ) -> None:
        final = list(events)
        for name, args, line in reversed(deferred):
            self._append_deferred(final, name, args, line, call_stack)
        if len(out) < MAX_PATHS_PER_GOROUTINE:
            out.append(Path(call_stack[0], final))

    def _append_deferred(
        self,
        events: List[PathEvent],
        name: str,
        args: List[ir.Operand],
        line: int,
        call_stack: Tuple[str, ...],
    ) -> None:
        pseudo = {
            DEFER_CLOSE: "close",
            DEFER_UNLOCK: "unlock",
            DEFER_RUNLOCK: "runlock",
            DEFER_LOCK: "lock",
            DEFER_RLOCK: "rlock",
            DEFER_WG_DONE: "done",
            DEFER_SEND: "send",
        }
        if name in pseudo:
            if args:
                self._append_op_operand(events, pseudo[name], args[0], line)
            return
        if name in self.program.functions and name in self.relevant_functions:
            # deferred closure: splice in its (first) path's events
            callee = self.program.functions[name]
            callee_paths: List[Path] = []
            self._walk(
                callee,
                callee.entry,  # type: ignore[arg-type]
                0,
                [],
                [],
                {},
                callee_paths,
                call_stack + (name,),
                deferred=[],
            )
            if callee_paths:
                events.extend(callee_paths[0].events)

    def _select_arm_dead(self, case: ir.SelectCase) -> bool:
        """A receive arm that can provably never fire.

        A select case receiving on a channel with zero send and zero close
        operations anywhere in the program can never complete: even a
        buffered channel yields nothing without a sender, and only the
        runtime can close a context Done channel. Paths taking such an arm
        are infeasible, so enumerating them only manufactures false
        positives (the arm lets the path skip the Pset cases it would
        otherwise have to synchronize on). The check demands every aliased
        site resolve to a known non-ctxdone primitive — an unresolved
        operand means the operation index may be incomplete, and the arm
        is conservatively kept.
        """
        if case.kind != "recv":
            return False
        sites = self.alias.sites_of(case.chan)
        if not sites:
            return False
        for site in sites:
            prim = self._prim_by_site.get(site)
            if prim is None or prim.site.kind == "ctxdone":
                return False
            if any(op.kind in ("send", "close") for op in prim.operations):
                return False
        return True

    # -- op helpers -------------------------------------------------------------

    def _op_for(
        self,
        instr: ir.Instr,
        kind: str,
        chan_op: ir.Operand,
        line: int,
        from_select: bool = False,
    ) -> Optional[OpEvent]:
        for site in self.alias.sites_of(chan_op):
            if site in self.pset_sites:
                prim = self._prim_by_site[site]
                return OpEvent(kind=kind, prim=prim, line=line, instr=instr, from_select=from_select)
        return None

    def _append_op(
        self, events: List[PathEvent], instr: ir.Instr, kind: str, operand: ir.Operand, line: int
    ) -> None:
        op = self._op_for(instr, kind, operand, line)
        if op is not None:
            events.append(op)

    def _append_op_operand(
        self, events: List[PathEvent], kind: str, operand: ir.Operand, line: int
    ) -> None:
        for site in self.alias.sites_of(operand):
            if site in self.pset_sites:
                prim = self._prim_by_site[site]
                events.append(OpEvent(kind=kind, prim=prim, line=line, instr=None))
                return

    def _is_read_only(self, var: Optional[str]) -> bool:
        if var is None:
            return False
        return self._def_counts.get(var, 0) <= 1


def _locate(func: ir.Function, instr: ir.Instr) -> Tuple[ir.Block, int]:
    for block in func.reachable_blocks():
        for i, candidate in enumerate(block.instrs):
            if candidate is instr:
                return block, i
    raise ValueError("instruction not found in function")


def _definition_counts(program: ir.Program) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for func in program:
        for instr in func.instructions():
            for var in instr.defs():
                counts[var.name] = counts.get(var.name, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# feasibility of branch-condition sets


def conditions_satisfiable(conditions: Sequence[BranchEvent]) -> bool:
    """Check a conjunction of read-only branch conditions for consistency.

    Only conditions over read-only variables are inspected, mirroring
    GCatch's pruning rule; conditions over mutable variables are assumed
    satisfiable (one of the paper's false-positive sources).
    """
    by_var: Dict[str, List[BranchEvent]] = {}
    for cond in conditions:
        if cond.read_only:
            by_var.setdefault(cond.var, []).append(cond)
    for var, conds in by_var.items():
        if not _var_satisfiable(conds):
            return False
    return True


def _var_satisfiable(conds: List[BranchEvent]) -> bool:
    lo, hi = float("-inf"), float("inf")
    not_equal: Set[object] = set()
    must_equal: Optional[object] = None
    for cond in conds:
        op, const, taken = cond.op, cond.const, cond.taken
        effective = op if taken else _negate(op)
        if effective == "==":
            if must_equal is not None and must_equal != const:
                return False
            must_equal = const
        elif effective == "!=":
            not_equal.add(const)
        elif isinstance(const, bool) or const is None:
            continue  # comparisons other than ==/!= over bools/nil: ignore
        elif effective == "<":
            hi = min(hi, const - 1)
        elif effective == "<=":
            hi = min(hi, const)
        elif effective == ">":
            lo = max(lo, const + 1)
        elif effective == ">=":
            lo = max(lo, const)
    if must_equal is not None:
        if must_equal in not_equal:
            return False
        if isinstance(must_equal, bool) or must_equal is None:
            return True
        return lo <= must_equal <= hi
    if lo > hi:
        return False
    if lo == float("-inf") or hi == float("inf"):
        return True  # an unbounded interval always beats a finite exclusion set
    excluded = sum(1 for v in not_equal if isinstance(v, int) and lo <= v <= hi)
    return (hi - lo + 1) > excluded


def _negate(op: str) -> str:
    return {"==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}[op]


# ---------------------------------------------------------------------------
# goroutine sets and path combinations


@dataclass(eq=False)
class GoroutinePath:
    """A chosen path for one goroutine instance in a combination."""

    gid: int
    parent_gid: Optional[int]
    spawn_index: Optional[int]  # index of the SpawnEvent in the parent's path
    path: Path


@dataclass(eq=False)
class PathCombination:
    goroutines: List[GoroutinePath]

    def total_ops(self) -> int:
        return sum(len(g.path.op_events()) for g in self.goroutines)

    def has_blocking_op(self) -> bool:
        return any(g.path.blocking_points() for g in self.goroutines)


def enumerate_combinations(
    enumerator: PathEnumerator, root_function: str, require_blocking: bool = True
) -> List[PathCombination]:
    """All path combinations for the goroutines executing in a scope.

    ``require_blocking=False`` keeps combinations without any blocking
    operation — needed by the non-blocking misuse detector (§6), whose
    goal states are panics rather than blocks.
    """
    root_paths = enumerator.enumerate(root_function)
    prune = enumerator.prune_infeasible
    combos: List[PathCombination] = []
    for root_path in root_paths:
        counter = itertools.count(1)
        for combo in _expand(
            enumerator, root_path, gid=0, parent=None, spawn_index=None, counter=counter, depth=0
        ):
            combos.append(combo)
            if len(combos) >= MAX_COMBINATIONS:
                return _filter_combinations(combos, require_blocking, prune)
    return _filter_combinations(combos, require_blocking, prune)


def _expand(
    enumerator: PathEnumerator,
    path: Path,
    gid: int,
    parent: Optional[int],
    spawn_index: Optional[int],
    counter,
    depth: int,
) -> List[PathCombination]:
    """Expand a chosen path into combinations covering its spawned children."""
    spawns = path.spawn_events()
    base = GoroutinePath(gid=gid, parent_gid=parent, spawn_index=spawn_index, path=path)
    if not spawns or depth > 4:
        return [PathCombination([base])]
    child_options: List[List[PathCombination]] = []
    for event_index, spawn in spawns:
        child_gid = next(counter)
        child_paths = enumerator.enumerate(spawn.child_func)
        options: List[PathCombination] = []
        for child_path in child_paths:
            options.extend(
                _expand(
                    enumerator,
                    child_path,
                    gid=child_gid,
                    parent=gid,
                    spawn_index=event_index,
                    counter=counter,
                    depth=depth + 1,
                )
            )
        child_options.append(options[: max(MAX_COMBINATIONS // 8, 1)])
    combos: List[PathCombination] = []
    for selection in itertools.product(*child_options):
        goroutines = [base]
        for sub in selection:
            goroutines.extend(sub.goroutines)
        combos.append(PathCombination(goroutines))
        if len(combos) >= MAX_COMBINATIONS:
            break
    return combos


def _filter_combinations(
    combos: List[PathCombination],
    require_blocking: bool = True,
    prune_infeasible: bool = True,
) -> List[PathCombination]:
    """Apply GCatch's combination filters (§3.3)."""
    out: List[PathCombination] = []
    for combo in combos:
        if require_blocking and not combo.has_blocking_op():
            continue
        all_branches = [e for g in combo.goroutines for e in g.path.branch_events()]
        if prune_infeasible and not conditions_satisfiable(all_branches):
            continue
        if _loop_iteration_conflict(combo):
            continue
        out.append(combo)
    return out


def _loop_iteration_conflict(combo: PathCombination) -> bool:
    """Two loops sharing a terminating condition but unrolled differently.

    A path that iterates a loop k times emits a LoopEvent per revisit, so
    within one path only the *final* (maximal) count per condition matters;
    the conflict the paper filters is between different goroutines' loops.
    """
    seen: Dict[str, int] = {}
    for g in combo.goroutines:
        per_path: Dict[str, int] = {}
        for loop in g.path.loop_events():
            per_path[loop.cond_key] = max(per_path.get(loop.cond_key, 0), loop.iterations)
        for cond_key, iterations in per_path.items():
            if cond_key in seen and seen[cond_key] != iterations:
                return True
            seen[cond_key] = iterations
    return False
