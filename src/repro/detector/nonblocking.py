"""Non-blocking misuse-of-channel detection — the paper's §6 extension.

The paper sketches how GCatch generalizes beyond blocking bugs: "sending to
an already closed channel triggers a panic. We can enhance GCatch to detect
bugs caused by this error by configuring a new type of bug constraints
where a sending operation has a larger order variable value than a closing
operation conducted on the same channel."

This module implements exactly that: it reuses the disentangling, the path
combinations, and the constraint encoding, but instead of a blocking
conjunction Φ_B it asks the solver for an admissible interleaving where a
send (or a second close) executes on an already-closed channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.dependency import compute_pset
from repro.analysis.primitives import Primitive
from repro.constraints.encoding import ConstraintSystem, Occurrence, encode
from repro.constraints.solver import _op_of, _Search
from repro.detector.bmoc import BMOCDetector
from repro.detector.paths import PathEnumerator, enumerate_combinations
from repro.detector.reporting import BlockedOp, BugReport, dedup_reports


class _PanicSearch(_Search):
    """Searches for a schedule in which ``goal_kind`` hits a closed channel."""

    def __init__(self, system: ConstraintSystem, target: Primitive, goal_kind: str):
        super().__init__(system)
        self.target = target
        self.goal_kind = goal_kind  # 'send' | 'close'
        self.panic_occ: Optional[Occurrence] = None

    def _dfs(self, progress: Dict[int, int], states) -> bool:
        self.nodes += 1
        if self.nodes > 50_000:
            return False
        # goal test: some goroutine's next executable op is a send/close on
        # the already-closed target channel
        for gid in self.gids:
            pos = progress[gid]
            events = self.events[gid]
            if pos >= len(events) or not self._enabled(gid, progress):
                continue
            occ = events[pos]
            op = _op_of(occ)
            if op is None or op.prim is not self.target:
                continue
            state = self._state_of(states, op.prim)
            if state.closed and op.kind == self.goal_kind:
                self.panic_occ = occ
                self.schedule.append(occ)
                return True
        return super()._dfs(progress, states)

    def _check_blocking(self, states, progress) -> bool:
        # running every goroutine to completion without hitting the panic
        # is NOT a goal here; keep searching other interleavings
        return False


@dataclass
class NonBlockingResult:
    reports: List[BugReport] = field(default_factory=list)


def detect_nonblocking(program) -> NonBlockingResult:
    """Find send-on-closed and double-close misuses across a program."""
    detector = BMOCDetector(program)
    reports: List[BugReport] = []
    for channel in detector.pmap.channels():
        if channel.site.kind == "ctxdone":
            continue
        closes = channel.ops_of_kind("close")
        if not closes:
            continue
        goal_kinds = []
        if channel.ops_of_kind("send"):
            goal_kinds.append("send")
        if len(closes) > 1:
            goal_kinds.append("close")
        if not goal_kinds:
            continue
        reports.extend(_analyze_channel(detector, channel, goal_kinds))
    return NonBlockingResult(reports=dedup_reports(reports))


def _analyze_channel(
    detector: BMOCDetector, channel: Primitive, goal_kinds: List[str]
) -> List[BugReport]:
    scope = detector.scopes[channel]
    pset = compute_pset(channel, detector.dep_graph, detector.scopes)
    roots = detector._roots_for(channel, scope)
    reports: List[BugReport] = []
    for root in roots:
        enumerator = PathEnumerator(
            detector.program,
            detector.call_graph,
            detector.alias,
            detector.pmap,
            pset,
            scope.functions,
        )
        for combo in enumerate_combinations(enumerator, root, require_blocking=False):
            system = encode(combo, stops=[])
            for goal_kind in goal_kinds:
                search = _PanicSearch(system, channel, goal_kind)
                if search.run() is None or search.panic_occ is None:
                    continue
                occ = search.panic_occ
                op = _op_of(occ)
                category = "send-on-closed" if goal_kind == "send" else "double-close"
                verb = "sends on" if goal_kind == "send" else "re-closes"
                reports.append(
                    BugReport(
                        category=category,
                        primitive=channel,
                        blocked_ops=[
                            BlockedOp(
                                kind=op.kind,
                                line=op.line,
                                function=_function_of(combo, occ.gid),
                                prim_label=channel.site.label,
                            )
                        ],
                        description=(
                            f"goroutine {verb} channel {channel.site.label!r} after it "
                            f"is closed: panic at line {op.line}"
                        ),
                        combination=combo,
                        scope_functions=frozenset(scope.functions),
                    )
                )
    return reports


def _function_of(combo, gid: int) -> str:
    for goroutine in combo.goroutines:
        if goroutine.gid == gid:
            return goroutine.path.function
    return "?"
