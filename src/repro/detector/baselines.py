"""Baseline detectors the paper compares against (§7).

The paper evaluates two static tool suites — Go's built-in ``vet`` and
``staticcheck`` — and Go's built-in dynamic deadlock detector:

* the two static suites "cover very specific buggy code patterns" and
  detect **0 of 149** BMOC bugs and **20 of 119** traditional bugs, all of
  them ``testing.Fatal``-in-child-goroutine cases;
* the dynamic deadlock detector only fires when *every* goroutine is
  asleep (a global deadlock), so partial deadlocks — the typical BMOC
  symptom, a leaked child — go unnoticed.

This module reimplements both baselines so the comparison can be
regenerated on the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.callgraph import build_call_graph
from repro.detector.reporting import BlockedOp, BugReport
from repro.detector.traditional.fatal_goroutine import check_fatal_goroutine
from repro.runtime.scheduler import explore_schedules
from repro.ssa import ir


# ---------------------------------------------------------------------------
# vet/staticcheck-style pattern checkers


def check_deferred_double_lock(program: ir.Program) -> List[BugReport]:
    """staticcheck SA2001-style: ``mu.Lock()`` immediately followed by
    ``defer mu.Lock()`` (a typo for ``defer mu.Unlock()``) on the same
    mutex — one of the "very specific buggy code patterns" the suites
    cover."""
    reports: List[BugReport] = []
    for func in program:
        for block in func.reachable_blocks():
            instrs = block.instrs
            for first, second in zip(instrs, instrs[1:]):
                if not isinstance(first, ir.Lock) or first.read:
                    continue
                if not isinstance(second, ir.Defer):
                    continue
                # `defer mu.Lock()` has no pseudo-op; it lowers to a Defer of
                # an unknown callable, so approximate by a re-Lock pattern
                if isinstance(second.func_op, ir.FuncRef) and second.func_op.name == "$unlock":
                    continue
                if _same_operand(first.mutex, _defer_lock_target(second)):
                    reports.append(
                        BugReport(
                            category="defer-lock-typo",
                            primitive=None,
                            blocked_ops=[
                                BlockedOp(
                                    kind="lock",
                                    line=second.line,
                                    function=func.name,
                                    prim_label=str(first.mutex),
                                )
                            ],
                            description=(
                                f"{func.name}:{second.line}: defer re-locks a mutex "
                                "locked on the previous line"
                            ),
                        )
                    )
    return reports


def _defer_lock_target(instr: ir.Defer) -> Optional[ir.Operand]:
    if isinstance(instr.func_op, ir.FuncRef) and instr.func_op.name == "$lock":
        return instr.args[0] if instr.args else None
    return None


def _same_operand(a: Optional[ir.Operand], b: Optional[ir.Operand]) -> bool:
    return a is not None and b is not None and a == b


@dataclass
class StaticSuiteResult:
    """What a vet/staticcheck-style pass finds."""

    fatal_reports: List[BugReport] = field(default_factory=list)
    pattern_reports: List[BugReport] = field(default_factory=list)

    @property
    def reports(self) -> List[BugReport]:
        return self.fatal_reports + self.pattern_reports


def run_static_suites(program: ir.Program) -> StaticSuiteResult:
    """The vet + staticcheck stand-in: Fatal-in-goroutine plus a handful of
    exact-pattern rules. By construction it detects no BMOC bugs — exactly
    the paper's finding (0/149)."""
    call_graph = build_call_graph(program)
    return StaticSuiteResult(
        fatal_reports=check_fatal_goroutine(program, call_graph),
        pattern_reports=check_deferred_double_lock(program),
    )


# ---------------------------------------------------------------------------
# Go's built-in dynamic deadlock detector


@dataclass
class DynamicDetectorResult:
    """What `go run` with the runtime's deadlock detector observes."""

    global_deadlocks: int = 0
    partial_deadlocks_missed: int = 0
    schedules: int = 0

    @property
    def detected_anything(self) -> bool:
        return self.global_deadlocks > 0


def run_dynamic_deadlock_detector(
    program: ir.Program, entry: str = "main", seeds: int = 20, max_steps: int = 20_000
) -> DynamicDetectorResult:
    """Go's runtime aborts with "all goroutines are asleep" only when every
    goroutine is blocked. A leaked child with a live parent — the common
    BMOC symptom — is invisible to it; we count those as misses."""
    result = DynamicDetectorResult(schedules=seeds)
    for outcome in explore_schedules(program, entry=entry, seeds=seeds, max_steps=max_steps):
        if outcome.global_deadlock:
            result.global_deadlocks += 1
        elif outcome.leaked:
            result.partial_deadlocks_missed += 1
    return result
