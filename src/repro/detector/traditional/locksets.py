"""Shared intra-procedural, path-sensitive lockset machinery (§3.5).

Walks every bounded path of a function tracking which mutex creation sites
are held, emitting the events the traditional checkers consume: lock/unlock
transitions, field accesses with their lockset snapshot, and the set of
locks still held at each return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.alias import AliasAnalysis, Site
from repro.ssa import ir
from repro.ssa.builder import DEFER_RUNLOCK, DEFER_UNLOCK

MAX_LOCK_PATHS = 64
MAX_BLOCK_VISITS = 2


@dataclass
class LockAcquire:
    site: Site
    line: int
    held_before: FrozenSet[Site]


@dataclass
class FieldAccess:
    struct_hint: str
    field_name: str
    line: int
    is_write: bool
    lockset: FrozenSet[Site]


@dataclass
class ReturnPoint:
    line: int
    held: FrozenSet[Site]


@dataclass
class CallWhileHolding:
    callee: str
    line: int
    held: FrozenSet[Site]


@dataclass
class LockPath:
    """Everything a traditional checker needs from one execution path."""

    acquires: List[LockAcquire] = field(default_factory=list)
    accesses: List[FieldAccess] = field(default_factory=list)
    returns: List[ReturnPoint] = field(default_factory=list)
    calls: List[CallWhileHolding] = field(default_factory=list)
    double_locks: List[Tuple[Site, int]] = field(default_factory=list)


def walk_function(func: ir.Function, alias: AliasAnalysis) -> List[LockPath]:
    """Enumerate bounded paths through ``func`` with lockset tracking."""
    if func.entry is None:
        return []
    paths: List[LockPath] = []
    _walk(func, func.entry, 0, LockPath(), set(), [], {}, alias, paths)
    return paths


def _mutex_sites(alias: AliasAnalysis, op: ir.Operand) -> List[Site]:
    return [s for s in alias.sites_of(op) if s.kind in ("mutex", "rwmutex")]


def _walk(
    func: ir.Function,
    block: ir.Block,
    idx: int,
    path: LockPath,
    held: Set[Site],
    deferred_unlocks: List[Site],
    visits: Dict[int, int],
    alias: AliasAnalysis,
    out: List[LockPath],
) -> None:
    if len(out) >= MAX_LOCK_PATHS:
        return
    held = set(held)
    deferred_unlocks = list(deferred_unlocks)
    path = _copy_path(path)
    i = idx
    while i < len(block.instrs):
        instr = block.instrs[i]
        _visit(instr, path, held, deferred_unlocks, alias)
        i += 1
    terminator = block.terminator
    if terminator is None or isinstance(terminator, (ir.Return, ir.Panic)):
        final_held = held - set(deferred_unlocks)
        path.returns.append(ReturnPoint(line=getattr(terminator, "line", 0), held=frozenset(final_held)))
        out.append(path)
        return
    successors = terminator.successors()
    if not successors:
        out.append(path)
        return
    for succ in successors:
        count = visits.get(succ.id, 0)
        if count >= MAX_BLOCK_VISITS:
            out.append(path)
            continue
        new_visits = dict(visits)
        new_visits[succ.id] = count + 1
        _walk(func, succ, 0, path, held, deferred_unlocks, new_visits, alias, out)


def _copy_path(path: LockPath) -> LockPath:
    return LockPath(
        acquires=list(path.acquires),
        accesses=list(path.accesses),
        returns=list(path.returns),
        calls=list(path.calls),
        double_locks=list(path.double_locks),
    )


def _visit(
    instr: ir.Instr,
    path: LockPath,
    held: Set[Site],
    deferred_unlocks: List[Site],
    alias: AliasAnalysis,
) -> None:
    if isinstance(instr, ir.Lock) and not instr.read:
        for site in _mutex_sites(alias, instr.mutex):
            if site in held:
                path.double_locks.append((site, instr.line))
            path.acquires.append(
                LockAcquire(site=site, line=instr.line, held_before=frozenset(held))
            )
            held.add(site)
    elif isinstance(instr, ir.Unlock) and not instr.read:
        for site in _mutex_sites(alias, instr.mutex):
            held.discard(site)
    elif isinstance(instr, ir.Defer):
        if isinstance(instr.func_op, ir.FuncRef) and instr.func_op.name in (
            DEFER_UNLOCK,
            DEFER_RUNLOCK,
        ):
            for site in _mutex_sites(alias, instr.args[0]):
                deferred_unlocks.append(site)
    elif isinstance(instr, ir.FieldGet):
        if _sync_kind(alias, instr.dst.name):
            return  # reading a sync-typed field is not a data access
        hint = _obj_hint(instr.obj, alias)
        path.accesses.append(
            FieldAccess(
                struct_hint=hint,
                field_name=instr.field_name,
                line=instr.line,
                is_write=False,
                lockset=frozenset(held),
            )
        )
    elif isinstance(instr, ir.FieldSet):
        hint = _obj_hint(instr.obj, alias)
        path.accesses.append(
            FieldAccess(
                struct_hint=hint,
                field_name=instr.field_name,
                line=instr.line,
                is_write=True,
                lockset=frozenset(held),
            )
        )
    elif isinstance(instr, ir.Call):
        if held and isinstance(instr.func_op, ir.FuncRef):
            path.calls.append(
                CallWhileHolding(callee=instr.func_op.name, line=instr.line, held=frozenset(held))
            )


def _sync_kind(alias: AliasAnalysis, name: str) -> bool:
    kind = getattr(alias.program, "kinds", {}).get(name, "any")
    return kind in ("mutex", "rwmutex", "waitgroup", "cond", "testing", "context", "chan")


def _obj_hint(op: ir.Operand, alias: AliasAnalysis) -> str:
    if isinstance(op, ir.Var):
        kind = getattr(alias.program, "kinds", {}).get(op.name, "any")
        if kind.startswith("struct:"):
            return kind.split(":", 1)[1]
        return op.name.split("$")[0]
    return "?"


def lock_summary(program: ir.Program, alias: AliasAnalysis) -> Dict[str, Set[Site]]:
    """Which mutex sites each function may acquire, transitively."""
    direct: Dict[str, Set[Site]] = {}
    callees: Dict[str, Set[str]] = {}
    for func in program:
        acquired: Set[Site] = set()
        called: Set[str] = set()
        for instr in func.instructions():
            if isinstance(instr, ir.Lock) and not instr.read:
                acquired.update(_mutex_sites(alias, instr.mutex))
            elif isinstance(instr, (ir.Call, ir.Go)) and isinstance(instr.func_op, ir.FuncRef):
                called.add(instr.func_op.name)
        direct[func.name] = acquired
        callees[func.name] = called
    # propagate to a fixpoint
    changed = True
    while changed:
        changed = False
        for name, called in callees.items():
            for callee in called:
                extra = direct.get(callee, set()) - direct[name]
                if extra:
                    direct[name] |= extra
                    changed = True
    return direct
