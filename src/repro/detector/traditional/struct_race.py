"""Struct-field data-race checker (paper §3.5).

Following RacerX-style lockset inference: collect the lockset at every
struct-field access, and when a field is protected by some lock for *most*
accesses, report the unprotected accesses as races.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.analysis.alias import AliasAnalysis, Site
from repro.detector.reporting import BlockedOp, BugReport
from repro.detector.traditional.locksets import FieldAccess, walk_function
from repro.ssa import ir

# a field is "mostly protected" when at least this fraction of its accesses
# hold some common lock (the paper says "most accesses")
PROTECTED_FRACTION = 0.6
MIN_ACCESSES = 3


def check_struct_races(program: ir.Program, alias: AliasAnalysis) -> List[BugReport]:
    accesses: Dict[Tuple[str, str], List[Tuple[str, FieldAccess]]] = defaultdict(list)
    for func in program:
        per_path = walk_function(func, alias)
        dedup: Set[Tuple[int, bool, frozenset]] = set()
        for path in per_path:
            for access in path.accesses:
                key = (access.line, access.is_write, access.lockset)
                if key in dedup:
                    continue
                dedup.add(key)
                accesses[(access.struct_hint, access.field_name)].append((func.name, access))

    reports: List[BugReport] = []
    for (hint, field_name), entries in accesses.items():
        total = len(entries)
        if total < MIN_ACCESSES:
            continue
        # find the lock that protects the largest share of accesses
        counts: Dict[Site, int] = defaultdict(int)
        for _, access in entries:
            for site in access.lockset:
                counts[site] += 1
        if not counts:
            continue
        best_site = max(counts, key=lambda s: counts[s])
        if counts[best_site] / total < PROTECTED_FRACTION:
            continue
        unprotected = [
            (func_name, access)
            for func_name, access in entries
            if best_site not in access.lockset
        ]
        if not unprotected or not any(a.is_write for _, a in unprotected):
            # read-only unprotected accesses of a mostly-protected field are
            # not reported (matches lockset-checker practice)
            continue
        for func_name, access in unprotected:
            reports.append(
                BugReport(
                    category="struct-race",
                    primitive=None,
                    blocked_ops=[
                        BlockedOp(
                            kind="write" if access.is_write else "read",
                            line=access.line,
                            function=func_name,
                            prim_label=f"{hint}.{field_name}",
                        )
                    ],
                    description=(
                        f"field {hint}.{field_name} is protected by {best_site.label!r} "
                        f"in {counts[best_site]}/{total} accesses but not at "
                        f"{func_name}:{access.line}"
                    ),
                )
            )
    return reports
