"""Double-lock checker: inter-procedural, path-sensitive detection of
re-acquiring a held (non-reentrant) mutex (paper §3.5)."""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.alias import AliasAnalysis
from repro.detector.reporting import BlockedOp, BugReport
from repro.detector.traditional.locksets import lock_summary, walk_function
from repro.ssa import ir


def check_double_lock(program: ir.Program, alias: AliasAnalysis) -> List[BugReport]:
    reports: List[BugReport] = []
    seen: Set[Tuple] = set()
    summary = lock_summary(program, alias)
    for func in program:
        for path in walk_function(func, alias):
            # intra-procedural: a Lock while the same site is already held
            for site, line in path.double_locks:
                key = (func.name, str(site), line)
                if key not in seen:
                    seen.add(key)
                    reports.append(_report(func.name, site, line, "re-locked on the same path"))
            # inter-procedural: a call made while holding a site the callee
            # may itself acquire
            for call in path.calls:
                callee_locks = summary.get(call.callee, set())
                for site in call.held & callee_locks:
                    key = (func.name, str(site), call.line, call.callee)
                    if key not in seen:
                        seen.add(key)
                        reports.append(
                            _report(
                                func.name,
                                site,
                                call.line,
                                f"held across call to {call.callee} which locks it again",
                            )
                        )
    return reports


def _report(function: str, site, line: int, why: str) -> BugReport:
    return BugReport(
        category="double-lock",
        primitive=None,
        blocked_ops=[
            BlockedOp(kind="lock", line=line, function=function, prim_label=site.label)
        ],
        description=f"double lock of {site.label!r} in {function}: {why}",
    )
