"""Forget-unlock checker: intra-procedural, path-sensitive detection of
lock-without-unlock (paper §3.5, Table 1 column "Forget Unlock")."""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.alias import AliasAnalysis
from repro.detector.reporting import BlockedOp, BugReport
from repro.detector.traditional.locksets import walk_function
from repro.ssa import ir


def check_forget_unlock(program: ir.Program, alias: AliasAnalysis) -> List[BugReport]:
    reports: List[BugReport] = []
    seen: Set[Tuple] = set()
    for func in program:
        for path in walk_function(func, alias):
            for ret in path.returns:
                for site in ret.held:
                    acquire_line = _acquire_line(path, site)
                    key = (func.name, str(site), acquire_line)
                    if key in seen:
                        continue
                    seen.add(key)
                    reports.append(
                        BugReport(
                            category="forget-unlock",
                            primitive=None,
                            blocked_ops=[
                                BlockedOp(
                                    kind="lock",
                                    line=acquire_line,
                                    function=func.name,
                                    prim_label=site.label,
                                )
                            ],
                            description=(
                                f"{func.name} returns at line {ret.line} still holding "
                                f"{site.label!r} locked at line {acquire_line}"
                            ),
                            extra_lines=[ret.line],
                        )
                    )
    return reports


def _acquire_line(path, site) -> int:
    for acquire in reversed(path.acquires):
        if acquire.site == site:
            return acquire.line
    return 0
