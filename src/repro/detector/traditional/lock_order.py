"""Conflicting-lock-order checker: deadlocks from acquiring two locks in
opposite orders in different code paths (paper §3.5)."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.alias import AliasAnalysis, Site
from repro.detector.reporting import BlockedOp, BugReport
from repro.detector.traditional.locksets import lock_summary, walk_function
from repro.ssa import ir


def check_lock_order(program: ir.Program, alias: AliasAnalysis) -> List[BugReport]:
    # collect acquisition-order edges: (outer site -> inner site, where)
    edges: Dict[Tuple[Site, Site], Tuple[str, int]] = {}
    summary = lock_summary(program, alias)
    for func in program:
        for path in walk_function(func, alias):
            for acquire in path.acquires:
                for outer in acquire.held_before:
                    if outer != acquire.site:
                        edges.setdefault((outer, acquire.site), (func.name, acquire.line))
            for call in path.calls:
                for inner in summary.get(call.callee, set()):
                    for outer in call.held:
                        if outer != inner:
                            edges.setdefault((outer, inner), (func.name, call.line))
    reports: List[BugReport] = []
    seen: Set[frozenset] = set()
    for (a, b), (func_ab, line_ab) in edges.items():
        reverse = edges.get((b, a))
        if reverse is None:
            continue
        pair = frozenset((str(a), str(b)))
        if pair in seen:
            continue
        seen.add(pair)
        func_ba, line_ba = reverse
        reports.append(
            BugReport(
                category="conflict-lock",
                primitive=None,
                blocked_ops=[
                    BlockedOp(kind="lock", line=line_ab, function=func_ab, prim_label=b.label),
                    BlockedOp(kind="lock", line=line_ba, function=func_ba, prim_label=a.label),
                ],
                description=(
                    f"locks {a.label!r} and {b.label!r} acquired in conflicting orders "
                    f"({func_ab}:{line_ab} vs {func_ba}:{line_ba})"
                ),
            )
        )
    return reports
