"""testing.Fatal-in-child-goroutine checker (paper §3.5).

``t.Fatal``/``t.Fatalf``/``t.FailNow`` may only be called from the goroutine
running the test function; calling them from a child goroutine silently
fails to stop the test. The checker flags Fatal-class calls in any function
that executes on a goroutine spawned (directly or transitively) inside a
test function.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.callgraph import CallGraph
from repro.detector.reporting import BlockedOp, BugReport
from repro.ssa import ir

FATAL_METHODS = ("Fatal", "Fatalf", "FailNow")


def check_fatal_goroutine(program: ir.Program, call_graph: CallGraph) -> List[BugReport]:
    spawned = _goroutine_functions(program)
    # extend through calls: functions called from spawned functions also run
    # on the child goroutine
    reachable: Set[str] = set()
    for name in spawned:
        reachable |= call_graph.reachable_from(name)
    reports: List[BugReport] = []
    for func in program:
        if func.name not in reachable:
            continue
        for instr in func.instructions():
            if isinstance(instr, ir.Fatal) and instr.method in FATAL_METHODS:
                reports.append(
                    BugReport(
                        category="fatal-goroutine",
                        primitive=None,
                        blocked_ops=[
                            BlockedOp(
                                kind="fatal",
                                line=instr.line,
                                function=func.name,
                                prim_label="testing.T",
                            )
                        ],
                        description=(
                            f"t.{instr.method}() called at {func.name}:{instr.line}, which "
                            "runs on a child goroutine; only the test goroutine may call it"
                        ),
                    )
                )
    return reports


def _goroutine_functions(program: ir.Program) -> Set[str]:
    out: Set[str] = set()
    for func in program:
        for instr in func.instructions():
            if isinstance(instr, ir.Go) and isinstance(instr.func_op, ir.FuncRef):
                out.add(instr.func_op.name)
    return out
