"""Suspicious-group computation (paper §3.4, line 15 of Algorithm 1).

A suspicious group picks, for each goroutine of a path combination, either
"runs to completion" or "stops at one of its blocking operations", with at
least one goroutine stopping. Members must be unable to unblock each other:
a send and a receive on the same primitive (directly or through a stopped
select's cases) disqualify the group, because the pair could rendezvous.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Set, Tuple

from repro.constraints.encoding import StopPoint
from repro.detector.paths import OpEvent, PathCombination, SelectChoice

MAX_GROUPS_PER_COMBINATION = 64

COMPLETE = None  # sentinel choice: the goroutine finishes its path


def _offers(event: object) -> Set[Tuple[str, int]]:
    """(kind, primitive identity) pairs a stopped event is waiting on."""
    if isinstance(event, OpEvent):
        return {(event.kind, id(event.prim))}
    if isinstance(event, SelectChoice):
        return {(case.kind, id(case.prim)) for case in event.pset_cases}
    return set()


def _mutually_unblocking(a: object, b: object) -> bool:
    """Could stopped events a and b release each other?"""
    complements = {"send": "recv", "recv": "send", "condwait": "signal"}
    offers_b = _offers(b)
    for kind, prim in _offers(a):
        complement = complements.get(kind)
        if complement is not None and (complement, prim) in offers_b:
            return True
    return False


def enumerate_groups(combo: PathCombination, collector=None) -> Iterator[List[StopPoint]]:
    """Yield suspicious groups for one path combination.

    ``collector`` receives the ``suspicious.groups`` (yielded) and
    ``suspicious.rejected`` (mutually-unblocking, discarded) counters.
    """
    per_goroutine: List[List[Optional[object]]] = []
    for goroutine in combo.goroutines:
        choices: List[Optional[object]] = [COMPLETE]
        for index in goroutine.path.blocking_points():
            choices.append(goroutine.path.events[index])
        per_goroutine.append(choices)

    produced = 0
    for selection in itertools.product(*per_goroutine):
        stops = [
            StopPoint(gid=combo.goroutines[i].gid, event=event)
            for i, event in enumerate(selection)
            if event is not COMPLETE
        ]
        if not stops:
            continue
        if _group_invalid(stops):
            if collector:
                collector.count("suspicious.rejected")
            continue
        if collector:
            collector.count("suspicious.groups")
        yield stops
        produced += 1
        if produced >= MAX_GROUPS_PER_COMBINATION:
            return


def _group_invalid(stops: List[StopPoint]) -> bool:
    for i, a in enumerate(stops):
        for b in stops[i + 1 :]:
            if _mutually_unblocking(a.event, b.event):
                return True
    return False
