"""Decision procedure for the BMOC constraint system (the Z3 substitute).

The formulas GCatch generates (§3.4) have a specific shape: per-goroutine
total orders on O variables, spawn orderings, channel-state proceed
conditions where CB counts earlier matched operations, and a final blocking
conjunction. z3py is not available offline, so this module decides that
fragment directly with a memoized search over admissible interleavings:

* a *state* is (per-goroutine progress, channel/mutex/waitgroup states);
* a step executes the next occurrence of some goroutine if its proceed
  condition holds — including rendezvous steps that consume a matching
  send/recv pair simultaneously (the P(s,r)=1, O_s=O_r case);
* a goal state has every goroutine at the end of its truncated path; Φ_B
  is then checked against the final primitive states.

A satisfying assignment is returned as a :class:`Solution`: the witness
schedule (explicit O values), the matched pairs (P variables set to 1) and
the final channel states — the same model shape the paper prints for its
working example ("O3 = 0 ∧ ... ∧ CBs7 = 0").

This procedure is sound and complete for the generated fragment: every
model of Φ_R ∧ Φ_B corresponds to an admissible interleaving and vice
versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.primitives import Primitive
from repro.constraints.encoding import ConstraintSystem, Occurrence, StopPoint
from repro.detector.paths import OpEvent, SelectChoice, SpawnEvent

MAX_NODES = 50_000

#: version tag of the decision procedure; part of every cache fingerprint,
#: so bumping it invalidates all cached detection results (repro.engine).
#: "2": repeatable-send Φ_B (StopPoint.attempts) + the batched session.
SOLVER_VERSION = "2"

#: decision-procedure outcomes (the paper's SAT / UNSAT / Z3 timeout)
SAT = "sat"
UNSAT = "unsat"
TIMEOUT = "timeout"  # node budget exhausted before a verdict


@dataclass
class Solution:
    """A model of Φ_R ∧ Φ_B."""

    schedule: List[Occurrence] = field(default_factory=list)
    matches: List[Tuple[int, int]] = field(default_factory=list)  # (send occ, recv occ)
    final_states: Dict[str, Tuple[int, bool]] = field(default_factory=dict)

    def order_assignment(self) -> Dict[int, int]:
        """O variable values; matched pairs share the same order index."""
        orders: Dict[int, int] = {}
        partner: Dict[int, int] = {}
        for send_occ, recv_occ in self.matches:
            partner[send_occ] = recv_occ
            partner[recv_occ] = send_occ
        index = 0
        for occ in self.schedule:
            other = partner.get(occ.occ_id)
            if other is not None and other in orders:
                orders[occ.occ_id] = orders[other]
                continue
            orders[occ.occ_id] = index
            index += 1
        return orders

    def render(self) -> str:
        orders = self.order_assignment()
        parts = [f"O{occ.occ_id}={orders.get(occ.occ_id, '?')}" for occ in self.schedule]
        parts.extend(f"P(s{s},r{r})=1" for s, r in self.matches)
        parts.extend(
            f"CB[{label}]={count}{'(closed)' if closed else ''}"
            for label, (count, closed) in self.final_states.items()
        )
        return " ∧ ".join(parts)


class _PrimState:
    """Mutable simulation state of one primitive under the paper's model."""

    __slots__ = ("count", "closed", "readers")

    def __init__(self):
        self.count = 0  # buffered elements / mutex held / waitgroup counter
        self.closed = False
        self.readers = 0

    def key(self) -> Tuple[int, bool, int]:
        return (self.count, self.closed, self.readers)


class _Search:
    def __init__(self, system: ConstraintSystem, max_nodes: Optional[int] = None):
        self.system = system
        self.max_nodes = max_nodes if max_nodes is not None else MAX_NODES
        self.events: Dict[int, List[Occurrence]] = system.per_goroutine
        self.gids = sorted(self.events)
        self.prims = system.primitives()
        self.prim_index = {id(p): i for i, p in enumerate(self.prims)}
        self.visited: set = set()
        self.nodes = 0
        self.exhausted = False  # node budget hit before the search finished
        self.schedule: List[Occurrence] = []
        self.matches: List[Tuple[int, int]] = []

    # -- state helpers ---------------------------------------------------

    def _initial_states(self) -> List[_PrimState]:
        return [_PrimState() for _ in self.prims]

    def _state_of(self, states: List[_PrimState], prim: Primitive) -> _PrimState:
        idx = self.prim_index.get(id(prim))
        if idx is None:
            # primitive only appears in stop events; track it lazily
            self.prims.append(prim)
            self.prim_index[id(prim)] = len(self.prims) - 1
            states.append(_PrimState())
            return states[-1]
        while idx >= len(states):
            states.append(_PrimState())
        return states[idx]

    def _key(self, progress: Tuple[int, ...], states: List[_PrimState]) -> Tuple:
        return (progress, tuple(s.key() for s in states))

    # -- spawn enabling -----------------------------------------------------

    def _enabled(self, gid: int, progress: Dict[int, int]) -> bool:
        spawn = self.system.spawn_of.get(gid)
        if spawn is None:
            return True
        parent_events = self.events[spawn.gid]
        spawn_pos = next(
            (i for i, occ in enumerate(parent_events) if occ is spawn), None
        )
        if spawn_pos is None:
            return True
        return progress[spawn.gid] > spawn_pos

    # -- proceed conditions (Φ_sync) ------------------------------------------

    def _op_executable(
        self, op: OpEvent, states: List[_PrimState], progress: Dict[int, int], self_gid: int
    ) -> Tuple[bool, Optional[Tuple[int, OpEvent]]]:
        """Can this operation proceed *without* a rendezvous partner?

        Returns (solo_ok, partner) where partner is a (gid, OpEvent) whose
        next occurrence forms a rendezvous enabling both.
        """
        state = self._state_of(states, op.prim)
        bs = self.system.buffer_size(op.prim)
        kind = op.kind
        if kind == "send":
            partner = self._find_partner(op.prim, "recv", progress, self_gid)
            if state.closed:
                return True, partner  # proceeds (by panicking) under Go semantics
            return state.count < bs, partner
        if kind == "recv":
            partner = self._find_partner(op.prim, "send", progress, self_gid)
            return state.count > 0 or state.closed, partner
        if kind == "close":
            return True, None
        if kind == "lock":
            return state.count == 0 and state.readers == 0, None
        if kind == "rlock":
            return state.count == 0, None
        if kind == "unlock":
            return state.count == 1, None
        if kind == "runlock":
            return state.readers > 0, None
        if kind == "add":
            return True, None
        if kind == "done":
            return True, None
        if kind == "wait":
            return state.count == 0, None
        if kind == "condwait":
            # Wait = receive on an unbuffered pseudo-channel: only a
            # simultaneous Signal can let it proceed
            partner = self._find_partner(op.prim, "signal", progress, self_gid)
            return False, partner
        if kind == "signal":
            # Signal = send inside a select with default: never blocks,
            # and may rendezvous with a waiting goroutine
            partner = self._find_partner(op.prim, "condwait", progress, self_gid)
            return True, partner
        return True, None

    def _find_partner(
        self, prim: Primitive, needed_kind: str, progress: Dict[int, int], self_gid: int
    ) -> Optional[Tuple[int, OpEvent]]:
        for gid in self.gids:
            if gid == self_gid or not self._enabled(gid, progress):
                continue
            events = self.events[gid]
            pos = progress[gid]
            if pos >= len(events):
                continue
            occ = events[pos]
            candidate = _op_of(occ)
            if candidate is None:
                continue
            if candidate.kind == needed_kind and candidate.prim is prim:
                return gid, candidate
        return None

    def _apply_op(self, op: OpEvent, states: List[_PrimState]) -> None:
        state = self._state_of(states, op.prim)
        bs = self.system.buffer_size(op.prim)
        kind = op.kind
        if kind == "send" and not state.closed and state.count < bs:
            state.count += 1
        elif kind == "recv":
            if state.count > 0:
                state.count -= 1
            # recv from closed-and-empty: state unchanged (zero value)
        elif kind == "close":
            state.closed = True
        elif kind == "lock":
            state.count = 1
        elif kind == "rlock":
            state.readers += 1
        elif kind == "unlock":
            state.count = 0
        elif kind == "runlock":
            state.readers = max(0, state.readers - 1)
        elif kind == "add":
            state.count += _wg_delta(op)
        elif kind == "done":
            state.count = max(0, state.count - 1)
        # 'wait' leaves state unchanged

    def _select_executable(
        self, choice: SelectChoice, states: List[_PrimState], progress: Dict[int, int], gid: int
    ) -> Tuple[bool, Optional[Tuple[int, OpEvent]], Optional[OpEvent]]:
        """(executable_solo, rendezvous_partner, op_to_apply)."""
        chosen = choice.chosen
        if chosen == "other":
            return True, None, None
        if chosen == "default":
            # default proceeds only when no case can proceed right now
            for case in choice.pset_cases:
                solo, partner = self._op_executable(case, states, progress, gid)
                if solo or partner is not None:
                    return False, None, None
            return True, None, None
        assert isinstance(chosen, OpEvent)
        solo, partner = self._op_executable(chosen, states, progress, gid)
        return solo, partner, chosen

    # -- main search -------------------------------------------------------------

    def run(self) -> Optional[Solution]:
        progress = {gid: 0 for gid in self.gids}
        states = self._initial_states()
        if self._dfs(progress, states):
            final: Dict[str, Tuple[int, bool]] = {}
            for prim in self.prims:
                state = self._state_of(states, prim)
                final[prim.site.label or str(prim.site)] = (state.count, state.closed)
            return Solution(
                schedule=list(self.schedule), matches=list(self.matches), final_states=final
            )
        return None

    def _dfs(self, progress: Dict[int, int], states: List[_PrimState]) -> bool:
        self.nodes += 1
        if self.nodes > self.max_nodes:
            self.exhausted = True
            return False
        if all(progress[gid] >= len(self.events[gid]) for gid in self.gids):
            return self._check_blocking(states, progress)
        key = self._key(tuple(progress[g] for g in self.gids), states)
        if key in self.visited:
            return False
        self.visited.add(key)
        for gid in self.gids:
            pos = progress[gid]
            events = self.events[gid]
            if pos >= len(events) or not self._enabled(gid, progress):
                continue
            occ = events[pos]
            event = occ.event
            if isinstance(event, SpawnEvent):
                if self._step_simple(gid, occ, progress, states, apply_op=None):
                    return True
                continue
            if isinstance(event, OpEvent):
                solo, partner = self._op_executable(event, states, progress, gid)
                if solo and self._step_simple(gid, occ, progress, states, apply_op=event):
                    return True
                if partner is not None and self._step_rendezvous(
                    gid, occ, event, partner, progress, states
                ):
                    return True
                continue
            if isinstance(event, SelectChoice):
                solo, partner, op = self._select_executable(event, states, progress, gid)
                if solo and self._step_simple(gid, occ, progress, states, apply_op=op):
                    return True
                if partner is not None and op is not None and self._step_rendezvous(
                    gid, occ, op, partner, progress, states
                ):
                    return True
                continue
        return False

    def _step_simple(
        self,
        gid: int,
        occ: Occurrence,
        progress: Dict[int, int],
        states: List[_PrimState],
        apply_op: Optional[OpEvent],
    ) -> bool:
        saved = [s.key() for s in states]
        if apply_op is not None:
            self._apply_op(apply_op, states)
        progress[gid] += 1
        self.schedule.append(occ)
        if self._dfs(progress, states):
            return True
        self.schedule.pop()
        progress[gid] -= 1
        _restore(states, saved)
        return False

    def _step_rendezvous(
        self,
        gid: int,
        occ: Occurrence,
        op: OpEvent,
        partner: Tuple[int, OpEvent],
        progress: Dict[int, int],
        states: List[_PrimState],
    ) -> bool:
        partner_gid, partner_op = partner
        partner_occ = self.events[partner_gid][progress[partner_gid]]
        saved = [s.key() for s in states]
        # a rendezvous transfers directly: net channel state is unchanged
        progress[gid] += 1
        progress[partner_gid] += 1
        self.schedule.append(occ)
        self.schedule.append(partner_occ)
        if op.kind == "send":
            self.matches.append((occ.occ_id, partner_occ.occ_id))
        else:
            self.matches.append((partner_occ.occ_id, occ.occ_id))
        if self._dfs(progress, states):
            return True
        self.matches.pop()
        self.schedule.pop()
        self.schedule.pop()
        progress[gid] -= 1
        progress[partner_gid] -= 1
        _restore(states, saved)
        return False

    # -- Φ_B -------------------------------------------------------------------

    def _check_blocking(self, states: List[_PrimState], progress: Dict[int, int]) -> bool:
        for stop in self.system.stops:
            if not self._stop_blocked(stop, states):
                return False
        return True

    def _stop_blocked(self, stop: StopPoint, states: List[_PrimState]) -> bool:
        event = stop.event
        if isinstance(event, OpEvent):
            return self._op_blocked(event, states, getattr(stop, "attempts", 1))
        if isinstance(event, SelectChoice):
            if event.has_default or event.has_other_cases:
                return False
            return all(self._op_blocked(case, states) for case in event.pset_cases)
        return False

    def _op_blocked(
        self, op: OpEvent, states: List[_PrimState], attempts: Optional[int] = 1
    ) -> bool:
        state = self._state_of(states, op.prim)
        bs = self.system.buffer_size(op.prim)
        kind = op.kind
        if kind == "send":
            if state.closed:
                return False
            if attempts is None:
                # unboundedly repeated send (cut loop): any finite buffer
                # headroom is eventually exhausted
                return True
            # attempts=1 reduces to the paper's CB >= BS rule
            return attempts > bs - state.count
        if kind == "recv":
            return not state.closed and state.count == 0
        if kind == "lock":
            return state.count == 1 or state.readers > 0
        if kind == "rlock":
            return state.count == 1
        if kind == "wait":
            return state.count > 0
        if kind == "condwait":
            return True  # no future signal can arrive once everyone stopped
        return False


def _restore(states: List[_PrimState], saved: List[Tuple[int, bool, int]]) -> None:
    for state, key in zip(states, saved):
        state.count, state.closed, state.readers = key
    # states added lazily after the snapshot were fresh: reset them
    for state in states[len(saved) :]:
        state.count, state.closed, state.readers = 0, False, 0


def _op_of(occ: Occurrence) -> Optional[OpEvent]:
    if isinstance(occ.event, OpEvent):
        return occ.event
    if isinstance(occ.event, SelectChoice) and isinstance(occ.event.chosen, OpEvent):
        return occ.event.chosen
    return None


def _wg_delta(op: OpEvent) -> int:
    from repro.ssa import ir

    instr = op.instr
    if isinstance(instr, ir.WgAdd) and isinstance(instr.delta, ir.Const):
        return int(instr.delta.value or 0)
    return 1


@dataclass
class SolveOutcome:
    """One decision-procedure invocation, with its effort accounted."""

    solution: Optional[Solution]
    outcome: str  # SAT | UNSAT | TIMEOUT
    nodes: int  # interleaving-search states visited
    clauses: int  # size of the constraint system decided

    @property
    def sat(self) -> bool:
        return self.solution is not None


def solve_detailed(
    system: ConstraintSystem, collector=None, max_nodes: Optional[int] = None
) -> SolveOutcome:
    """Decide Φ_R ∧ Φ_B and report the verdict plus solver effort.

    ``collector`` (a :class:`repro.obs.Collector`) receives the
    ``solver.calls`` / ``solver.sat`` / ``solver.unsat`` /
    ``solver.timeout`` / ``solver.nodes`` counters. ``max_nodes``
    overrides the module-level :data:`MAX_NODES` budget for this call —
    the per-primitive node-budget discipline of :mod:`repro.engine`.
    """
    search = _Search(system, max_nodes=max_nodes)
    solution = search.run()
    if solution is not None:
        outcome = SAT
    elif search.exhausted:
        outcome = TIMEOUT
    else:
        outcome = UNSAT
    if collector:
        collector.count("solver.calls")
        collector.count(f"solver.{outcome}")
        collector.count("solver.nodes", search.nodes)
    return SolveOutcome(
        solution=solution, outcome=outcome, nodes=search.nodes, clauses=system.clause_count()
    )


def solve(system: ConstraintSystem, collector=None) -> Optional[Solution]:
    """Decide Φ_R ∧ Φ_B; returns a witness Solution or None (UNSAT)."""
    return solve_detailed(system, collector).solution
