"""Construction of Φ_R ∧ Φ_B for a suspicious group (paper §3.4).

Given a path combination and a suspicious group (a stop point per blocked
goroutine), this module produces a :class:`ConstraintSystem`:

* occurrences — every schedulable event of every goroutine, truncated just
  *before* each group operation (Φ_R asks that everything before the group
  executes);
* Φ_order — per-path total order between occurrences of one goroutine;
* Φ_spawn — a goroutine's first occurrence follows its spawn event;
* Φ_sync — proceed conditions for every channel/mutex occurrence that must
  execute, over CB/CLOSED/BS state and P match variables;
* Φ_B — each group operation must be *unable* to proceed at the end.

The system is decided by :mod:`repro.constraints.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.primitives import Primitive
from repro.constraints.variables import BufferSizeConst, OrderVar
from repro.detector.paths import OpEvent, PathCombination, SelectChoice, SpawnEvent

DEFAULT_BUFFER_GUESS = 0  # unknown (non-constant) buffer sizes: assume unbuffered


@dataclass
class Occurrence:
    """A schedulable event occurrence inside the constraint system."""

    occ_id: int
    gid: int
    event: object  # OpEvent | SelectChoice | SpawnEvent
    order_var: OrderVar = None  # type: ignore[assignment]

    @property
    def line(self) -> int:
        return getattr(self.event, "line", 0)

    def describe(self) -> str:
        return f"g{self.gid}:{self.event!r}"


@dataclass
class StopPoint:
    """One member of the suspicious group: where a goroutine stops/blocks."""

    gid: int
    event: object  # OpEvent | SelectChoice

    @property
    def line(self) -> int:
        return getattr(self.event, "line", 0)


@dataclass
class ConstraintSystem:
    """Φ_R ∧ Φ_B for one (path combination, suspicious group) pair."""

    occurrences: List[Occurrence] = field(default_factory=list)
    per_goroutine: Dict[int, List[Occurrence]] = field(default_factory=dict)
    spawn_of: Dict[int, Optional[Occurrence]] = field(default_factory=dict)
    stops: List[StopPoint] = field(default_factory=list)
    buffer_sizes: Dict[Primitive, int] = field(default_factory=dict)
    order_constraints: List[Tuple[int, int]] = field(default_factory=list)

    def primitives(self) -> List[Primitive]:
        prims: List[Primitive] = []
        seen = set()

        def note(prim: Primitive) -> None:
            if id(prim) not in seen:
                seen.add(id(prim))
                prims.append(prim)

        for occ in self.occurrences:
            if isinstance(occ.event, OpEvent):
                note(occ.event.prim)
            elif isinstance(occ.event, SelectChoice):
                for case in occ.event.pset_cases:
                    note(case.prim)
        for stop in self.stops:
            if isinstance(stop.event, OpEvent):
                note(stop.event.prim)
            elif isinstance(stop.event, SelectChoice):
                for case in stop.event.pset_cases:
                    note(case.prim)
        return prims

    def buffer_size(self, prim: Primitive) -> int:
        return self.buffer_sizes.get(prim, DEFAULT_BUFFER_GUESS)

    def clause_count(self) -> int:
        """Size of Φ_R ∧ Φ_B: one clause per order/spawn constraint, per
        proceed condition (Φ_sync) and per blocking condition (Φ_B)."""
        return len(self.order_constraints) + len(self.occurrences) + len(self.stops)

    # -- pretty-printing, for reports and tests ---------------------------

    def render(self) -> str:
        lines: List[str] = ["Φ_order ∧ Φ_spawn:"]
        for a, b in self.order_constraints:
            lines.append(f"  O{a} < O{b}")
        lines.append("Φ_sync (proceed):")
        for occ in self.occurrences:
            if isinstance(occ.event, OpEvent):
                lines.append(f"  proceed({occ.describe()})")
            elif isinstance(occ.event, SelectChoice):
                lines.append(f"  proceed-select({occ.describe()})")
        lines.append("Φ_B (block):")
        for stop in self.stops:
            lines.append(f"  block(g{stop.gid}:{stop.event!r})")
        lines.append("buffer sizes:")
        for prim, size in self.buffer_sizes.items():
            lines.append(f"  {BufferSizeConst(prim.site.label, size)}")
        return "\n".join(lines)


#: version tag of the Φ_R ∧ Φ_B encoding; part of every cache fingerprint,
#: so bumping it invalidates all cached detection results (repro.engine)
ENCODER_VERSION = "1"


def encode(
    combo: PathCombination, stops: List[StopPoint], collector=None
) -> ConstraintSystem:
    """Build the constraint system for one suspicious group."""
    system = ConstraintSystem(stops=stops)
    stop_index: Dict[int, int] = {}
    for stop in stops:
        goroutine = next(g for g in combo.goroutines if g.gid == stop.gid)
        stop_index[stop.gid] = goroutine.path.events.index(stop.event)

    occ_id = 0
    spawn_occurrence: Dict[Tuple[int, int], Occurrence] = {}
    for goroutine in combo.goroutines:
        events = goroutine.path.events
        limit = stop_index.get(goroutine.gid, len(events))
        occs: List[Occurrence] = []
        for event in events[:limit]:
            if isinstance(event, (OpEvent, SelectChoice, SpawnEvent)):
                occ = Occurrence(occ_id=occ_id, gid=goroutine.gid, event=event)
                occ.order_var = OrderVar(occ_id, getattr(event, "line", 0))
                occ_id += 1
                occs.append(occ)
                system.occurrences.append(occ)
                if isinstance(event, SpawnEvent):
                    event_idx = events.index(event)
                    spawn_occurrence[(goroutine.gid, event_idx)] = occ
        system.per_goroutine[goroutine.gid] = occs
        for first, second in zip(occs, occs[1:]):
            system.order_constraints.append((first.occ_id, second.occ_id))

    # Φ_spawn: a child's occurrences follow its parent's spawn occurrence
    for goroutine in combo.goroutines:
        if goroutine.parent_gid is None or goroutine.spawn_index is None:
            system.spawn_of[goroutine.gid] = None
            continue
        occ = spawn_occurrence.get((goroutine.parent_gid, goroutine.spawn_index))
        system.spawn_of[goroutine.gid] = occ
        if occ is not None:
            children = system.per_goroutine.get(goroutine.gid, [])
            if children:
                system.order_constraints.append((occ.occ_id, children[0].occ_id))

    # BS constants
    for prim in system.primitives():
        size = prim.buffer_size()
        system.buffer_sizes[prim] = size if size is not None else DEFAULT_BUFFER_GUESS
    if collector:
        collector.count("constraints.systems")
        collector.count("constraints.clauses", system.clause_count())
        collector.observe("constraints.clauses-per-system", system.clause_count())
    return system
