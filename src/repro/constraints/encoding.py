"""Construction of Φ_R ∧ Φ_B for a suspicious group (paper §3.4).

Given a path combination and a suspicious group (a stop point per blocked
goroutine), this module produces a :class:`ConstraintSystem`:

* occurrences — every schedulable event of every goroutine, truncated just
  *before* each group operation (Φ_R asks that everything before the group
  executes);
* Φ_order — per-path total order between occurrences of one goroutine;
* Φ_spawn — a goroutine's first occurrence follows its spawn event;
* Φ_sync — proceed conditions for every channel/mutex occurrence that must
  execute, over CB/CLOSED/BS state and P match variables;
* Φ_B — each group operation must be *unable* to proceed at the end.

The system is decided by :mod:`repro.constraints.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.primitives import Primitive
from repro.constraints.variables import BufferSizeConst, OrderVar
from repro.detector.paths import (
    BranchEvent,
    OpEvent,
    PathCombination,
    SelectChoice,
    SpawnEvent,
)

DEFAULT_BUFFER_GUESS = 0  # unknown (non-constant) buffer sizes: assume unbuffered


@dataclass
class Occurrence:
    """A schedulable event occurrence inside the constraint system."""

    occ_id: int
    gid: int
    event: object  # OpEvent | SelectChoice | SpawnEvent
    order_var: OrderVar = None  # type: ignore[assignment]

    @property
    def line(self) -> int:
        return getattr(self.event, "line", 0)

    def describe(self) -> str:
        return f"g{self.gid}:{self.event!r}"


@dataclass
class StopPoint:
    """One member of the suspicious group: where a goroutine stops/blocks.

    ``attempts`` is the estimated number of times the stopped operation is
    still attempted once the goroutine reaches it: 1 for an ordinary stop
    (exactly this occurrence), ``None`` for an operation inside a loop the
    enumerator cut whose trip count is statically unknown (unboundedly many
    further attempts), k >= 1 for a cut counted loop with ~k iterations
    left. Φ_B for a send becomes ``attempts > BS - CB`` — with attempts=1
    that is the paper's plain ``CB >= BS`` rule. Set by :func:`encode`.
    """

    gid: int
    event: object  # OpEvent | SelectChoice
    attempts: Optional[int] = 1

    @property
    def line(self) -> int:
        return getattr(self.event, "line", 0)


@dataclass
class ConstraintSystem:
    """Φ_R ∧ Φ_B for one (path combination, suspicious group) pair."""

    occurrences: List[Occurrence] = field(default_factory=list)
    per_goroutine: Dict[int, List[Occurrence]] = field(default_factory=dict)
    spawn_of: Dict[int, Optional[Occurrence]] = field(default_factory=dict)
    stops: List[StopPoint] = field(default_factory=list)
    buffer_sizes: Dict[Primitive, int] = field(default_factory=dict)
    order_constraints: List[Tuple[int, int]] = field(default_factory=list)

    def primitives(self) -> List[Primitive]:
        prims: List[Primitive] = []
        seen = set()

        def note(prim: Primitive) -> None:
            if id(prim) not in seen:
                seen.add(id(prim))
                prims.append(prim)

        for occ in self.occurrences:
            if isinstance(occ.event, OpEvent):
                note(occ.event.prim)
            elif isinstance(occ.event, SelectChoice):
                for case in occ.event.pset_cases:
                    note(case.prim)
        for stop in self.stops:
            if isinstance(stop.event, OpEvent):
                note(stop.event.prim)
            elif isinstance(stop.event, SelectChoice):
                for case in stop.event.pset_cases:
                    note(case.prim)
        return prims

    def buffer_size(self, prim: Primitive) -> int:
        return self.buffer_sizes.get(prim, DEFAULT_BUFFER_GUESS)

    def clause_count(self) -> int:
        """Size of Φ_R ∧ Φ_B: one clause per order/spawn constraint, per
        proceed condition (Φ_sync) and per blocking condition (Φ_B)."""
        return len(self.order_constraints) + len(self.occurrences) + len(self.stops)

    # -- pretty-printing, for reports and tests ---------------------------

    def render(self) -> str:
        lines: List[str] = ["Φ_order ∧ Φ_spawn:"]
        for a, b in self.order_constraints:
            lines.append(f"  O{a} < O{b}")
        lines.append("Φ_sync (proceed):")
        for occ in self.occurrences:
            if isinstance(occ.event, OpEvent):
                lines.append(f"  proceed({occ.describe()})")
            elif isinstance(occ.event, SelectChoice):
                lines.append(f"  proceed-select({occ.describe()})")
        lines.append("Φ_B (block):")
        for stop in self.stops:
            lines.append(f"  block(g{stop.gid}:{stop.event!r})")
        lines.append("buffer sizes:")
        for prim, size in self.buffer_sizes.items():
            lines.append(f"  {BufferSizeConst(prim.site.label, size)}")
        return "\n".join(lines)


#: version tag of the Φ_R ∧ Φ_B encoding; part of every cache fingerprint,
#: so bumping it invalidates all cached detection results (repro.engine)
ENCODER_VERSION = "1"


def repeat_attempts(path, stop_event, stop_index: Optional[int] = None) -> Optional[int]:
    """Estimate how many more times a stop operation will be attempted.

    Ordinary stops get 1 (the operation happens exactly once more). A send
    inside a loop the enumerator *cut* at the unroll limit keeps being
    attempted on every further iteration, so its remaining-attempt count is
    the loop's trip bound minus the iterations already on the path — or
    ``None`` (unbounded) when the trip count is statically unknown. The
    bound comes from a repeated read-only branch ``var < C`` / ``var <= C``
    guarding the loop body (MiniGo counted loops start at 0 with step 1);
    anything else is conservatively unbounded.

    Only sends are treated as repeatable: a blocked recv in a cut loop is
    already blocked at its first unmatched occurrence, and suspicious-group
    validity (no complementary send/recv stops in one group) makes the
    solo-fill reasoning for sends sound. That reasoning also needs the
    *loop body itself* to only fill: a recv or close on the same primitive
    inside the iteration window drains (or ends) what the repeated send
    accumulates, so such loops keep the ordinary single-attempt estimate —
    a self-draining pump never fills its own buffer.
    """
    if not getattr(path, "cut", False):
        return 1
    if not isinstance(stop_event, OpEvent) or stop_event.kind != "send":
        return 1
    if stop_event.instr is None:
        return 1
    events = path.events
    if stop_index is None:
        stop_index = events.index(stop_event)
    instances = [
        i
        for i, e in enumerate(events)
        if isinstance(e, OpEvent) and e.kind == "send" and e.instr is stop_event.instr
    ]
    if len(instances) < 2:
        return 1  # not repeated on the cut prefix: no loop evidence
    prim = stop_event.prim
    for e in events[instances[0] + 1 : instances[1]]:
        if (
            isinstance(e, OpEvent)
            and e.prim is prim
            and e.kind in ("recv", "close")
        ):
            return 1  # the loop drains the same primitive it fills
        if isinstance(e, SelectChoice) and any(
            case.prim is prim and case.kind == "recv" for case in e.pset_cases
        ):
            return 1
    executed = sum(1 for i in instances if i < stop_index)
    bound = _trip_bound(events, instances)
    if bound is None:
        return None
    return max(1, bound - executed)


def _trip_bound(events, instances) -> Optional[int]:
    """Trip bound of the cut loop around repeated op ``instances``.

    A candidate is a taken ``var < C`` / ``var <= C`` branch over an int
    constant that repeats with the op (it appears inside the iteration
    window between two consecutive instances *and* at least twice on the
    path) — the shape MiniGo's counted ``for i < C`` loops lower to.
    """
    lo, hi = instances[0], instances[1]
    window = {
        (e.var, e.op, e.const)
        for e in events[lo + 1 : hi]
        if isinstance(e, BranchEvent) and e.taken
    }
    counts: Dict[tuple, int] = {}
    for e in events:
        if isinstance(e, BranchEvent) and e.taken:
            sig = (e.var, e.op, e.const)
            counts[sig] = counts.get(sig, 0) + 1
    bounds = []
    for var, op, const in window:
        if counts.get((var, op, const), 0) < 2:
            continue
        if isinstance(const, bool) or not isinstance(const, int) or const < 1:
            continue
        if op == "<":
            bounds.append(const)
        elif op == "<=":
            bounds.append(const + 1)
    return min(bounds) if bounds else None


def encode(
    combo: PathCombination, stops: List[StopPoint], collector=None
) -> ConstraintSystem:
    """Build the constraint system for one suspicious group."""
    system = ConstraintSystem(stops=stops)
    stop_index: Dict[int, int] = {}
    for stop in stops:
        goroutine = next(g for g in combo.goroutines if g.gid == stop.gid)
        idx = goroutine.path.events.index(stop.event)
        stop_index[stop.gid] = idx
        stop.attempts = repeat_attempts(goroutine.path, stop.event, idx)

    occ_id = 0
    spawn_occurrence: Dict[Tuple[int, int], Occurrence] = {}
    for goroutine in combo.goroutines:
        events = goroutine.path.events
        limit = stop_index.get(goroutine.gid, len(events))
        occs: List[Occurrence] = []
        for event in events[:limit]:
            if isinstance(event, (OpEvent, SelectChoice, SpawnEvent)):
                occ = Occurrence(occ_id=occ_id, gid=goroutine.gid, event=event)
                occ.order_var = OrderVar(occ_id, getattr(event, "line", 0))
                occ_id += 1
                occs.append(occ)
                system.occurrences.append(occ)
                if isinstance(event, SpawnEvent):
                    event_idx = events.index(event)
                    spawn_occurrence[(goroutine.gid, event_idx)] = occ
        system.per_goroutine[goroutine.gid] = occs
        for first, second in zip(occs, occs[1:]):
            system.order_constraints.append((first.occ_id, second.occ_id))

    # Φ_spawn: a child's occurrences follow its parent's spawn occurrence
    for goroutine in combo.goroutines:
        if goroutine.parent_gid is None or goroutine.spawn_index is None:
            system.spawn_of[goroutine.gid] = None
            continue
        occ = spawn_occurrence.get((goroutine.parent_gid, goroutine.spawn_index))
        system.spawn_of[goroutine.gid] = occ
        if occ is not None:
            children = system.per_goroutine.get(goroutine.gid, [])
            if children:
                system.order_constraints.append((occ.occ_id, children[0].occ_id))

    # BS constants
    for prim in system.primitives():
        size = prim.buffer_size()
        system.buffer_sizes[prim] = size if size is not None else DEFAULT_BUFFER_GUESS
    if collector:
        collector.count("constraints.systems")
        collector.count("constraints.clauses", system.clause_count())
        collector.observe("constraints.clauses-per-system", system.clause_count())
    return system
