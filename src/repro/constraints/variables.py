"""Constraint variables of the BMOC constraint system (paper §3.4).

The novelty of GCatch's constraint system is that it models the *state* of
synchronization primitives:

* ``O`` variables — one per operation occurrence, its execution order;
* ``P`` variables — one per (send, recv) pair on the same channel from
  different goroutines; P=1 means the two operations match (rendezvous)
  and execute at the same order index;
* ``BS`` constants — a channel's buffer size;
* ``CB`` variables — the number of elements in the channel just before an
  occurrence executes;
* ``CLOSED`` variables — whether a closing operation happened earlier.

These classes are a faithful, printable representation of the formulas the
paper hands to Z3; the dedicated solver in :mod:`repro.constraints.solver`
decides them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class OrderVar:
    """O_i: execution order of occurrence ``occ_id``."""

    occ_id: int
    line: int = 0

    def __str__(self) -> str:
        return f"O{self.occ_id}" + (f"(l{self.line})" if self.line else "")


@dataclass(frozen=True)
class MatchVar:
    """P(s_i, r_j): sending occurrence i matches receiving occurrence j."""

    send_occ: int
    recv_occ: int

    def __str__(self) -> str:
        return f"P(s{self.send_occ},r{self.recv_occ})"


@dataclass(frozen=True)
class BufferSizeConst:
    """BS: the (static) buffer size of a channel primitive."""

    prim_label: str
    value: Optional[int]

    def __str__(self) -> str:
        value = "?" if self.value is None else self.value
        return f"BS[{self.prim_label}]={value}"


@dataclass(frozen=True)
class ChanStateVar:
    """CB_i: elements buffered in the channel just before occurrence i."""

    occ_id: int
    prim_label: str

    def __str__(self) -> str:
        return f"CB{self.occ_id}[{self.prim_label}]"


@dataclass(frozen=True)
class ClosedVar:
    """CLOSED_i: whether the channel is closed before occurrence i."""

    occ_id: int
    prim_label: str

    def __str__(self) -> str:
        return f"CLOSED{self.occ_id}[{self.prim_label}]"
