"""Batched, incremental constraint solving for one primitive (ROADMAP item 2).

The BMOC detector decides Φ_R ∧ Φ_B once per (path combination, suspicious
group) pair — for one channel that is typically dozens of small systems
whose goroutine paths share long identical prefixes (truncation at a stop
point erases exactly the part of a path that differed). A
:class:`SolverSession` exploits that redundancy three ways:

* **shared difference-closure** — the per-combination structure every
  group's encoding re-derives (schedulable-event positions, spawn linkage,
  primitive identities, repeat-attempt estimates) is computed once per
  combination and shared by all of its groups;
* **interning** — path/constraint structures are hash-consed into
  descriptor tuples: an event descriptor is built once per event object, a
  truncated path slice once per (path, stop) pair (``solver.intern.hit``
  counts slice reuse), so identical subformulas are keyed without
  re-walking their events;
* **batched incremental solving** — all of one primitive's group solves
  run inside one session with push/pop group scopes; a group whose
  *structural key* (the interned formula plus its node budget) was already
  decided reuses the verdict (``solver.session.reuse``) instead of
  re-encoding and re-searching.

Equivalence argument (DESIGN.md §14): the decision procedure is a
deterministic function of the constraint-system *structure* — per-goroutine
descriptor sequences in combination order, spawn linkage, stop descriptors
with their attempt estimates, buffer sizes, and the per-solve node budget.
Two groups with equal structural keys therefore produce identical
``SolveOutcome``s (same verdict, same node count, same clause count, and a
witness whose rendering — occ ids, match pairs, final states keyed by
primitive label — is identical). Primitive identity is interned per
session *by object*, so distinct primitives that merely share a label can
never collide. The memo is only ever a cache of ``encode`` +
``solve_detailed`` on the same inputs; misses run exactly the classic
code path.

The session lives for one primitive's analysis (one engine shard), so no
state crosses shard or process boundaries; budgets stay per group because
the caller still charges ``outcome.nodes`` for hits and misses alike —
the memoized node count equals what a fresh search would have spent.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.constraints.encoding import StopPoint, encode, repeat_attempts
from repro.constraints.solver import SolveOutcome, _wg_delta, solve_detailed
from repro.detector.paths import (
    OpEvent,
    Path,
    PathCombination,
    SelectChoice,
    SpawnEvent,
)
from repro.obs import NULL, STAGE_ENCODE, STAGE_SOLVE

#: detection solver modes: ``batched`` routes per-group solves through a
#: SolverSession; ``classic`` encodes and solves every group from scratch
SOLVER_MODES = ("batched", "classic")
DEFAULT_SOLVER_MODE = "batched"


class SolverSession:
    """One primitive's incremental solver: interned structures + verdict memo."""

    def __init__(self, collector=None):
        self.collector = collector or NULL
        # hash-consing tables (all keyed by object identity; event, path and
        # primitive objects are stable for the lifetime of one analysis)
        self._prim_index: Dict[int, int] = {}
        self._prims: List[object] = []  # keeps interned prims alive
        self._event_desc: Dict[int, tuple] = {}
        self._sched: Dict[int, Tuple[Tuple[int, tuple], ...]] = {}
        self._pos: Dict[int, Dict[int, int]] = {}
        self._slices: Dict[Tuple[int, int], tuple] = {}
        self._attempts: Dict[Tuple[int, int], Optional[int]] = {}
        self._combo_spawns: Dict[int, tuple] = {}
        self._combo_gid_pos: Dict[int, Dict[int, int]] = {}
        # the verdict memo and the push/pop scope stack
        self._memo: Dict[tuple, SolveOutcome] = {}
        self._scopes: List[tuple] = []
        self.reuse = 0
        self.intern_hits = 0
        self.solves = 0

    # -- hash-consing ------------------------------------------------------

    def _prim_key(self, prim) -> int:
        key = self._prim_index.get(id(prim))
        if key is None:
            key = len(self._prims)
            self._prim_index[id(prim)] = key
            self._prims.append(prim)
        return key

    def _describe(self, event) -> tuple:
        desc = self._event_desc.get(id(event))
        if desc is not None:
            return desc
        if isinstance(event, OpEvent):
            delta = _wg_delta(event) if event.kind == "add" else 0
            desc = ("op", event.kind, self._prim_key(event.prim), delta)
        elif isinstance(event, SelectChoice):
            chosen = event.chosen
            if isinstance(chosen, OpEvent):
                chosen = self._describe(chosen)
            desc = (
                "sel",
                chosen,
                tuple(self._describe(case) for case in event.pset_cases),
                event.has_other_cases,
                event.has_default,
            )
        elif isinstance(event, SpawnEvent):
            desc = ("go",)
        else:  # branch/loop events are not schedulable; never keyed
            desc = ("?",)
        self._event_desc[id(event)] = desc
        return desc

    def _sched_events(self, path: Path) -> Tuple[Tuple[int, tuple], ...]:
        """(full-event index, descriptor) for each schedulable event."""
        cached = self._sched.get(id(path))
        if cached is None:
            cached = tuple(
                (i, self._describe(e))
                for i, e in enumerate(path.events)
                if isinstance(e, (OpEvent, SelectChoice, SpawnEvent))
            )
            self._sched[id(path)] = cached
            self._pos[id(path)] = {
                id(e): i for i, e in enumerate(path.events)
            }
        return cached

    def _event_position(self, path: Path, event) -> int:
        self._sched_events(path)
        return self._pos[id(path)][id(event)]

    def _slice_key(self, path: Path, limit: int) -> tuple:
        """Interned descriptor tuple of ``path``'s schedulable prefix."""
        key = (id(path), limit)
        got = self._slices.get(key)
        if got is not None:
            self.intern_hits += 1
            if self.collector:
                self.collector.count("solver.intern.hit")
            return got
        sched = self._sched_events(path)
        got = tuple(desc for index, desc in sched if index < limit)
        self._slices[key] = got
        return got

    def _stop_attempts(self, path: Path, stop: StopPoint) -> Optional[int]:
        key = (id(path), id(stop.event))
        if key not in self._attempts:
            self._attempts[key] = repeat_attempts(
                path, stop.event, self._event_position(path, stop.event)
            )
        return self._attempts[key]

    # -- the shared per-combination closure --------------------------------

    def _combo_closure(self, combo: PathCombination) -> Tuple[tuple, Dict[int, int]]:
        """Spawn-linkage tuple + gid→position map, derived once per combo."""
        spawns = self._combo_spawns.get(id(combo))
        if spawns is None:
            gid_pos = {g.gid: i for i, g in enumerate(combo.goroutines)}
            spawns = tuple(
                (
                    gid_pos[g.parent_gid] if g.parent_gid is not None else -1,
                    g.spawn_index if g.spawn_index is not None else -1,
                )
                for g in combo.goroutines
            )
            self._combo_spawns[id(combo)] = spawns
            self._combo_gid_pos[id(combo)] = gid_pos
        return spawns, self._combo_gid_pos[id(combo)]

    # -- keys, scopes, solving ---------------------------------------------

    def group_key(
        self,
        combo: PathCombination,
        group: List[StopPoint],
        max_nodes: Optional[int] = None,
    ) -> tuple:
        """Structural key of one (combination, group, budget) solve.

        Building the key also fixes every stop's ``attempts`` estimate (the
        same value :func:`repro.constraints.encoding.encode` would derive),
        so memo hits leave the group's StopPoints identical to a miss.
        """
        spawns, gid_pos = self._combo_closure(combo)
        stop_by_gid = {stop.gid: stop for stop in group}
        paths: List[tuple] = []
        for g in combo.goroutines:
            stop = stop_by_gid.get(g.gid)
            limit = (
                self._event_position(g.path, stop.event)
                if stop is not None
                else len(g.path.events)
            )
            paths.append(self._slice_key(g.path, limit))
        stops = []
        for stop in group:
            g = combo.goroutines[gid_pos[stop.gid]]
            stop.attempts = self._stop_attempts(g.path, stop)
            stops.append((gid_pos[stop.gid], self._describe(stop.event), stop.attempts))
        return (tuple(paths), spawns, tuple(stops), max_nodes)

    @property
    def depth(self) -> int:
        """Current push/pop nesting (0 when no group scope is open)."""
        return len(self._scopes)

    def push_group(self, key: tuple) -> None:
        self._scopes.append(key)

    def pop_group(self) -> tuple:
        return self._scopes.pop()

    def solve_group(
        self,
        combo: PathCombination,
        group: List[StopPoint],
        max_nodes: Optional[int] = None,
    ) -> SolveOutcome:
        """Decide one group inside this session.

        The group's constraints live in their own push/pop scope: they are
        popped before returning, so nothing a group asserted survives into
        the next group's solve (the no-leakage property the session tests
        assert). ``max_nodes`` is the *per-group* budget and part of the
        memo key — a group re-solved under a smaller budget cannot reuse a
        verdict obtained under a larger one.
        """
        obs = self.collector
        key = self.group_key(combo, group, max_nodes)
        self.push_group(key)
        try:
            hit = self._memo.get(key)
            if hit is not None:
                self.reuse += 1
                if obs:
                    obs.count("solver.session.reuse")
                return hit
            start = time.perf_counter()
            with obs.span(STAGE_ENCODE):
                system = encode(combo, group, obs if obs else None)
            with obs.span(STAGE_SOLVE):
                outcome = solve_detailed(
                    system, obs if obs else None, max_nodes=max_nodes
                )
            self.solves += 1
            if obs:
                obs.observe("solver.batched.seconds", time.perf_counter() - start)
            self._memo[key] = outcome
            return outcome
        finally:
            self.pop_group()
