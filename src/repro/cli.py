"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the paper's tooling:

* ``detect FILE``     — run GCatch (BMOC + traditional checkers);
* ``fix FILE``        — run GCatch, then GFix; print unified diffs;
* ``run FILE``        — execute under the seeded scheduler, report leaks;
* ``explore FILE``    — systematically enumerate schedules, report every
  distinct outcome (the dynamic oracle as a checker);
* ``diffcheck``       — diff GCatch's static verdicts against the
  explorer's dynamic verdicts over the 49-bug corpus;
* ``stats``           — run the full pipeline under the observability
  layer and print the per-stage trace (``--json`` for the machine form);
* ``fleet``           — resumable corpus sweeps across N daemon
  processes (``corpus``/``plan``/``sweep``/``fuzz`` subcommands);
* ``nonblocking FILE``— the §6 extension (send-on-closed / double-close);
* ``table1``          — regenerate Table 1 over the synthetic corpus;
* ``coverage``        — the 49-bug coverage study.

``detect``/``fix`` accept ``--trace`` to append the per-stage table, and
``explore``/``diffcheck`` accept ``--json`` for scriptable output in the
``repro.obs`` stats schema.

``detect``/``fix``/``stats`` also take the :mod:`repro.resilience` flags:
``--strict`` (exit 4 on any incident instead of reporting degraded
health), ``--max-retries``, ``--retry-timeouts``, and ``--faults``/
``--fault-seed`` (deterministic fault injection; ``REPRO_FAULTS`` /
``REPRO_FAULT_SEED`` are the ambient equivalents honoured by every
command).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import Project
from repro.detector.nonblocking import detect_nonblocking
from repro.obs import Collector, json_dumps, render_stats

#: dedicated exit code for ``--fail-on-timeout``: the analysis was
#: incomplete (a solver or per-primitive budget ran out), distinct from
#: "bugs found" (1) and "usage error" (2)
EXIT_TIMEOUT = 3

#: dedicated exit code for resilience failures: in ``--strict`` mode any
#: incident (a crashed analysis unit, fix strategy, or validation) exits
#: with this code; in the default mode only a ``failed`` health verdict
#: (every unit lost) does. Takes precedence over EXIT_TIMEOUT and 1.
EXIT_INCIDENT = 4


def _load(path: str, collector: Optional[Collector] = None) -> Project:
    return Project.from_file(path, collector=collector)


def _activate_faults(args) -> bool:
    """Arm the fault-injection plan from ``--faults`` or ``REPRO_FAULTS``.

    Returns True when a plan was activated (the caller must deactivate).
    """
    from repro.resilience import activate, plan_from_env
    from repro.resilience.faultinject import FaultPlan

    spec = getattr(args, "faults", None)
    if spec:
        activate(FaultPlan.parse(spec, seed=getattr(args, "fault_seed", 0) or 0))
        return True
    plan = plan_from_env()
    if plan is not None:
        activate(plan)
        return True
    return False


def _health_exit(health: str, incidents, strict: bool) -> Optional[int]:
    """The resilience exit-code policy, shared by detect/fix/stats."""
    if strict and incidents:
        return EXIT_INCIDENT
    if health == "failed":
        return EXIT_INCIDENT
    return None


def cmd_detect(args: argparse.Namespace) -> int:
    want_obs = args.trace or args.trace_out
    collector = Collector(args.file) if want_obs else None
    cache = None
    if args.cache_dir:
        from repro.engine import ResultCache

        cache = ResultCache(args.cache_dir)
    project = _load(args.file, collector=collector)
    result = project.detect(
        disentangle=not args.no_disentangle,
        jobs=args.jobs,
        backend=args.backend,
        cache=cache,
        budget_wall_seconds=args.budget_seconds,
        budget_solver_nodes=args.budget_nodes,
        max_retries=args.max_retries,
        retry_timeouts=args.retry_timeouts,
        checkers=args.checkers,
        solver_mode=args.solver_mode,
    )
    reports = result.all_reports()
    timed_out = result.has_timeouts()
    health = result.health()
    exit_code = 1 if reports else 0
    if args.fail_on_timeout and timed_out:
        exit_code = EXIT_TIMEOUT
    incident_exit = _health_exit(health, result.incidents, args.strict)
    if incident_exit is not None:
        exit_code = incident_exit
    if args.trace_out and collector is not None:
        from repro.obs import write_trace

        write_trace(collector, args.trace_out)
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
    if not reports:
        print("no bugs detected")
        if timed_out:
            print(_timeout_summary(result))
        if result.incidents or args.trace:
            from repro.report.table import render_health

            print(render_health(health, result.incidents))
        if args.trace and collector is not None:
            print()
            print(render_stats(collector))
        return exit_code
    for report in reports:
        print(report.render())
        print()
    bmoc = len(result.bmoc.reports)
    print(f"{len(reports)} report(s): {bmoc} BMOC, {len(result.traditional)} traditional "
          f"({result.elapsed_seconds:.2f}s)")
    if timed_out:
        print(_timeout_summary(result))
    if result.incidents or args.trace:
        from repro.report.table import render_health

        print(render_health(health, result.incidents))
    if args.trace and collector is not None:
        from repro.report.table import render_bug_costs

        print()
        print(render_bug_costs(reports, timeouts=result.timed_out_shards()))
        print()
        print(render_stats(collector))
    return exit_code


def _timeout_summary(result) -> str:
    stats = result.bmoc.stats
    shards = result.timed_out_shards()
    parts = []
    if shards:
        labels = ", ".join(s.label for s in shards)
        parts.append(f"{len(shards)} primitive(s) hit their analysis budget: {labels}")
    if stats.solver_timeouts:
        parts.append(f"{stats.solver_timeouts} solver call(s) hit the node budget")
    return "TIMEOUT: " + "; ".join(parts) + " — results may be incomplete"


def cmd_fix(args: argparse.Namespace) -> int:
    collector = Collector(args.file) if args.trace else None
    project = _load(args.file, collector=collector)
    result = project.detect(
        max_retries=args.max_retries,
        retry_timeouts=args.retry_timeouts,
        solver_mode=args.solver_mode,
    )
    bugs = result.bmoc.bmoc_channel_bugs()
    if not bugs:
        print("no channel-only BMOC bugs to fix")
        if result.incidents:
            from repro.report.table import render_health

            print(render_health(result.health(), result.incidents))
        exit_code = _health_exit(result.health(), result.incidents, args.strict)
        return exit_code if exit_code is not None else 0
    summary = project.fix_all(bugs)
    for fix in summary.results:
        print(f"-- {fix.report.description}")
        if fix.fixed:
            print(f"   strategy: {fix.strategy} ({fix.patch.changed_lines()} line(s))")
            print(fix.patch.unified_diff(args.file))
        else:
            print(f"   not fixed: {fix.reason}")
        print()
    fixed = summary.fixed()
    print(f"fixed {len(fixed)}/{len(summary.results)} bug(s)")
    incidents = list(result.incidents) + summary.incidents()
    if incidents:
        from repro.report.table import render_health

        health = "degraded" if fixed or result.health() != "failed" else "failed"
        print(render_health(health, incidents))
    if collector is not None:
        print()
        print(render_stats(collector))
    if args.write and len(fixed) == 1:
        patched = fixed[0].patch.apply()
        with open(args.file, "w") as handle:
            handle.write(patched)
        print(f"wrote patched source to {args.file}")
    exit_code = _health_exit(result.health(), incidents, args.strict)
    return exit_code if exit_code is not None else 0


def cmd_run(args: argparse.Namespace) -> int:
    project = _load(args.file)
    failures = 0
    for seed in range(args.seeds):
        outcome = project.run(entry=args.entry, seed=seed, max_steps=args.max_steps)
        status = "ok"
        if outcome.panicked:
            status = f"panic: {outcome.panic_message}"
        elif outcome.global_deadlock:
            status = f"DEADLOCK at line(s) {outcome.blocked_lines()}"
        elif outcome.leaked:
            leaks = ", ".join(
                f"g{l.gid}@{l.function}:{l.blocked_line}" for l in outcome.leaked
            )
            status = f"LEAKED {leaks}"
        if status != "ok":
            failures += 1
        print(f"seed {seed:3d}: {status}")
        for line in outcome.output:
            print(f"          {line}")
    print(f"{failures}/{args.seeds} schedule(s) misbehaved")
    return 1 if failures else 0


def cmd_explore(args: argparse.Namespace) -> int:
    collector = Collector(args.file) if args.json else None
    project = _load(args.file, collector=collector)
    exploration = project.explore(
        entry=args.entry,
        max_runs=args.max_runs,
        max_steps=args.max_steps,
        preemption_bound=args.preemption_bound,
    )
    if args.json:
        print(json_dumps(exploration.to_json()))
        return 1 if exploration.any_leak else 0
    print(exploration.render())
    if args.replay and exploration.leaking():
        leak = exploration.leaking()[0]
        replayed = project.replay(leak.choice_trace, entry=args.entry)
        same = replayed.blocked_forever == leak.blocked_forever
        print(f"replayed first leaking trace ({len(leak.choice_trace)} choices): "
              f"{'reproduced' if same else 'DIVERGED'}")
    return 1 if exploration.any_leak else 0


def cmd_diffcheck(args: argparse.Namespace) -> int:
    from repro.corpus.bugset import build_bug_set
    from repro.diffcheck import run_diffcheck

    cases = None
    if args.cases:
        prefixes = tuple(args.cases)
        cases = [c for c in build_bug_set() if c.case_id.startswith(prefixes)]
        if not cases:
            print(f"no corpus cases match prefix(es): {', '.join(args.cases)}",
                  file=sys.stderr)
            return 2
    collector = Collector("diffcheck") if args.json else None
    report = run_diffcheck(
        cases=cases,
        max_runs=args.max_runs,
        max_steps=args.max_steps,
        collector=collector,
    )
    if args.json:
        print(json_dumps(report.to_json()))
    else:
        print(report.render())
    return 1 if report.unexplained() else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Generative differential fuzz campaign over seeded MiniGo programs."""
    import os

    from repro.fuzz import (
        BUCKET_UNEXPLAINED,
        generate_program,
        minimize_program,
        run_campaign,
        triage_program,
    )
    from repro.fuzz.campaign import CampaignConfig
    from repro.resilience.firewall import RetryPolicy

    config = CampaignConfig(
        max_runs=args.budget,
        max_steps=args.max_steps,
        max_total_steps=args.total_steps,
        jobs=args.jobs,
        backend=args.backend,
        max_retries=args.max_retries,
        solver_mode=args.solver_mode,
    )
    collector = Collector(f"fuzz-s{args.seed}") if args.json else None
    policy = RetryPolicy(max_retries=args.max_retries) if args.max_retries else None
    if args.only is not None:
        # replay one program of the campaign: the minimize/dump workflow
        program = generate_program(args.seed, args.only)
        triage = triage_program(program, config=config, collector=collector)
        if args.minimize and triage.bucket == BUCKET_UNEXPLAINED:
            program = minimize_program(program, triage, config=config)
            triage = triage_program(program, config=config)
        if args.dump_dir:
            os.makedirs(args.dump_dir, exist_ok=True)
            path = os.path.join(args.dump_dir, program.name + ".go")
            with open(path, "w") as handle:
                handle.write(_provenance_header(program) + program.source)
            print(f"wrote {path}", file=sys.stderr)
        if args.json:
            print(json_dumps(triage.to_dict()))
        else:
            print(program.source)
            print(f"{triage.bucket}: {triage.classification or triage.error} "
                  f"{triage.explanation}".rstrip())
        return _fuzz_exit(triage.bucket == BUCKET_UNEXPLAINED,
                          triage.bucket in ("parse-crash", "analysis-incident"))
    report = run_campaign(
        args.seed, args.count, config=config, collector=collector, retry_policy=policy
    )
    if args.dump_dir and report.unexplained():
        os.makedirs(args.dump_dir, exist_ok=True)
        for triage in report.unexplained():
            program = generate_program(args.seed, triage.index)
            if args.minimize:
                program = minimize_program(program, triage, config=config)
            path = os.path.join(args.dump_dir, program.name + ".go")
            with open(path, "w") as handle:
                handle.write(_provenance_header(program) + program.source)
            print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print(json_dumps(report.to_json()))
    else:
        print(report.render())
    return _fuzz_exit(bool(report.unexplained()), bool(report.crashes()))


def _provenance_header(program) -> str:
    """Comment block tying a dumped program back to its generator seed."""
    recipe = "; ".join(
        f"{s.template}[{s.uid} {s.placement}"
        + (f" {','.join(s.mutations)}" if s.mutations else "")
        + "]"
        for s in program.motifs
    )
    return (
        f"// {program.name}: generated by `repro fuzz --seed "
        f"{program.campaign_seed} --only {program.index}`\n// recipe: {recipe}\n"
    )


def _fuzz_exit(unexplained: bool, crashed: bool) -> int:
    """Campaign exit policy: crashes trump findings trump clean."""
    if crashed:
        return EXIT_INCIDENT
    return 1 if unexplained else 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Full pipeline (detect → fix → explore) under one Collector."""
    collector = Collector(args.file)
    project = _load(args.file, collector=collector)
    result = project.detect(
        max_retries=args.max_retries,
        retry_timeouts=args.retry_timeouts,
        solver_mode=args.solver_mode,
    )
    reports = result.all_reports()
    summary = project.fix_all(result.bmoc.bmoc_channel_bugs())
    exploration = project.explore(
        entry=args.entry, max_runs=args.max_runs, max_steps=args.max_steps
    )
    incidents = list(result.incidents) + summary.incidents()
    health = result.health()
    exit_code = _health_exit(health, incidents, args.strict)
    if exit_code is None:
        exit_code = 0
    if args.trace_out:
        from repro.obs import write_trace

        write_trace(collector, args.trace_out)
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
    if args.prom:
        from repro.obs import render_prometheus

        # Prometheus text exposition on stdout: the same payload the
        # daemon's metrics_text method serves, for file-based scraping
        sys.stdout.write(render_prometheus(collector))
        return exit_code
    if args.json:
        from repro.obs import snapshot
        from repro.resilience import incidents_to_json

        extra = {
            "file": args.file,
            "reports": len(reports),
            "fixed": len(summary.fixed()),
            "explored_runs": exploration.runs,
            "any_leak": exploration.any_leak,
            "health": health,
        }
        if incidents:
            # optional block: absent on clean runs, so pre-resilience
            # consumers of the repro.obs schema see an unchanged shape
            extra["incidents"] = incidents_to_json(incidents)
        print(json_dumps(snapshot(collector, extra=extra)))
        return exit_code
    from repro.report.table import render_bug_costs, render_health

    print(f"{args.file}: {len(reports)} report(s), "
          f"{len(summary.fixed())}/{len(summary.results)} fixed, "
          f"{exploration.runs} schedule(s) explored"
          f"{' (leak found)' if exploration.any_leak else ''}")
    if incidents or health != "ok":
        print(render_health(health, incidents))
    print()
    if reports:
        print(render_bug_costs(reports))
        print()
    print(render_stats(collector))
    return exit_code


def _service_kwargs(args: argparse.Namespace) -> dict:
    """The engine/resilience knobs shared by serve and watch."""
    return dict(
        jobs=args.jobs,
        backend=args.backend,
        cache_dir=args.cache_dir,
        budget_wall_seconds=args.budget_seconds,
        budget_solver_nodes=args.budget_nodes,
        max_retries=args.max_retries,
        retry_timeouts=args.retry_timeouts,
        checkers=args.checkers,
        solver_mode=args.solver_mode,
    )


def _journal_path(args: argparse.Namespace) -> Optional[str]:
    """The telemetry journal path: --journal flag, else REPRO_JOURNAL."""
    import os

    path = getattr(args, "journal", None)
    return path if path else os.environ.get("REPRO_JOURNAL") or None


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis daemon over stdio (default) or a TCP socket."""
    from repro.service import AnalysisService, serve_stdio, serve_tcp

    try:
        service = AnalysisService(
            args.path,
            journal_path=_journal_path(args),
            journal_max_bytes=args.journal_max_bytes,
            journal_max_files=args.journal_max_files,
            slow_threshold_seconds=args.slow_threshold,
            workers=args.workers,
            max_queue=args.max_queue,
            tenant_max_queue=args.tenant_max_queue,
            quota=args.quota,
            quota_burst=args.quota_burst,
            **_service_kwargs(args),
        ).start()
    except (OSError, UnicodeDecodeError) as exc:
        print(f"cannot load project {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.port is None:
        # stdout is the protocol channel in stdio mode; banner to stderr
        print(f"repro-serve: project {service.state.path} "
              f"({len(service.state.files)} file(s)) on stdio", file=sys.stderr)
        return serve_stdio(service)
    server = serve_tcp(service, host=args.host, port=args.port)
    host, port = server.address
    # the smoke job and scripts parse this exact line for the bound port
    print(f"repro-serve listening on {host}:{port}", flush=True)
    return server.serve_until_shutdown()


def cmd_watch(args: argparse.Namespace) -> int:
    """Re-analyze on change and print deltas until interrupted."""
    from repro.service.watch import run_watch

    try:
        return run_watch(
            args.path,
            interval=args.interval,
            max_cycles=args.cycles,
            **_service_kwargs(args),
        )
    except (OSError, UnicodeDecodeError) as exc:
        print(f"cannot load project {args.path}: {exc}", file=sys.stderr)
        return 2


def cmd_client(args: argparse.Namespace) -> int:
    """Send one request to a running daemon; exit like one-shot detect."""
    import json

    from repro.service import ServiceClient, ServiceConnectionError

    params = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except ValueError as exc:
            print(f"--params is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(params, dict):
            print("--params must be a JSON object", file=sys.stderr)
            return 2
    if args.deadline is not None:
        params["deadline_seconds"] = args.deadline
    try:
        with ServiceClient(
            host=args.host, port=args.port, connect_timeout=args.connect_timeout
        ) as client:
            response = client.call(
                args.method,
                params,
                tenant=args.tenant or "default",
                priority=args.priority,
            )
    except ServiceConnectionError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result_payload = response.get("result")
    if (
        args.method == "metrics_text"
        and isinstance(result_payload, dict)
        and isinstance(result_payload.get("text"), str)
    ):
        # scraper convenience: the raw exposition, ready for a Prometheus
        # file-sd or pushgateway pipe, instead of JSON-wrapped text
        sys.stdout.write(result_payload["text"])
        return 0
    print(json_dumps(response))
    if "error" in response:
        # a crashed request carries an incident: the daemon-side analogue
        # of --strict's EXIT_INCIDENT; protocol misuse stays a usage error
        return EXIT_INCIDENT if "incident" in response["error"] else 2
    result = response.get("result") or {}
    code = result.get("code", 0)
    return int(code) if isinstance(code, (int, float)) else 0


def cmd_top(args: argparse.Namespace) -> int:
    """Render throughput/latency/cache/incident aggregates from the
    daemon's telemetry journal (works on a stopped daemon's journal too)."""
    import os

    from repro.obs import TelemetryJournal, filter_records, render_top, summarize

    path = _journal_path(args)
    if not path:
        print("repro top: no journal (pass --journal PATH or set "
              "REPRO_JOURNAL)", file=sys.stderr)
        return 2
    if not any(
        os.path.exists(p)
        for p in (path, *(f"{path}.{i}" for i in range(1, args.journal_max_files)))
    ):
        print(f"repro top: journal {path} does not exist", file=sys.stderr)
        return 2
    journal = TelemetryJournal(path, max_files=args.journal_max_files)
    records = filter_records(journal.read(last=args.last), tenant=args.tenant)
    if args.json:
        summary = summarize(records)
        summary["latency"] = summary["latency"].to_dict()
        summary["queue_wait"] = summary["queue_wait"].to_dict()
        print(json_dumps(summary))
        return 0
    print(render_top(records, title=f"repro top — {path}"))
    return 0


def _fleet_build_plan(args: argparse.Namespace):
    from repro import fleet

    if args.fleet_command == "fuzz":
        return fleet.plan_fuzz(args.seed, args.count, shard_size=args.shard_size)
    return fleet.plan_corpus(args.path)


def cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet sweeps: materialize a corpus, plan it, sweep it across N
    daemons (``sweep``), or scale out a fuzz campaign (``fuzz``).

    Exit codes: 0 — every unit completed; 1 — some units failed after
    retries (the report marks them incomplete); 4 — the sweep died (a
    supervisor checkpoint kill or an unrecoverable daemon); resume by
    re-running with the same ``--manifest``.
    """
    import os

    from repro import fleet

    if args.fleet_command == "corpus":
        dirs = fleet.materialize_bugset(args.dir)
        print(f"materialized {len(dirs)} case(s) under {os.path.abspath(args.dir)}")
        return 0
    try:
        plan = _fleet_build_plan(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"cannot plan sweep: {exc}", file=sys.stderr)
        return 2
    if args.fleet_command == "plan":
        if args.json:
            print(json_dumps(plan.to_json()))
        else:
            for unit in plan.units:
                what = unit.path or (
                    f"seed={unit.seed} start={unit.start} count={unit.count}"
                )
                print(f"{unit.uid}  {unit.fingerprint[:12]}  {what}")
            print(f"{len(plan.units)} unit(s)")
        return 0
    try:
        if args.serial:
            result = fleet.serial_sweep(plan)
        else:
            result = fleet.run_sweep(
                plan,
                daemons=args.daemons,
                mode=args.mode,
                manifest_path=args.manifest,
                workers=args.workers,
                deadline_seconds=args.deadline,
                straggler_timeout=args.straggler_timeout,
                journal_path=_journal_path(args),
            )
    except fleet.SweepKilled as exc:
        print(f"sweep killed: {exc} — re-run with the same --manifest "
              "to resume", file=sys.stderr)
        return EXIT_INCIDENT
    except fleet.SupervisorError as exc:
        print(f"sweep aborted: {exc}", file=sys.stderr)
        return EXIT_INCIDENT
    report = result.report()
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(fleet.canonical_bytes(report))
    if args.json:
        print(json_dumps({
            "report": report,
            "telemetry": result.telemetry(),
            "failed": result.failed,
        }))
    else:
        print(fleet.render(report))
        tel = result.telemetry()
        rate = tel["units_per_second"]
        print(
            f"  {tel['executed']} executed / {tel['skipped']} skipped in "
            f"{tel['elapsed_seconds']:.2f}s"
            + (f" ({rate:.2f} units/s)" if rate else "")
            + f"; restarts={tel['restarts']} sheds={tel['sheds']}"
        )
        for uid, reason in sorted(result.failed.items()):
            print(f"  FAILED {uid}: {reason}", file=sys.stderr)
    return 0 if result.complete() else 1


def cmd_nonblocking(args: argparse.Namespace) -> int:
    project = _load(args.file)
    result = detect_nonblocking(project.program)
    if not result.reports:
        print("no non-blocking channel misuses detected")
        return 0
    for report in result.reports:
        print(report.render())
        print()
    return 1


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.report.experiments import evaluate_corpus

    names = args.apps or None
    evaluation = evaluate_corpus(names)
    print(evaluation.render())
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    from repro.corpus.bugset import build_bug_set
    from repro.detector.bmoc import detect_bmoc
    from repro.ssa.builder import build_program

    detected = 0
    cases = build_bug_set()
    for case in cases:
        program = build_program(case.source, case.case_id + ".go")
        hit = bool(detect_bmoc(program).reports)
        detected += hit
        marker = "DETECTED" if hit else f"missed ({case.miss_reason})"
        print(f"{case.case_id}: {marker}")
    print(f"\ncoverage: {detected}/{len(cases)} ({detected / len(cases):.0%}) — paper: 33/49 (67%)")
    return 0


def _add_solver_mode_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--solver-mode", choices=["batched", "classic"], default=None,
                   help="constraint-solving pipeline: 'batched' shares one "
                        "incremental solver session across a primitive's "
                        "suspicious groups; 'classic' encodes and solves each "
                        "group from scratch — identical reports either way "
                        "(default: REPRO_SOLVER_MODE, else batched)")


def _add_resilience_args(p: argparse.ArgumentParser) -> None:
    """The resilience flags shared by detect/fix/stats."""
    p.add_argument("--strict", action="store_true",
                   help=f"exit with code {EXIT_INCIDENT} when any analysis "
                        "unit crashed (default: report degraded health and "
                        "keep the surviving results)")
    p.add_argument("--max-retries", type=int, default=None,
                   help="bound transient-failure retries per unit "
                        "(default: REPRO_MAX_RETRIES, else 1)")
    p.add_argument("--retry-timeouts", action="store_true",
                   help="retry a solver-timeout shard once with a quartered "
                        "node budget")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="deterministic fault-injection plan, e.g. "
                        "'solve:raise' or 'cache-read@leakOne:corrupt' "
                        "(default: REPRO_FAULTS)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for probabilistic fault rules (default: "
                        "REPRO_FAULT_SEED for env-supplied plans, else 0)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GCatch + GFix (ASPLOS 2021) reproduction on MiniGo programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("detect", help="run GCatch on a MiniGo file")
    p.add_argument("file")
    p.add_argument("--no-disentangle", action="store_true", help="whole-program ablation mode")
    p.add_argument("--trace", action="store_true",
                   help="append the per-stage observability table")
    p.add_argument("--jobs", type=int, default=None,
                   help="shard per-primitive analysis across N workers "
                        "(default: REPRO_JOBS env var, else serial)")
    p.add_argument("--backend", choices=["thread", "process"], default=None,
                   help="pool backend for --jobs (default: REPRO_BACKEND, else thread)")
    p.add_argument("--cache-dir", default=None,
                   help="persist per-primitive results under this directory; "
                        "warm re-runs skip unchanged primitives")
    p.add_argument("--budget-seconds", type=float, default=None,
                   help="per-primitive wall-clock budget (TIMEOUT on exhaustion)")
    p.add_argument("--budget-nodes", type=int, default=None,
                   help="per-primitive solver-node budget (TIMEOUT on exhaustion)")
    p.add_argument("--fail-on-timeout", action="store_true",
                   help=f"exit with code {EXIT_TIMEOUT} when any budget ran out")
    p.add_argument("--checkers", nargs="*", default=None,
                   help="restrict the traditional checkers to this subset "
                        "(default: REPRO_CHECKERS, else all)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="dump the run's span tree as OTLP-style JSON")
    _add_solver_mode_arg(p)
    _add_resilience_args(p)
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser("fix", help="run GCatch + GFix; print patches")
    p.add_argument("file")
    p.add_argument("--write", action="store_true", help="apply a single patch in place")
    p.add_argument("--trace", action="store_true",
                   help="append the per-stage observability table")
    _add_solver_mode_arg(p)
    _add_resilience_args(p)
    p.set_defaults(func=cmd_fix)

    p = sub.add_parser("run", help="execute under seeded schedules")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--seeds", type=int, default=10)
    p.add_argument("--max-steps", type=int, default=100_000)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("explore", help="systematically enumerate schedules")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--max-runs", type=int, default=512)
    p.add_argument("--max-steps", type=int, default=20_000)
    p.add_argument("--preemption-bound", type=int, default=None)
    p.add_argument("--replay", action="store_true",
                   help="re-run the first leaking trace to confirm it reproduces")
    p.add_argument("--json", action="store_true",
                   help="emit the exploration as repro.obs-schema JSON")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("diffcheck", help="static vs dynamic differential over the bug corpus")
    p.add_argument("--max-runs", type=int, default=512)
    p.add_argument("--max-steps", type=int, default=20_000)
    p.add_argument("--cases", nargs="*", default=None,
                   help="restrict to corpus case_ids with these prefixes")
    p.add_argument("--json", action="store_true",
                   help="emit the report as repro.obs-schema JSON")
    p.set_defaults(func=cmd_diffcheck)

    p = sub.add_parser(
        "fuzz",
        help="generative differential fuzz campaign (static vs dynamic oracle)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed; (seed, index) replays any program")
    p.add_argument("--count", type=int, default=100,
                   help="number of generated programs")
    p.add_argument("--budget", type=int, default=128,
                   help="schedule-exploration run budget per program")
    p.add_argument("--max-steps", type=int, default=6000,
                   help="per-run interpreter step bound")
    p.add_argument("--total-steps", type=int, default=120_000,
                   help="deterministic cross-run step budget per program")
    p.add_argument("--jobs", type=int, default=None,
                   help="engine shard parallelism for the static oracle "
                        "(default: REPRO_JOBS, else serial)")
    p.add_argument("--backend", choices=["thread", "process"], default=None,
                   help="pool backend for --jobs")
    p.add_argument("--max-retries", type=int, default=None,
                   help="transient-failure retries per program")
    _add_solver_mode_arg(p)
    p.add_argument("--only", type=int, default=None, metavar="INDEX",
                   help="replay a single program of the campaign by index")
    p.add_argument("--minimize", action="store_true",
                   help="shrink unexplained programs to a minimal recipe "
                        "before dumping")
    p.add_argument("--dump-dir", default=None,
                   help="write unexplained program sources (with seed "
                        "provenance headers) into this directory")
    p.add_argument("--json", action="store_true",
                   help="emit the campaign report as repro.obs-schema JSON")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("stats", help="full pipeline under the observability layer")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--max-runs", type=int, default=512)
    p.add_argument("--max-steps", type=int, default=20_000)
    p.add_argument("--json", action="store_true",
                   help="emit the trace as repro.obs-schema JSON")
    p.add_argument("--prom", action="store_true",
                   help="emit Prometheus text exposition instead of the table")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="dump the run's span tree as OTLP-style JSON")
    _add_solver_mode_arg(p)
    _add_resilience_args(p)
    p.set_defaults(func=cmd_stats)

    def _add_service_args(p: argparse.ArgumentParser) -> None:
        """Engine knobs shared by serve and watch (daemon-lifetime)."""
        p.add_argument("--jobs", type=int, default=None,
                       help="per-request shard parallelism (default: REPRO_JOBS)")
        p.add_argument("--backend", choices=["thread", "process"], default=None,
                       help="pool backend (default: REPRO_BACKEND, else thread)")
        p.add_argument("--cache-dir", default=None,
                       help="persist the shard cache under this directory "
                            "(default: memory-only, warm for the daemon's life)")
        p.add_argument("--budget-seconds", type=float, default=None,
                       help="per-primitive wall-clock budget")
        p.add_argument("--budget-nodes", type=int, default=None,
                       help="per-primitive solver-node budget")
        p.add_argument("--max-retries", type=int, default=None,
                       help="transient-failure retries (default: REPRO_MAX_RETRIES)")
        p.add_argument("--retry-timeouts", action="store_true",
                       help="retry TIMEOUT shards once with a quartered budget")
        p.add_argument("--checkers", nargs="*", default=None,
                       help="restrict the traditional checkers")
        _add_solver_mode_arg(p)

    p = sub.add_parser(
        "serve",
        help="run the analysis daemon (stdio by default, --port for TCP)",
    )
    p.add_argument("path", help="project: one .go file or a directory of them")
    p.add_argument("--port", type=int, default=None,
                   help="serve the line protocol on this TCP port "
                        "(0 = ephemeral; the bound port is printed); "
                        "default: stdio")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="append one telemetry record per request to this "
                        "JSONL file, with size-bounded rotation "
                        "(default: REPRO_JOURNAL)")
    p.add_argument("--journal-max-bytes", type=int, default=4_000_000,
                   help="rotate the journal past this size (default: 4MB)")
    p.add_argument("--journal-max-files", type=int, default=3,
                   help="keep at most N journal files (default: 3)")
    p.add_argument("--slow-threshold", type=float, default=5.0,
                   help="requests slower than this many seconds capture a "
                        "full span-tree exemplar (default: 5.0)")
    p.add_argument("--workers", type=int, default=2,
                   help="analysis worker pool size; tenants run "
                        "concurrently, one tenant's requests never do "
                        "(default: 2)")
    p.add_argument("--max-queue", type=int, default=None,
                   help="global queued-request bound: excess requests are "
                        "shed with OVERLOADED instead of queued "
                        "(default: unbounded)")
    p.add_argument("--tenant-max-queue", type=int, default=None,
                   help="per-tenant queued-request bound (default: unbounded)")
    p.add_argument("--quota", type=float, default=None, metavar="RATE",
                   help="per-tenant token-bucket quota in requests/second; "
                        "excess is shed with QUOTA_EXCEEDED + retry_after "
                        "(default: no quota)")
    p.add_argument("--quota-burst", type=float, default=None,
                   help="token-bucket size (default: max(quota, 1))")
    _add_service_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("watch", help="re-analyze on change, print deltas")
    p.add_argument("path", help="project: one .go file or a directory of them")
    p.add_argument("--interval", type=float, default=0.5,
                   help="poll interval in seconds (content-hash watcher)")
    p.add_argument("--cycles", type=int, default=None,
                   help="stop after N polls (default: run until interrupted)")
    _add_service_args(p)
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser("top", help="render telemetry-journal aggregates")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="the daemon's telemetry journal (default: REPRO_JOURNAL)")
    p.add_argument("--journal-max-files", type=int, default=3,
                   help="rotation depth to scan (default: 3)")
    p.add_argument("--last", type=int, default=None, metavar="N",
                   help="only the most recent N records")
    p.add_argument("--tenant", default=None,
                   help="only records for this tenant (records from "
                        "before multi-tenancy count as 'default')")
    p.add_argument("--json", action="store_true",
                   help="emit the aggregates as JSON")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("client", help="send one request to a running daemon")
    p.add_argument("method", help="detect | fix | stats | metrics | "
                                  "metrics_text | health | refresh | ping | "
                                  "register | tenants | fuzz | shutdown")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--params", default=None, metavar="JSON",
                   help="request params as a JSON object")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline in seconds (expires in queue)")
    p.add_argument("--tenant", default=None,
                   help="address a registered tenant (default: the "
                        "daemon's own project)")
    p.add_argument("--priority", choices=["high", "normal", "low"],
                   default="normal",
                   help="scheduling class (low is shed first under "
                        "degraded health)")
    p.add_argument("--connect-timeout", type=float, default=5.0,
                   help="seconds to keep retrying the TCP connect with "
                        "deterministic backoff (a daemon still binding "
                        "its port is not an error)")
    p.set_defaults(func=cmd_client)

    p = sub.add_parser(
        "fleet",
        help="resumable corpus sweeps across N analysis daemons",
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    fp = fleet_sub.add_parser(
        "corpus", help="materialize the 49-program bug set as a corpus tree"
    )
    fp.add_argument("dir", help="target directory (one <case_id>/main.go per case)")
    fp.set_defaults(func=cmd_fleet)

    def _add_fleet_sweep_args(fp):
        fp.add_argument("--daemons", type=int, default=1,
                        help="daemon count (default: 1)")
        fp.add_argument("--mode", choices=["thread", "process"], default="process",
                        help="daemon backend: separate processes (default) or "
                             "in-process served threads")
        fp.add_argument("--manifest", default=None, metavar="PATH",
                        help="resumable JSONL checkpoint; re-running with the "
                             "same manifest skips completed units whose "
                             "fingerprints still match")
        fp.add_argument("--workers", type=int, default=1,
                        help="scheduler workers per daemon (default: 1)")
        fp.add_argument("--serial", action="store_true",
                        help="run the serial in-process reference sweep "
                             "instead of a daemon fleet (parity baseline)")
        fp.add_argument("--deadline", type=float, default=None,
                        help="per-unit queue deadline in seconds")
        fp.add_argument("--straggler-timeout", type=float, default=None,
                        help="seconds before an unresponsive unit's daemon is "
                             "restarted and the unit re-dispatched")
        fp.add_argument("--out", default=None, metavar="PATH",
                        help="write the canonical report bytes here")
        fp.add_argument("--journal", default=None, metavar="PATH",
                        help="append per-unit telemetry records for repro top")
        fp.add_argument("--json", action="store_true",
                        help="emit report + telemetry as JSON")
        fp.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault plan (sites fleet-supervisor "
                             "/ fleet-dispatch for chaos drills)")
        fp.add_argument("--fault-seed", type=int, default=0)

    fp = fleet_sub.add_parser(
        "plan", help="print the work units a corpus tree plans into"
    )
    fp.add_argument("path", help="corpus directory (or one .go file)")
    fp.add_argument("--json", action="store_true")
    fp.set_defaults(func=cmd_fleet)

    fp = fleet_sub.add_parser(
        "sweep", help="sweep a corpus tree across N daemons"
    )
    fp.add_argument("path", help="corpus directory (or one .go file)")
    _add_fleet_sweep_args(fp)
    fp.set_defaults(func=cmd_fleet)

    fp = fleet_sub.add_parser(
        "fuzz", help="scale a fuzz campaign out across N daemons"
    )
    fp.add_argument("--seed", type=int, default=0, help="campaign seed")
    fp.add_argument("--count", type=int, required=True,
                    help="total programs (split into shards)")
    fp.add_argument("--shard-size", type=int, default=25,
                    help="programs per work unit (default: 25)")
    _add_fleet_sweep_args(fp)
    fp.set_defaults(func=cmd_fleet)

    p = sub.add_parser("nonblocking", help="send-on-closed / double-close detection")
    p.add_argument("file")
    p.set_defaults(func=cmd_nonblocking)

    p = sub.add_parser("table1", help="regenerate Table 1 over the corpus")
    p.add_argument("apps", nargs="*", help="optional app-name subset")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("coverage", help="the 49-bug coverage study")
    p.set_defaults(func=cmd_coverage)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    armed = _activate_faults(args)
    try:
        code = args.func(args)
    finally:
        if armed:
            from repro.resilience import deactivate

            deactivate()
    # every command returns an int, but coerce defensively: a handler that
    # falls off the end (returns None) must exit 0, not crash sys.exit —
    # the daemon/client exit-code contract (0/1/3/4) depends on this
    return int(code) if isinstance(code, (int, bool)) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
