"""Generative MiniGo fuzzing with a static↔dynamic differential oracle.

The corpus seeds 49 known bugs; this package synthesizes *unbounded*
program populations from the same motif library and uses the two
independent oracles — GCatch's static detector and the bounded schedule
explorer — as each other's checker. Every generated program that makes
the oracles disagree *without a documented cause* is a finding, carrying
the ``(campaign_seed, index)`` pair that regenerates it byte-for-byte.

* :mod:`repro.fuzz.generator` — seeded, deterministic program synthesis:
  motif selection, parameter mutation, interleaving and nesting;
* :mod:`repro.fuzz.campaign` — the campaign driver: parse → detect
  (through the sharded engine) → explore → classify, each program behind
  the resilience firewall, with triage into parse-crash /
  analysis-incident / agree / explained / unexplained buckets;
* :mod:`repro.fuzz.minimize` — motif/mutation-level delta debugging of an
  interesting program down to a minimal reproducer.
"""

from repro.fuzz.campaign import (
    BUCKETS,
    BUCKET_AGREE,
    BUCKET_EXPLAINED,
    BUCKET_INCIDENT,
    BUCKET_PARSE_CRASH,
    BUCKET_UNEXPLAINED,
    CampaignReport,
    ProgramTriage,
    run_campaign,
    triage_program,
)
from repro.fuzz.generator import GeneratedProgram, MotifSpec, generate_program, realize
from repro.fuzz.minimize import minimize_program

__all__ = [
    "BUCKETS",
    "BUCKET_AGREE",
    "BUCKET_EXPLAINED",
    "BUCKET_INCIDENT",
    "BUCKET_PARSE_CRASH",
    "BUCKET_UNEXPLAINED",
    "CampaignReport",
    "GeneratedProgram",
    "MotifSpec",
    "ProgramTriage",
    "generate_program",
    "minimize_program",
    "realize",
    "run_campaign",
    "triage_program",
]
