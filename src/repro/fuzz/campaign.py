"""Differential fuzz campaigns: generate → detect → explore → triage.

Every generated program runs through the full pipeline — parse/SSA
build, static detection through the sharded engine (``jobs`` > 1 shards
per-primitive analysis exactly as one-shot ``detect`` does), bounded
schedule exploration — and the two verdicts are reconciled by the same
:func:`repro.diffcheck.classify_oracles` core the corpus sweep uses.

Each program is one isolation unit behind the resilience firewall
(:mod:`repro.resilience`): a crash in *any* stage becomes a structured
incident on that program's triage and the campaign keeps going — one
pathological generated program cannot kill a 10k-program run. The
``fuzz-program`` fault-injection site makes that promise testable.

Triage buckets:

* ``parse-crash`` — the generator emitted something the front end
  rejects or the SSA builder crashes on: a generator or parser finding;
* ``analysis-incident`` — detection or exploration crashed (or detection
  degraded behind the firewall): a robustness finding;
* ``agree`` — the oracles agree (bug exhibited, or clean and proven);
* ``explained`` — the oracles disagree for a *documented* cause: the
  program contains a seeded FP motif, the search was truncated by a
  bound, or exploration hit the step budget;
* ``unexplained-disagreement`` — the finding class: a disagreement with
  no documented cause. Every one carries ``(campaign_seed, index)`` so
  :func:`repro.fuzz.generator.generate_program` replays it exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detector.gcatch import run_gcatch
from repro.diffcheck import (
    AGREE_BUG,
    AGREE_CLEAN,
    Explanations,
    aggregate_verdicts,
    classify_oracles,
)
from repro.fuzz.generator import GeneratedProgram, generate_program
from repro.obs import NULL
from repro.resilience.faultinject import maybe_fault
from repro.resilience.firewall import Firewall, RetryPolicy
from repro.resilience.incidents import Incident
from repro.runtime.explorer import explore
from repro.ssa.builder import build_program

BUCKET_PARSE_CRASH = "parse-crash"
BUCKET_INCIDENT = "analysis-incident"
BUCKET_AGREE = "agree"
BUCKET_EXPLAINED = "explained"
BUCKET_UNEXPLAINED = "unexplained-disagreement"

BUCKETS = (
    BUCKET_PARSE_CRASH,
    BUCKET_INCIDENT,
    BUCKET_AGREE,
    BUCKET_EXPLAINED,
    BUCKET_UNEXPLAINED,
)

#: the documented cause attached to every step-budget divergence: a
#: bounded dynamic oracle cannot rule on a program it could not finish
_DIVERGENCE_CAUSE = "bounded-oracle: exploration hit the step budget"


@dataclass(frozen=True)
class CampaignConfig:
    """Per-program analysis budgets and engine knobs for one campaign."""

    max_runs: int = 128  # schedule-exploration run budget per program
    max_steps: int = 6_000  # per-run interpreter step bound
    max_total_steps: int = 120_000  # deterministic cross-run step budget
    jobs: Optional[int] = None  # engine shard parallelism for detection
    backend: Optional[str] = None
    max_retries: Optional[int] = None
    solver_mode: Optional[str] = None  # batched | classic (None: resolve env)

    def to_json(self) -> dict:
        return {
            "max_runs": self.max_runs,
            "max_steps": self.max_steps,
            "max_total_steps": self.max_total_steps,
            "jobs": self.jobs,
            "backend": self.backend,
            "solver_mode": self.solver_mode,
        }


@dataclass
class ProgramTriage:
    """One generated program's reconciled verdict (or its crash record)."""

    index: int
    name: str
    bucket: str
    classification: str = ""  # repro.diffcheck classification, when reached
    explained: bool = True
    explanation: str = ""
    static_bug: bool = False
    static_reports: int = 0
    dynamic: str = ""  # 'leak' | 'clean' | 'divergence'
    runs: int = 0
    total_steps: int = 0
    complete: bool = False
    templates: Tuple[str, ...] = ()
    mutations: Tuple[str, ...] = ()
    error: str = ""  # crash summary for the two crash buckets
    incidents: List[Incident] = field(default_factory=list)

    # aggregate_verdicts duck-types on case_id/classification/explained,
    # so campaign triages roll up exactly like corpus verdicts
    @property
    def case_id(self) -> str:
        return self.name

    def to_dict(self) -> dict:
        payload = {
            "index": self.index,
            "name": self.name,
            "bucket": self.bucket,
            "classification": self.classification,
            "explained": self.explained,
            "explanation": self.explanation,
            "static_bug": self.static_bug,
            "static_reports": self.static_reports,
            "dynamic": self.dynamic,
            "runs": self.runs,
            "total_steps": self.total_steps,
            "complete": self.complete,
            "templates": list(self.templates),
            "mutations": list(self.mutations),
        }
        if self.error:
            payload["error"] = self.error
        if self.incidents:
            from repro.resilience import incidents_to_json

            payload["incidents"] = incidents_to_json(self.incidents)
        return payload


@dataclass
class CampaignReport:
    """Everything one campaign established, with replayable provenance."""

    seed: int
    count: int
    config: CampaignConfig
    triages: List[ProgramTriage] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    trace: Optional[object] = None  # the campaign's repro.obs.Collector
    start: int = 0  # first program index (fleet shards offset this)

    def buckets(self) -> Dict[str, int]:
        counts = {bucket: 0 for bucket in BUCKETS}
        for triage in self.triages:
            counts[triage.bucket] += 1
        return counts

    def by_bucket(self, bucket: str) -> List[ProgramTriage]:
        return [t for t in self.triages if t.bucket == bucket]

    def unexplained(self) -> List[ProgramTriage]:
        return self.by_bucket(BUCKET_UNEXPLAINED)

    def crashes(self) -> List[ProgramTriage]:
        """Programs the campaign could not take through the pipeline."""
        return self.by_bucket(BUCKET_PARSE_CRASH) + self.by_bucket(BUCKET_INCIDENT)

    def classified(self) -> List[ProgramTriage]:
        return [t for t in self.triages if t.classification]

    @property
    def agreement_rate(self) -> float:
        rollup = aggregate_verdicts(self.classified())
        return float(rollup["agreement_rate"])

    def to_json(self) -> dict:
        from repro.obs import SCHEMA, snapshot

        rollup = aggregate_verdicts(self.classified())
        payload: dict = {
            "schema": SCHEMA,
            "kind": "fuzz-campaign",
            "seed": self.seed,
            "count": self.count,
            "start": self.start,
            "config": self.config.to_json(),
            "buckets": self.buckets(),
            "by_class": rollup["by_class"],
            "agreement_rate": rollup["agreement_rate"],
            "unexplained": [t.name for t in self.unexplained()],
            "crashes": [t.name for t in self.crashes()],
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "triages": [t.to_dict() for t in self.triages],
        }
        if self.trace:
            payload["stats"] = snapshot(self.trace)
        return payload

    def render(self) -> str:
        from repro.report.differential import render_campaign

        return render_campaign(self)


def triage_program(
    program: GeneratedProgram,
    config: CampaignConfig = CampaignConfig(),
    firewall: Optional[Firewall] = None,
    collector=None,
) -> ProgramTriage:
    """Run one generated program through the full differential pipeline."""
    firewall = firewall or Firewall(collector=collector)
    triage = ProgramTriage(
        index=program.index,
        name=program.name,
        bucket=BUCKET_INCIDENT,
        templates=program.templates(),
        mutations=program.mutation_tags(),
    )

    def _build():
        maybe_fault("fuzz-program", f"{program.name}:build")
        return build_program(program.source, program.name + ".go", collector=collector)

    guarded = firewall.call(_build, site="fuzz-program", label=f"{program.name}:build")
    if not guarded.ok:
        triage.bucket = BUCKET_PARSE_CRASH
        triage.error = guarded.incident.render()
        triage.incidents.append(guarded.incident)
        return triage
    ir_program = guarded.value

    def _analyze():
        maybe_fault("fuzz-program", program.name)
        static = run_gcatch(
            ir_program,
            collector=collector,
            jobs=config.jobs,
            backend=config.backend,
            max_retries=config.max_retries,
            solver_mode=config.solver_mode,
        )
        exploration = explore(
            ir_program,
            entry=program.entry,
            max_runs=config.max_runs,
            max_steps=config.max_steps,
            max_total_steps=config.max_total_steps,
            collector=collector,
        )
        return static, exploration

    guarded = firewall.call(_analyze, site="fuzz-program", label=program.name)
    if not guarded.ok:
        triage.bucket = BUCKET_INCIDENT
        triage.error = guarded.incident.render()
        triage.incidents.append(guarded.incident)
        return triage
    static, exploration = guarded.value
    if static.incidents:
        # detection survived behind its own firewall but lost units; a
        # degraded static verdict cannot anchor a differential claim
        triage.bucket = BUCKET_INCIDENT
        triage.error = "; ".join(i.render() for i in static.incidents)
        triage.incidents.extend(static.incidents)
        return triage

    static_bug = bool(static.bmoc.reports)
    dynamic, classification, explained, explanation = classify_oracles(
        static_bug, exploration, _explanations(program)
    )
    triage.classification = classification
    triage.explained = explained
    triage.explanation = explanation
    triage.static_bug = static_bug
    triage.static_reports = len(static.bmoc.reports)
    triage.dynamic = dynamic
    triage.runs = exploration.runs
    triage.total_steps = exploration.total_steps
    triage.complete = exploration.complete
    if classification in (AGREE_BUG, AGREE_CLEAN):
        triage.bucket = BUCKET_AGREE
    elif explained:
        triage.bucket = BUCKET_EXPLAINED
    else:
        triage.bucket = BUCKET_UNEXPLAINED
    return triage


def _explanations(program: GeneratedProgram) -> Explanations:
    """Documented causes this recipe carries into classification.

    A seeded FP motif (``fp_cause``) documents why the static oracle may
    over-report; the step-budget cause documents why the bounded dynamic
    oracle may fail to rule. Nothing documents a dynamic-only leak — all
    motifs are within BMOC's model, so those are always findings.
    """
    static_only = tuple(
        f"{inst.template}: seeded FP ({inst.fp_cause})"
        for inst in program.instances()
        if inst.fp_cause
    )
    return Explanations(static_only=static_only, divergence=(_DIVERGENCE_CAUSE,))


def run_campaign(
    seed: int,
    count: int,
    config: CampaignConfig = CampaignConfig(),
    collector=None,
    retry_policy: Optional[RetryPolicy] = None,
    start: int = 0,
) -> CampaignReport:
    """Generate and triage ``count`` programs from one campaign seed.

    ``start`` offsets the program index range to ``[start, start+count)``
    without changing any program's content: generation is pure in
    ``(seed, index)``, so a campaign split into shards across a fleet
    produces the exact triages of the equivalent single run.
    """
    obs = collector or NULL
    firewall = Firewall(collector=collector, policy=retry_policy)
    report = CampaignReport(seed=seed, count=count, config=config, start=start)
    started = time.perf_counter()
    with obs.span("fuzz-campaign"):
        for index in range(start, start + count):
            program = generate_program(seed, index)
            program_started = time.perf_counter()
            triage = triage_program(
                program, config=config, firewall=firewall, collector=collector
            )
            report.triages.append(triage)
            if obs:
                obs.count("fuzz.programs")
                obs.count(f"fuzz.bucket.{triage.bucket}")
                # per-program wall distribution: the campaign's latency
                # telemetry (p50/p95/p99 in the --json stats block)
                obs.observe(
                    "fuzz.program.seconds",
                    time.perf_counter() - program_started,
                )
    report.elapsed_seconds = time.perf_counter() - started
    if collector:
        report.trace = collector
    return report
