"""Seeded generative MiniGo program synthesis from corpus motifs.

A generated program is a *recipe* — an ordered tuple of
:class:`MotifSpec` — rendered into source by a pure function, so the
same ``(campaign_seed, index)`` pair regenerates the identical program on
every machine, and the minimizer can drop motifs/mutations from the
recipe and re-render without re-running the RNG.

Composition axes, all drawn from one ``random.Random`` seeded with
``"repro-fuzz:<seed>:<index>"`` (string seeding hashes with SHA-512, so
results do not depend on ``PYTHONHASHSEED``):

* **motif selection** — 1–4 templates from
  :data:`repro.corpus.templates.ALL_TEMPLATES` (bugs, documented FP
  inducers, traditional shapes, benign background), possibly repeated;
* **parameter mutation** — textual, semantics-changing edits applied to
  the motif body: grow/shrink channel buffers, rescale loop bounds, drop
  a ``close``. Both oracles see the mutated program, so a mutation that
  fixes or plants a bug must move them *together* — divergence is the
  signal, not the mutation;
* **interleaving** — each motif's driver is called inline, spawned on a
  goroutine joined through a buffered channel, or nested behind a
  conditional wrapper (exercising call-graph/path machinery), in recipe
  order, optionally twice.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.templates import ALL_TEMPLATES, TemplateInstance

#: placements a motif's driver can get in the generated harness
INLINE = "inline"
SPAWN = "spawn"
NESTED = "nested"

#: mutation operators, in application order
MUTATIONS = ("buffer-grow", "buffer-shrink", "loop-bound", "drop-close")

_TEMPLATE_NAMES: Tuple[str, ...] = tuple(ALL_TEMPLATES)

_UNBUFFERED_MAKE = re.compile(r"make\(chan ([^,)]+)\)")
_BUFFERED_MAKE = re.compile(r"make\(chan ([^,)]+), (\d+)\)")
_LOOP_BOUND = re.compile(r"(for [^\n{]*< )(\d+)")
_CLOSE_LINE = re.compile(r"^[ \t]*close\([^)]*\)[ \t]*\n", re.MULTILINE)


@dataclass(frozen=True)
class MotifSpec:
    """One motif of a recipe: which template, how mutated, how driven."""

    template: str  # factory name in ALL_TEMPLATES
    uid: str  # identifier suffix woven into the instance's names
    placement: str  # INLINE | SPAWN | NESTED
    mutations: Tuple[str, ...] = ()  # effective mutation ops, in order
    dup: bool = False  # call the driver twice
    arg: int = 1  # parameter fed to buffer-grow / loop-bound


@dataclass(frozen=True)
class GeneratedProgram:
    """A rendered recipe plus everything needed to replay or shrink it."""

    campaign_seed: int
    index: int
    motifs: Tuple[MotifSpec, ...]
    source: str
    entry: str

    @property
    def name(self) -> str:
        return f"fuzz-s{self.campaign_seed}-p{self.index}"

    def templates(self) -> Tuple[str, ...]:
        return tuple(spec.template for spec in self.motifs)

    def mutation_tags(self) -> Tuple[str, ...]:
        return tuple(
            f"{spec.uid}:{op}" for spec in self.motifs for op in spec.mutations
        )

    def instances(self) -> List[TemplateInstance]:
        return [ALL_TEMPLATES[spec.template](spec.uid) for spec in self.motifs]


def apply_mutation(code: str, op: str, arg: int) -> str:
    """Apply one mutation operator; returns ``code`` unchanged on no match."""
    if op == "buffer-grow":
        return _UNBUFFERED_MAKE.sub(
            lambda m: f"make(chan {m.group(1)}, {max(1, arg)})", code, count=1
        )
    if op == "buffer-shrink":
        return _BUFFERED_MAKE.sub(lambda m: f"make(chan {m.group(1)})", code, count=1)
    if op == "loop-bound":
        return _LOOP_BOUND.sub(
            lambda m: f"{m.group(1)}{1 + arg % 4}", code, count=1
        )
    if op == "drop-close":
        return _CLOSE_LINE.sub("", code, count=1)
    raise ValueError(f"unknown mutation op {op!r}; valid: {', '.join(MUTATIONS)}")


def _mutated_code(instance: TemplateInstance, spec: MotifSpec) -> str:
    code = instance.code
    for op in spec.mutations:
        code = apply_mutation(code, op, spec.arg)
    return code


_SIG = re.compile(r"func (\w+)\(([^)]*)\)")


def _driver_call(code: str, driver: str) -> Optional[str]:
    """Build a call expression for ``driver``, synthesizing literal args.

    Returns None when a parameter type has no synthesizable literal — the
    caller must then drop the motif (an uncalled real-bug motif would be a
    guaranteed static-only artifact, not a finding).
    """
    for match in _SIG.finditer(code):
        if match.group(1) != driver:
            continue
        params = match.group(2).strip()
        if not params:
            return f"{driver}()"
        args = []
        for param in params.split(","):
            kind = param.strip().split()[-1] if param.strip() else ""
            if kind == "int":
                args.append("0")
            elif kind == "bool":
                args.append("false")
            elif kind == "string":
                args.append('""')
            elif kind == "*testing.T":
                args.append("t")
            else:
                return None
        return f"{driver}({', '.join(args)})"
    return None


def render(
    campaign_seed: int, index: int, motifs: Sequence[MotifSpec]
) -> GeneratedProgram:
    """Pure rendering of a recipe into one MiniGo source file."""
    parts: List[str] = ["package main"]
    harness: List[str] = []
    joins: List[str] = []
    needs_t = False
    for spec in motifs:
        instance = ALL_TEMPLATES[spec.template](spec.uid)
        code = _mutated_code(instance, spec)
        parts.append(code.strip("\n"))
        call = _driver_call(code, instance.driver or "")
        if call is None:
            continue
        call_args = call[call.index("(") + 1 : -1]
        if "t" in (a.strip() for a in call_args.split(",")):
            needs_t = True
        if spec.placement == SPAWN:
            harness.append(f"fzDone{spec.uid} := make(chan int, 1)")
            harness.append("go func() {")
            harness.append(f"\t{call}")
            harness.append(f"\tfzDone{spec.uid} <- 1")
            harness.append("}()")
            joins.append(f"<-fzDone{spec.uid}")
        elif spec.placement == NESTED:
            parts.append(
                f"func fzNest{spec.uid}(on bool) {{\n\tif on {{\n\t\t{call}\n\t}}\n}}"
            )
            harness.append(f"fzNest{spec.uid}(true)")
            if spec.dup:
                harness.append(f"fzNest{spec.uid}(false)")
        else:
            harness.append(call)
            if spec.dup:
                harness.append(call)
    entry = "fuzzEntry"
    signature = f"func {entry}(t *testing.T)" if needs_t else f"func {entry}()"
    body = "\n".join("\t" + line for line in harness + joins) or "\tprintln(0)"
    parts.append(f"{signature} {{\n{body}\n}}")
    source = "\n\n".join(parts) + "\n"
    return GeneratedProgram(
        campaign_seed=campaign_seed,
        index=index,
        motifs=tuple(motifs),
        source=source,
        entry=entry,
    )


def realize(
    campaign_seed: int, index: int, motifs: Sequence[MotifSpec]
) -> GeneratedProgram:
    """Re-render a (possibly shrunk) recipe — the minimizer's rebuild hook."""
    return render(campaign_seed, index, motifs)


#: per-op mutation probability; kept low so most programs stay close to a
#: template whose expected behaviour is documented
_MUTATION_P: Dict[str, float] = {
    "buffer-grow": 0.18,
    "buffer-shrink": 0.18,
    "loop-bound": 0.25,
    "drop-close": 0.12,
}

#: recipe sizes, weighted toward small programs (explorer cost is
#: exponential in concurrently-active motifs)
_SIZES = (1, 1, 1, 2, 2, 2, 2, 3, 3, 4)


def generate_program(campaign_seed: int, index: int) -> GeneratedProgram:
    """Deterministically synthesize program ``index`` of a campaign."""
    rng = random.Random(f"repro-fuzz:{campaign_seed}:{index}")
    count = rng.choice(_SIZES)
    specs: List[MotifSpec] = []
    spawns = 0
    for k in range(count):
        template = rng.choice(_TEMPLATE_NAMES)
        uid = f"M{k}"
        instance = ALL_TEMPLATES[template](uid)
        arg = rng.randint(1, 3)
        ops: List[str] = []
        code = instance.code
        for op in MUTATIONS:
            if rng.random() < _MUTATION_P[op]:
                mutated = apply_mutation(code, op, arg)
                if mutated != code:  # keep only effective ops
                    ops.append(op)
                    code = mutated
        test_driver = (instance.driver or "").startswith("Test")
        choices = [INLINE, INLINE, NESTED]
        # spawning multiplies interleavings; cap concurrently-spawned
        # motifs so the schedule space stays within campaign budgets
        if spawns < 2:
            choices.append(SPAWN)
        placement = rng.choice(choices)
        if test_driver and placement == NESTED:
            placement = INLINE  # the wrapper would need its own *testing.T
        if placement == SPAWN:
            spawns += 1
        specs.append(
            MotifSpec(
                template=template,
                uid=uid,
                placement=placement,
                mutations=tuple(ops),
                dup=rng.random() < 0.15,
                arg=arg,
            )
        )
    return render(campaign_seed, index, specs)
