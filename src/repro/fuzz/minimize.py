"""Recipe-level delta debugging for interesting generated programs.

Generated programs are motif compositions, so minimization works on the
*recipe*, not the text: drop whole motifs while the triage stays
interesting, then strip mutations motif by motif. The result is the
smallest recipe that still reproduces the finding — the form a checked-in
regression case takes (see :mod:`repro.corpus.regressions`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.fuzz.campaign import CampaignConfig, ProgramTriage, triage_program
from repro.fuzz.generator import GeneratedProgram, realize

Interesting = Callable[[ProgramTriage], bool]


def _same_finding(reference: ProgramTriage) -> Interesting:
    """A candidate reproduces iff bucket and classification both match."""

    def predicate(triage: ProgramTriage) -> bool:
        return (
            triage.bucket == reference.bucket
            and triage.classification == reference.classification
        )

    return predicate


def minimize_program(
    program: GeneratedProgram,
    reference: ProgramTriage,
    config: CampaignConfig = CampaignConfig(),
    interesting: Optional[Interesting] = None,
    max_attempts: int = 64,
) -> GeneratedProgram:
    """Shrink ``program`` while it still reproduces ``reference``'s finding.

    Greedy ddmin-lite over the recipe: repeatedly try dropping one motif
    (keeping at least one), then try clearing one mutation at a time.
    Every candidate is re-triaged through the same pipeline, so the
    result is verified-minimal, not guessed-minimal. ``max_attempts``
    bounds pipeline re-runs for pathological recipes.
    """
    predicate = interesting or _same_finding(reference)
    current = program
    attempts = 0
    shrunk = True
    while shrunk and attempts < max_attempts:
        shrunk = False
        # pass 1: drop a whole motif
        if len(current.motifs) > 1:
            for i in range(len(current.motifs)):
                candidate = realize(
                    current.campaign_seed,
                    current.index,
                    current.motifs[:i] + current.motifs[i + 1 :],
                )
                attempts += 1
                if predicate(triage_program(candidate, config=config)):
                    current = candidate
                    shrunk = True
                    break
                if attempts >= max_attempts:
                    return current
        if shrunk:
            continue
        # pass 2: strip one mutation from one motif
        for i, spec in enumerate(current.motifs):
            if not spec.mutations:
                continue
            for j in range(len(spec.mutations)):
                stripped = replace(
                    spec, mutations=spec.mutations[:j] + spec.mutations[j + 1 :]
                )
                candidate = realize(
                    current.campaign_seed,
                    current.index,
                    current.motifs[:i] + (stripped,) + current.motifs[i + 1 :],
                )
                attempts += 1
                if predicate(triage_program(candidate, config=config)):
                    current = candidate
                    shrunk = True
                    break
                if attempts >= max_attempts:
                    return current
            if shrunk:
                break
    return current
