"""Watch mode: re-analyze on change, print what the edit changed.

The watcher is a polling, content-hash watcher — ``mtime`` alone lies
(editors that preserve timestamps, checkouts that restore them), and a
content hash over a handful of project files costs microseconds per
poll. An idle poll does no parsing and no analysis; a changed poll runs
one incremental ``detect`` through the resident
:class:`~repro.service.daemon.AnalysisService` and prints the delta:
reports that appeared, reports that resolved, and how much of the shard
plan answered warm.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.service.daemon import AnalysisService
from repro.service.project import scan_shas


class Watcher:
    """Detects project changes between polls by content hash."""

    def __init__(self, path: str):
        self.path = path
        self._shas: Dict[str, str] = scan_shas(path)

    def poll(self) -> List[str]:
        """Paths that changed (edited, added, or removed) since last poll."""
        current = scan_shas(self.path)
        changed = sorted(
            p
            for p in set(current) | set(self._shas)
            if current.get(p) != self._shas.get(p)
        )
        self._shas = current
        return changed


def render_watch_delta(payload: dict, previous: Optional[dict]) -> List[str]:
    """Human lines for one watch-mode re-analysis."""
    from repro.report.table import render_delta

    old_renders = [r["render"] for r in (previous or {}).get("reports", [])]
    new_renders = [r["render"] for r in payload.get("reports", [])]
    shards = payload.get("shards", {})
    return render_delta(
        old_renders,
        new_renders,
        shards_total=shards.get("total", 0),
        shards_cached=shards.get("cached", 0),
        generation=payload.get("generation", 0),
    )


def run_watch(
    path: str,
    interval: float = 0.5,
    max_cycles: Optional[int] = None,
    out: Callable[[str], None] = print,
    service: Optional[AnalysisService] = None,
    **service_kwargs,
) -> int:
    """The ``repro watch`` loop: initial detect, then re-detect on change.

    ``max_cycles`` bounds the number of polls (tests, CI); ``None`` polls
    until interrupted. Returns the last detect's exit code, so a watch
    that ends while bugs are present exits 1 exactly like ``detect``.
    """
    service = service or AnalysisService(path, **service_kwargs).start()
    watcher = Watcher(path)
    payload = service.call("detect")["result"]
    out(f"watching {path} ({len(payload['reports'])} report(s), "
        f"generation {payload['generation']})")
    for report in payload["reports"]:
        out(report["render"])
    code = payload["code"]
    cycles = 0
    try:
        while max_cycles is None or cycles < max_cycles:
            cycles += 1
            time.sleep(interval)
            changed = watcher.poll()
            if not changed:
                continue
            out(f"-- change in {', '.join(changed)}")
            previous = payload
            response = service.call("detect")
            if "error" in response:
                out(f"-- analysis failed: {response['error'].get('message')}")
                continue
            payload = response["result"]
            for line in render_watch_delta(payload, previous):
                out(line)
            code = payload["code"]
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return code
