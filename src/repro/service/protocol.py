"""The analysis service's wire protocol: line-delimited JSON-RPC.

One request per line, one response per line, UTF-8, ``\\n``-terminated —
the same framing over stdio and TCP, trivially scriptable from a shell
(``echo '{"id":1,"method":"health"}' | nc localhost PORT``).

Request::

    {"id": 1, "method": "detect", "params": {"fail_on_timeout": true}}

Response (exactly one of ``result`` / ``error``)::

    {"id": 1, "result": {...}}
    {"id": 1, "error": {"code": -32603, "message": "...", "incident": {...}}}

Methods (see :mod:`repro.service.daemon` for the parameter/result shapes):
``ping``, ``detect``, ``fix``, ``stats``, ``metrics``, ``metrics_text``,
``health``, ``refresh``, ``shutdown``.

Every response — results, errors, even protocol errors for garbage
lines — carries a ``trace_id``. Clients may pin their own by putting a
``trace_id`` string in the request object; otherwise the daemon mints
one at decode time. The same id threads through the request's span
tree, its telemetry-journal record and its slow-request exemplar, so a
response in hand is enough to find everything the daemon knows about
how it was served.

Error codes follow JSON-RPC where a standard code exists; the service's
own conditions sit in the implementation-defined ``-320xx`` range. A
request that *crashes* inside the daemon is not a protocol error: the
crash degrades into a :class:`repro.resilience.incidents.Incident`
attached to the ``error`` object (code ``REQUEST_FAILED``), and the
daemon keeps serving.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.obs import new_trace_id

#: protocol identifier, echoed by ``ping``; bump on breaking changes
PROTOCOL_VERSION = "repro.service/1"

# -- error codes ------------------------------------------------------------

PARSE_ERROR = -32700  # request line is not valid JSON
INVALID_REQUEST = -32600  # JSON but not a valid request object
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
REQUEST_FAILED = -32603  # handler crashed; error carries the incident
DEADLINE_EXCEEDED = -32000  # expired in the queue before running
SHUTTING_DOWN = -32001  # daemon is draining; request was not served

#: every method the daemon serves, in documentation order
METHODS = (
    "ping",
    "detect",
    "fix",
    "stats",
    "metrics",
    "metrics_text",
    "health",
    "refresh",
    "shutdown",
)

RequestId = Union[int, str, None]


@dataclass
class Request:
    """One decoded request line."""

    id: RequestId
    method: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: per-request deadline in seconds, from ``params.deadline_seconds``;
    #: measured from enqueue time (a request that waits out its deadline
    #: in the queue is answered with DEADLINE_EXCEEDED, never run)
    deadline_seconds: Optional[float] = None
    #: request-scoped trace id: client-pinned or minted at decode time,
    #: echoed on the response and stamped on every span the request opens
    trace_id: str = field(default_factory=new_trace_id)
    #: seconds spent waiting in the FIFO queue before running, stamped by
    #: the queue worker just before dispatch (observability, not wire data)
    queue_wait_seconds: float = 0.0

    def to_json(self) -> dict:
        payload: dict = {"id": self.id, "method": self.method}
        if self.params:
            payload["params"] = self.params
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        return payload


class ProtocolError(Exception):
    """A malformed request line; carries the response error code."""

    def __init__(
        self,
        code: int,
        message: str,
        request_id: RequestId = None,
        trace_id: str = "",
    ):
        super().__init__(message)
        self.code = code
        self.request_id = request_id
        # even a garbage line gets a trace id, so its error response can
        # be correlated with the daemon's logs
        self.trace_id = trace_id or new_trace_id()


def decode_request(line: str) -> Request:
    """Decode one request line, raising :class:`ProtocolError` on garbage."""
    line = line.strip()
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(PARSE_ERROR, f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(INVALID_REQUEST, "request must be a JSON object")
    raw_trace = payload.get("trace_id")
    trace_id = raw_trace if isinstance(raw_trace, str) and raw_trace else new_trace_id()
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError(
            INVALID_REQUEST, "id must be an int or string", trace_id=trace_id
        )
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(
            INVALID_REQUEST,
            "missing method",
            request_id=request_id,
            trace_id=trace_id,
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            INVALID_PARAMS,
            "params must be an object",
            request_id=request_id,
            trace_id=trace_id,
        )
    deadline = params.get("deadline_seconds")
    if deadline is not None and (
        not isinstance(deadline, (int, float)) or deadline <= 0
    ):
        raise ProtocolError(
            INVALID_PARAMS,
            "deadline_seconds must be a positive number",
            request_id=request_id,
            trace_id=trace_id,
        )
    return Request(
        id=request_id,
        method=method,
        params=params,
        deadline_seconds=float(deadline) if deadline is not None else None,
        trace_id=trace_id,
    )


def result_response(
    request_id: RequestId, result: Any, trace_id: str = ""
) -> dict:
    payload: dict = {"id": request_id, "result": result}
    if trace_id:
        payload["trace_id"] = trace_id
    return payload


def error_response(
    request_id: RequestId,
    code: int,
    message: str,
    incident: Optional[dict] = None,
    trace_id: str = "",
) -> dict:
    error: dict = {"code": code, "message": message}
    if incident is not None:
        error["incident"] = incident
    payload: dict = {"id": request_id, "error": error}
    if trace_id:
        payload["trace_id"] = trace_id
    return payload


def encode_line(payload: dict) -> str:
    """One wire line: compact JSON, sorted keys (deterministic), newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def is_error(response: dict) -> bool:
    return "error" in response
