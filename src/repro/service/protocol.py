"""The analysis service's wire protocol: line-delimited JSON-RPC.

One request per line, one response per line, UTF-8, ``\\n``-terminated —
the same framing over stdio and TCP, trivially scriptable from a shell
(``echo '{"id":1,"method":"health"}' | nc localhost PORT``).

Request::

    {"id": 1, "method": "detect", "params": {"fail_on_timeout": true}}

Response (exactly one of ``result`` / ``error``)::

    {"id": 1, "result": {...}}
    {"id": 1, "error": {"code": -32603, "message": "...", "incident": {...}}}

Methods (see :mod:`repro.service.daemon` for the parameter/result shapes):
``ping``, ``detect``, ``fix``, ``stats``, ``metrics``, ``metrics_text``,
``health``, ``refresh``, ``register``, ``tenants``, ``shutdown``.

Multi-tenancy is additive: a request may carry a ``tenant`` string (a
registered project id; default ``"default"``, the project the daemon was
started with) and a ``priority`` class (``high``/``normal``/``low``,
default ``normal``) — either top-level next to ``trace_id`` or inside
``params``. Requests without them behave exactly as before, so the
protocol version is unchanged. Under overload the daemon *rejects*
instead of queueing: ``OVERLOADED`` (queue-depth limits, degraded-mode
shedding) and ``QUOTA_EXCEEDED`` (per-tenant token bucket) errors carry
a ``retry_after`` hint in seconds.

Every response — results, errors, even protocol errors for garbage
lines — carries a ``trace_id``. Clients may pin their own by putting a
``trace_id`` string in the request object; otherwise the daemon mints
one at decode time. The same id threads through the request's span
tree, its telemetry-journal record and its slow-request exemplar, so a
response in hand is enough to find everything the daemon knows about
how it was served.

Error codes follow JSON-RPC where a standard code exists; the service's
own conditions sit in the implementation-defined ``-320xx`` range. A
request that *crashes* inside the daemon is not a protocol error: the
crash degrades into a :class:`repro.resilience.incidents.Incident`
attached to the ``error`` object (code ``REQUEST_FAILED``), and the
daemon keeps serving.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.obs import new_trace_id

#: protocol identifier, echoed by ``ping``; bump on breaking changes
PROTOCOL_VERSION = "repro.service/1"

# -- error codes ------------------------------------------------------------

PARSE_ERROR = -32700  # request line is not valid JSON
INVALID_REQUEST = -32600  # JSON but not a valid request object
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
REQUEST_FAILED = -32603  # handler crashed; error carries the incident
DEADLINE_EXCEEDED = -32000  # expired in the queue before running
SHUTTING_DOWN = -32001  # daemon is draining; request was not served
OVERLOADED = -32002  # shed by admission control (queue depth / degraded mode)
QUOTA_EXCEEDED = -32003  # the tenant's token-bucket quota is exhausted

#: every method the daemon serves, in documentation order
METHODS = (
    "ping",
    "detect",
    "fix",
    "stats",
    "metrics",
    "metrics_text",
    "health",
    "refresh",
    "register",
    "tenants",
    "fuzz",
    "shutdown",
)

#: scheduling classes, strongest first; the weighted-fair scheduler
#: drains a class completely before touching the next
PRIORITIES = ("high", "normal", "low")

#: the tenant every request belongs to unless it says otherwise — the
#: project the daemon was started with, preserving the PR-5 wire behavior
DEFAULT_TENANT = "default"

RequestId = Union[int, str, None]


class ServiceError(Exception):
    """A request-level error that is *not* a crash: wrong params, an
    unknown tenant, an unsupported method for this project shape. Mapped
    to a plain protocol error (no incident) and never counted against
    daemon health."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


@dataclass
class Request:
    """One decoded request line."""

    id: RequestId
    method: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: per-request deadline in seconds, from ``params.deadline_seconds``;
    #: measured from enqueue time (a request that waits out its deadline
    #: in the queue is answered with DEADLINE_EXCEEDED, never run)
    deadline_seconds: Optional[float] = None
    #: request-scoped trace id: client-pinned or minted at decode time,
    #: echoed on the response and stamped on every span the request opens
    trace_id: str = field(default_factory=new_trace_id)
    #: seconds spent waiting in the scheduler before running, stamped by
    #: the dispatching worker just before dispatch (observability, not wire data)
    queue_wait_seconds: float = 0.0
    #: which registered project this request addresses
    tenant: str = DEFAULT_TENANT
    #: scheduling class; one of :data:`PRIORITIES`
    priority: str = "normal"

    def to_json(self) -> dict:
        payload: dict = {"id": self.id, "method": self.method}
        if self.params:
            payload["params"] = self.params
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        if self.tenant != DEFAULT_TENANT:
            payload["tenant"] = self.tenant
        if self.priority != "normal":
            payload["priority"] = self.priority
        return payload


class ProtocolError(Exception):
    """A malformed request line; carries the response error code."""

    def __init__(
        self,
        code: int,
        message: str,
        request_id: RequestId = None,
        trace_id: str = "",
    ):
        super().__init__(message)
        self.code = code
        self.request_id = request_id
        # even a garbage line gets a trace id, so its error response can
        # be correlated with the daemon's logs
        self.trace_id = trace_id or new_trace_id()


def decode_request(line: str) -> Request:
    """Decode one request line, raising :class:`ProtocolError` on garbage."""
    line = line.strip()
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(PARSE_ERROR, f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(INVALID_REQUEST, "request must be a JSON object")
    raw_trace = payload.get("trace_id")
    trace_id = raw_trace if isinstance(raw_trace, str) and raw_trace else new_trace_id()
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError(
            INVALID_REQUEST, "id must be an int or string", trace_id=trace_id
        )
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(
            INVALID_REQUEST,
            "missing method",
            request_id=request_id,
            trace_id=trace_id,
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            INVALID_PARAMS,
            "params must be an object",
            request_id=request_id,
            trace_id=trace_id,
        )
    deadline = params.get("deadline_seconds")
    if deadline is not None and (
        not isinstance(deadline, (int, float)) or deadline <= 0
    ):
        raise ProtocolError(
            INVALID_PARAMS,
            "deadline_seconds must be a positive number",
            request_id=request_id,
            trace_id=trace_id,
        )
    # tenant/priority ride top-level (like trace_id) or in params (handy
    # for `repro client --params`); top-level wins when both are present
    tenant = payload.get("tenant", params.get("tenant", DEFAULT_TENANT))
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(
            INVALID_PARAMS,
            "tenant must be a non-empty string",
            request_id=request_id,
            trace_id=trace_id,
        )
    priority = payload.get("priority", params.get("priority", "normal"))
    if priority not in PRIORITIES:
        raise ProtocolError(
            INVALID_PARAMS,
            f"priority must be one of {', '.join(PRIORITIES)}",
            request_id=request_id,
            trace_id=trace_id,
        )
    return Request(
        id=request_id,
        method=method,
        params=params,
        deadline_seconds=float(deadline) if deadline is not None else None,
        trace_id=trace_id,
        tenant=tenant,
        priority=priority,
    )


def result_response(
    request_id: RequestId, result: Any, trace_id: str = ""
) -> dict:
    payload: dict = {"id": request_id, "result": result}
    if trace_id:
        payload["trace_id"] = trace_id
    return payload


def error_response(
    request_id: RequestId,
    code: int,
    message: str,
    incident: Optional[dict] = None,
    trace_id: str = "",
    retry_after: Optional[float] = None,
) -> dict:
    error: dict = {"code": code, "message": message}
    if incident is not None:
        error["incident"] = incident
    if retry_after is not None:
        # shed responses tell the client when trying again is worthwhile
        error["retry_after"] = round(max(0.0, retry_after), 3)
    payload: dict = {"id": request_id, "error": error}
    if trace_id:
        payload["trace_id"] = trace_id
    return payload


def encode_line(payload: dict) -> str:
    """One wire line: compact JSON, sorted keys (deterministic), newline."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def is_error(response: dict) -> bool:
    return "error" in response
