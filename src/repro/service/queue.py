"""Back-compat alias: the single-worker FIFO queue of PR 5.

The real machinery now lives in :mod:`repro.service.scheduler` — a
worker pool behind per-tenant weighted-fair queues. With one worker and
one tenant the fair scheduler *is* a FIFO (one lane, strict arrival
order, same deadline semantics), so :class:`RequestQueue` is just the
scheduler pinned to ``workers=1``. Existing embedders that constructed
``RequestQueue(handler)`` directly keep the exact PR-5 behavior:
strictly serialized requests, queue-relative deadlines, drain-on-stop.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs import Collector
from repro.service.protocol import Request
from repro.service.scheduler import FairScheduler

__all__ = ["RequestQueue"]


class RequestQueue(FairScheduler):
    """FIFO queue + single worker; ``handler(Request) -> response dict``."""

    def __init__(
        self,
        handler: Callable[[Request], dict],
        collector: Optional[Collector] = None,
    ):
        super().__init__(handler, workers=1, collector=collector)
