"""FIFO request queue with per-request deadlines.

One worker thread drains the queue in arrival order, so analysis
requests are strictly serialized — parallelism lives *inside* a request
(the engine's ``jobs`` pool), never across requests, which keeps the
resident cache/fingerprint state single-writer and the responses
deterministic. Transport threads (one per TCP connection, or the stdio
loop) enqueue and block on a per-request future.

Deadlines are queue-relative: ``deadline_seconds`` starts ticking at
submit time, and a request that is still waiting when its deadline
passes is answered with ``DEADLINE_EXCEEDED`` without running — the
contract a caller with a timeout actually wants, since a request that
*started* is charged for by the engine's own analysis budgets instead.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs import NULL, Collector
from repro.service.protocol import (
    DEADLINE_EXCEEDED,
    SHUTTING_DOWN,
    Request,
    error_response,
)

_STOP = object()


@dataclass
class _Pending:
    request: Request
    future: "Future[dict]"
    enqueued: float  # monotonic submit time

    def expired(self, now: float) -> bool:
        deadline = self.request.deadline_seconds
        return deadline is not None and (now - self.enqueued) > deadline


class RequestQueue:
    """FIFO queue + single worker; ``handler(Request) -> response dict``."""

    def __init__(
        self,
        handler: Callable[[Request], dict],
        collector: Optional[Collector] = None,
    ):
        self.handler = handler
        self.collector = collector or NULL
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._stopping = False

    def start(self) -> None:
        if self._worker is not None:
            return
        self._worker = threading.Thread(
            target=self._drain, name="repro-service-queue", daemon=True
        )
        self._worker.start()

    def submit(self, request: Request) -> "Future[dict]":
        """Enqueue one request; the returned future resolves to its
        response dict (futures never carry exceptions — a handler crash
        is already a structured error response by the time it lands)."""
        future: "Future[dict]" = Future()
        if self._stopping:
            future.set_result(
                error_response(
                    request.id,
                    SHUTTING_DOWN,
                    "daemon is shutting down",
                    trace_id=request.trace_id,
                )
            )
            return future
        self._queue.put(_Pending(request=request, future=future, enqueued=time.monotonic()))
        if self.collector:
            self.collector.gauge("service.queue-depth", self._queue.qsize())
        return future

    def call(self, request: Request, timeout: Optional[float] = None) -> dict:
        """Submit and wait: the synchronous convenience used by transports."""
        return self.submit(request).result(timeout=timeout)

    def stop(self, timeout: float = 5.0) -> None:
        """Drain-and-stop: requests already queued are still answered
        (with SHUTTING_DOWN if they cannot run), new submits are refused."""
        self._stopping = True
        self._queue.put(_STOP)
        if self._worker is not None:
            self._worker.join(timeout=timeout)
            self._worker = None

    # -- worker ------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._flush_remaining()
                return
            pending: _Pending = item  # type: ignore[assignment]
            request = pending.request
            now = time.monotonic()
            request.queue_wait_seconds = max(0.0, now - pending.enqueued)
            if self.collector:
                self.collector.observe(
                    "service.queue.wait_seconds", request.queue_wait_seconds
                )
            if pending.expired(now):
                if self.collector:
                    self.collector.count("service.deadline-exceeded")
                pending.future.set_result(
                    error_response(
                        request.id,
                        DEADLINE_EXCEEDED,
                        f"deadline of {request.deadline_seconds}s expired "
                        "while queued",
                        trace_id=request.trace_id,
                    )
                )
                continue
            try:
                response = self.handler(request)
            except BaseException as exc:  # the handler's own firewall failed
                response = error_response(
                    request.id, SHUTTING_DOWN if self._stopping else -32603,
                    f"handler error: {type(exc).__name__}: {exc}",
                    trace_id=request.trace_id,
                )
            pending.future.set_result(response)

    def _flush_remaining(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            pending: _Pending = item  # type: ignore[assignment]
            pending.future.set_result(
                error_response(
                    pending.request.id,
                    SHUTTING_DOWN,
                    "daemon is shutting down",
                    trace_id=pending.request.trace_id,
                )
            )
