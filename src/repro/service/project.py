"""Resident project state with per-file incremental re-parse.

A :class:`ProjectState` keeps one loaded project — a single ``.go`` file
or a directory of them (one package, Go-style shared namespace) — warm
across daemon requests:

* per-file ASTs, keyed by content hash: :meth:`refresh` re-reads the
  file set, re-parses **only** files whose bytes changed, and reuses
  every other file's cached AST;
* the lowered :class:`~repro.ssa.ir.Program`, rebuilt from those ASTs
  only when something actually changed (SSA lowering is cheap next to
  solving, and rebuilding keeps line-number metadata exact);
* per-function SSA digests (:func:`repro.engine.fingerprint.function_digest`),
  whose old/new diff is the first half of the invalidation algorithm —
  the second half, digest diff → shard set, happens through
  :mod:`repro.engine.invalidate` because only the engine knows which
  functions sit in which shard's scope.

Refresh is crash-safe by construction: everything is computed into new
locals and committed at the end, so a mid-refresh failure (unreadable
file, parse error in the edited source) leaves the previous generation
serving — the daemon reports the failure as an incident instead of
swapping in a broken program.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.fingerprint import function_digest
from repro.obs import NULL, STAGE_PARSE, Collector
from repro.ssa import ir
from repro.ssa.builder import build_program_from_files, parse_source_file


@dataclass
class SourceFile:
    """One project file's cached parse: content hash + AST."""

    path: str  # absolute path on disk
    name: str  # stable display name (relative to the project root)
    sha: str  # sha256 of the file bytes
    source: str
    ast: object  # repro.golang.ast_nodes.File


@dataclass
class RefreshDelta:
    """What one :meth:`ProjectState.refresh` changed, at file and
    function granularity. ``is_noop`` means the resident program object
    is untouched (same generation)."""

    changed_files: List[str] = field(default_factory=list)
    added_files: List[str] = field(default_factory=list)
    removed_files: List[str] = field(default_factory=list)
    changed_functions: List[str] = field(default_factory=list)
    added_functions: List[str] = field(default_factory=list)
    removed_functions: List[str] = field(default_factory=list)
    reparsed: int = 0  # files actually re-parsed (the incremental work)
    generation: int = 0  # project generation after this refresh

    def is_noop(self) -> bool:
        return not (self.changed_files or self.added_files or self.removed_files)

    def to_json(self) -> dict:
        return {
            "changed_files": list(self.changed_files),
            "added_files": list(self.added_files),
            "removed_files": list(self.removed_files),
            "changed_functions": list(self.changed_functions),
            "added_functions": list(self.added_functions),
            "removed_functions": list(self.removed_functions),
            "reparsed": self.reparsed,
            "generation": self.generation,
        }


def project_source_paths(path: str) -> List[str]:
    """The project's file set: ``path`` itself, or its ``*.go`` sorted."""
    if os.path.isdir(path):
        names = sorted(n for n in os.listdir(path) if n.endswith(".go"))
        if not names:
            raise FileNotFoundError(f"no .go files under {path}")
        return [os.path.join(path, n) for n in names]
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    return [path]


def content_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def scan_shas(path: str) -> Dict[str, str]:
    """Cheap change probe: ``{file path: content sha}`` with no parsing.

    The watcher polls this; it reads bytes but builds nothing, so an idle
    poll costs file I/O only. Unreadable files are skipped (they will
    surface properly on the refresh that follows a real change).
    """
    shas: Dict[str, str] = {}
    for file_path in project_source_paths(path):
        try:
            with open(file_path, "rb") as handle:
                shas[file_path] = content_sha(handle.read())
        except OSError:
            continue
    return shas


class ProjectState:
    """One project, resident: file set, ASTs, program, function digests."""

    def __init__(self, path: str, collector: Optional[Collector] = None):
        self.path = os.path.abspath(path)
        self.collector = collector or NULL
        self.files: Dict[str, SourceFile] = {}  # path -> cached parse
        self.program: Optional[ir.Program] = None
        self.digests: Dict[str, str] = {}  # function name -> SSA digest
        self.generation = 0  # bumped on every program rebuild

    @property
    def is_single_file(self) -> bool:
        return len(self.files) == 1

    @property
    def single_source(self) -> Optional[SourceFile]:
        if len(self.files) != 1:
            return None
        return next(iter(self.files.values()))

    def load(self) -> RefreshDelta:
        """Initial load; equivalent to a refresh from the empty state."""
        return self.refresh()

    def refresh(self) -> RefreshDelta:
        """Re-scan the file set, re-parse changed files only, and rebuild
        the program iff anything changed. Returns the delta; raises (and
        keeps the previous state) on read/parse errors."""
        obs = self.collector
        delta = RefreshDelta()
        new_files: Dict[str, SourceFile] = {}
        for file_path in project_source_paths(self.path):
            with open(file_path, "rb") as handle:
                data = handle.read()
            sha = content_sha(data)
            cached = self.files.get(file_path)
            if cached is not None and cached.sha == sha:
                new_files[file_path] = cached
                continue
            name = os.path.relpath(file_path, os.path.dirname(self.path) or ".")
            source = data.decode("utf-8")
            with obs.span(STAGE_PARSE):
                tree = parse_source_file(source, file_path)
            new_files[file_path] = SourceFile(
                path=file_path, name=name, sha=sha, source=source, ast=tree
            )
            delta.reparsed += 1
            if cached is None:
                delta.added_files.append(file_path)
            else:
                delta.changed_files.append(file_path)
        delta.removed_files = sorted(set(self.files) - set(new_files))
        if delta.is_noop() and self.program is not None:
            delta.generation = self.generation
            return delta
        program = build_program_from_files(
            [f.ast for f in new_files.values()], collector=obs
        )
        digests = {
            name: function_digest(fn) for name, fn in program.functions.items()
        }
        for name in sorted(set(digests) | set(self.digests)):
            if name not in self.digests:
                delta.added_functions.append(name)
            elif name not in digests:
                delta.removed_functions.append(name)
            elif digests[name] != self.digests[name]:
                delta.changed_functions.append(name)
        # commit: nothing above mutated state, so failures never tear it
        self.files = new_files
        self.program = program
        self.digests = digests
        self.generation += 1
        delta.generation = self.generation
        if obs:
            obs.count("service.reparse", delta.reparsed)
        return delta
