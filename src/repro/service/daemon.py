"""The long-lived, multi-tenant analysis daemon.

One :class:`AnalysisService` owns a
:class:`~repro.service.tenants.TenantRegistry` of resident projects
(the ``default`` tenant is the project the daemon was started with), a
**shared** :class:`~repro.engine.cache.ResultCache` (fingerprints are
content-addressed, so identical code across tenants warm-hits the same
entries), the daemon-lifetime :class:`~repro.obs.Collector` and incident
ledger, and a :class:`~repro.service.scheduler.FairScheduler` feeding a
pool of analysis workers. Transports — the stdio loop and the TCP
server, both speaking the line-delimited protocol of
:mod:`repro.service.protocol` — only enqueue and relay.

Concurrency model: the scheduler never runs two requests of the *same*
tenant at once, so each tenant's resident state
(:class:`~repro.service.project.ProjectState`, detect fingerprints,
health) stays single-writer; shared structures (result cache, collector
counters/dists, incident ledger) are lock-protected. Each request runs
against a private sub-collector whose span tree and metrics are merged
into the daemon's collector at completion, so traces stay intact under
``--workers N``.

Overload semantics (see :mod:`repro.service.admission`): requests are
admitted *under the scheduler lock* at submit time — queue-depth limits
and per-tenant token-bucket quotas shed excess work with structured
``OVERLOADED``/``QUOTA_EXCEEDED`` errors (plus a ``retry_after`` hint)
instead of queueing it, degraded health sheds low-priority requests
first, and a request that is both sheddable and past its deadline is
answered ``DEADLINE_EXCEEDED`` (the deadline wins). Every rejection is
journaled with its outcome, same as a served request.

The serving loop of one ``detect`` request is unchanged from PR 5:

1. **refresh** — re-read the tenant's file set; re-parse only files
   whose bytes changed; rebuild the program iff anything did;
2. **analyze** — run the detection engine against the shared warm cache:
   every shard whose scope fingerprint survived answers from cache;
3. **delta** — diff the new shard fingerprints against that tenant's
   previous request.

Failure semantics match the CLI's: a crash inside a request degrades
into a structured incident on *that request's* error response (code
``REQUEST_FAILED``) and the daemon keeps serving — including crashes in
admission itself (the ``service-admission`` fault site).
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.detector.gcatch import (
    GCatchResult,
    resolve_checkers,
    resolve_jobs,
    resolve_max_retries,
    resolve_solver_mode,
    run_gcatch,
)
from repro.detector.reporting import BugReport
from repro.engine import CacheView, ResultCache, diff_fingerprints
from repro.engine.invalidate import InvalidationDelta
from repro.obs import (
    STAGE_SERVICE_REQUEST,
    Collector,
    Span,
    TelemetryJournal,
    render_prometheus,
    request_record,
    snapshot,
)
from repro.resilience.faultinject import maybe_fault
from repro.resilience.firewall import Firewall, RetryPolicy
from repro.resilience.incidents import Incident, incidents_to_json
from repro.service.admission import (
    ADMISSION_EXEMPT,
    AdmissionConfig,
    AdmissionController,
)
from repro.service.project import ProjectState
from repro.service.protocol import (
    DEADLINE_EXCEEDED,
    DEFAULT_TENANT,
    METHOD_NOT_FOUND,
    METHODS,
    INVALID_PARAMS,
    OVERLOADED,
    PROTOCOL_VERSION,
    QUOTA_EXCEEDED,
    REQUEST_FAILED,
    SHUTTING_DOWN,
    ProtocolError,
    Request,
    ServiceError,
    decode_request,
    encode_line,
    error_response,
    result_response,
)
from repro.service.scheduler import FairScheduler
from repro.service.tenants import TenantRegistry, TenantState

#: daemon exit-code policy == CLI exit-code policy (tested for equality)
from repro.cli import EXIT_INCIDENT, EXIT_TIMEOUT

__all__ = [
    "AnalysisService",
    "RequestContext",
    "ServiceError",
    "ServiceServer",
    "exit_code_for",
    "serve_stdio",
    "serve_tcp",
]

#: methods that do not address one tenant's resident state, so they are
#: served even when the request's tenant id is not (yet) registered
_TENANTLESS_METHODS = ("register", "tenants", "fuzz")

#: rejection code -> journal outcome tag
_REJECT_OUTCOMES = {
    OVERLOADED: "overloaded",
    QUOTA_EXCEEDED: "quota",
    DEADLINE_EXCEEDED: "deadline",
    SHUTTING_DOWN: "shutdown",
    REQUEST_FAILED: "crashed",
}


def exit_code_for(
    reports: int,
    timed_out: bool,
    health: str,
    incidents: int,
    strict: bool = False,
    fail_on_timeout: bool = False,
) -> int:
    """The one-shot ``detect`` exit-code policy, shared with the daemon:
    1 for findings, 3 for exhausted budgets (opt-in), 4 for resilience
    failures (always on ``failed`` health, any incident under strict)."""
    code = 1 if reports else 0
    if fail_on_timeout and timed_out:
        code = EXIT_TIMEOUT
    if (strict and incidents) or health == "failed":
        code = EXIT_INCIDENT
    return code


def report_to_json(report: BugReport) -> dict:
    return {
        "category": report.category,
        "description": report.description,
        "lines": list(report.lines),
        "render": report.render(),
    }


@dataclass
class RequestContext:
    """Everything one in-flight request is allowed to touch: its tenant's
    resident state, its private sub-collector, and its window onto the
    shared result cache."""

    request: Request
    tenant: TenantState
    obs: Collector
    cache: CacheView


class AnalysisService:
    """The resident analysis service behind every transport."""

    def __init__(
        self,
        path: str,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        budget_wall_seconds: Optional[float] = None,
        budget_solver_nodes: Optional[int] = None,
        max_retries: Optional[int] = None,
        retry_timeouts: bool = False,
        checkers: Optional[List[str]] = None,
        solver_mode: Optional[str] = None,
        disentangle: bool = True,
        collector: Optional[Collector] = None,
        journal_path: Optional[str] = None,
        journal_max_bytes: int = 4_000_000,
        journal_max_files: int = 3,
        slow_threshold_seconds: float = 5.0,
        workers: int = 1,
        max_queue: Optional[int] = None,
        tenant_max_queue: Optional[int] = None,
        quota: Optional[float] = None,
        quota_burst: Optional[float] = None,
    ):
        self.collector = collector or Collector(f"serve:{path}")
        #: tenant id -> resident project; 'default' is the daemon's own
        self.tenants = TenantRegistry(path, collector=self.collector)
        # the warm cache is the point of staying resident — and it is
        # deliberately shared across tenants: fingerprints are
        # content-addressed, so identical code keys identical entries
        self.cache = cache or ResultCache(cache_dir)
        self.jobs = resolve_jobs(jobs)
        self.backend = backend
        self.budget_wall_seconds = budget_wall_seconds
        self.budget_solver_nodes = budget_solver_nodes
        self.max_retries = resolve_max_retries(max_retries)
        self.retry_timeouts = retry_timeouts
        self.checkers = resolve_checkers(checkers)
        self.solver_mode = resolve_solver_mode(solver_mode)
        self.disentangle = disentangle
        self.firewall = Firewall(
            collector=self.collector,
            policy=RetryPolicy(max_retries=self.max_retries),
        )
        self.admission = AdmissionController(
            AdmissionConfig(
                max_queue=max_queue,
                tenant_max_queue=tenant_max_queue,
                quota_rate=quota,
                quota_burst=quota_burst,
            )
        )
        self.queue = FairScheduler(
            self._handle,
            workers=workers,
            collector=self.collector,
            admit=self._admit,
            on_reject=self._record_rejection,
            weight_of=self.tenants.weight_of,
        )
        self.started = time.monotonic()
        self.requests_served = 0
        self._stats_lock = threading.Lock()
        self._shutdown = threading.Event()
        #: optional persistent telemetry journal: one JSONL record per
        #: request — served *or shed* — with size-bounded rotation
        self.journal: Optional[TelemetryJournal] = (
            TelemetryJournal(
                journal_path,
                max_bytes=journal_max_bytes,
                max_files=journal_max_files,
            )
            if journal_path
            else None
        )
        #: requests slower than this capture a full span-tree exemplar
        self.slow_threshold_seconds = slow_threshold_seconds
        #: most recent slow-request exemplars, newest last (also journaled)
        self.exemplars: "deque[dict]" = deque(maxlen=8)

    @property
    def state(self) -> ProjectState:
        """The default tenant's resident project (PR-5 compatibility)."""
        return self.tenants.default.state

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AnalysisService":
        """Load the default project and start the workers; raises on a
        project that cannot even be loaded (there is nothing to serve)."""
        self.state.load()
        self.queue.start()
        return self

    def stop(self) -> None:
        self._shutdown.set()
        self.queue.stop()

    @property
    def shutting_down(self) -> bool:
        return self._shutdown.is_set()

    def call(
        self,
        method: str,
        params: Optional[dict] = None,
        deadline_seconds: Optional[float] = None,
        tenant: str = DEFAULT_TENANT,
        priority: str = "normal",
    ) -> dict:
        """In-process convenience: one request through the real scheduler."""
        request = Request(
            id=None,
            method=method,
            params=params or {},
            deadline_seconds=deadline_seconds,
            tenant=tenant,
            priority=priority,
        )
        return self.queue.call(request)

    # -- admission ---------------------------------------------------------

    def _admit(
        self, request: Request, global_depth: int, tenant_depth: int
    ) -> Optional[dict]:
        """The scheduler's submit-time hook (runs under its lock, so
        depth checks are exact). ``None`` admits; a response dict sheds."""
        started = time.monotonic()
        label = f"{request.tenant}:{request.method}"
        if (
            request.method in METHODS
            and request.method not in _TENANTLESS_METHODS
            and request.tenant not in self.tenants
        ):
            return error_response(
                request.id,
                INVALID_PARAMS,
                f"unknown tenant {request.tenant!r}; register it first "
                "(method 'register')",
                trace_id=request.trace_id,
            )
        guarded = self.firewall.call(
            lambda: self._admission_decision(request, global_depth, tenant_depth),
            site="service-admission",
            label=label,
        )
        if not guarded.ok:
            incident = guarded.incident
            return error_response(
                request.id,
                REQUEST_FAILED,
                f"admission crashed: {incident.exception}: {incident.message}",
                incident=incident.to_json(),
                trace_id=request.trace_id,
            )
        decision = guarded.value
        if decision is None:
            return None
        deadline = request.deadline_seconds
        if deadline is not None and (time.monotonic() - started) >= deadline:
            # the deadline wins over the shed: a shed invites a retry,
            # an expired deadline must not
            self.collector.count("service.deadline-exceeded")
            return error_response(
                request.id,
                DEADLINE_EXCEEDED,
                f"deadline of {deadline}s expired at admission",
                trace_id=request.trace_id,
            )
        return error_response(
            request.id,
            decision.code,
            decision.message,
            trace_id=request.trace_id,
            retry_after=decision.retry_after,
        )

    def _admission_decision(
        self, request: Request, global_depth: int, tenant_depth: int
    ):
        maybe_fault("service-admission", f"{request.tenant}:{request.method}")
        return self.admission.decide(
            request,
            global_depth,
            tenant_depth,
            degraded=bool(self.firewall.incidents),
        )

    def _record_rejection(self, request: Request, response: dict) -> None:
        """Account and journal a request answered without being served
        (sheds, quota, deadline expiry, shutdown flush, admission crash)."""
        error = response.get("error") or {}
        code = error.get("code")
        outcome = _REJECT_OUTCOMES.get(code, "rejected")
        obs = self.collector
        if code in (OVERLOADED, QUOTA_EXCEEDED):
            obs.count("service.shed")
            obs.count(f"service.shed.{outcome}")
            obs.count(f"tenant.{request.tenant}.shed")
            tenant = self.tenants.maybe(request.tenant)
            if tenant is not None:
                tenant.shed += 1
        if self.journal is None:
            return
        record = request_record(
            trace_id=request.trace_id,
            method=request.method,
            outcome=outcome,
            elapsed_seconds=0.0,
            queue_wait_seconds=request.queue_wait_seconds,
            tenant=request.tenant,
            priority=request.priority,
            incidents=1 if "incident" in error else 0,
        )
        try:
            self.journal.append(record)
        except OSError:
            obs.count("journal.error")

    # -- request handling --------------------------------------------------

    def _handle(self, request: Request) -> dict:
        """One scheduled request: firewall around the handler, so a crash
        is an error response with an incident — never a dead daemon. Every
        path out of here echoes the request's ``trace_id``; served
        requests additionally land one telemetry-journal record."""
        handler = getattr(self, "_method_" + request.method, None)
        if request.method not in METHODS or handler is None:
            return error_response(
                request.id,
                METHOD_NOT_FOUND,
                f"unknown method {request.method!r} "
                f"(valid methods: {', '.join(METHODS)})",
                trace_id=request.trace_id,
            )
        resident = self.tenants.maybe(request.tenant)
        if resident is None and request.method not in _TENANTLESS_METHODS:
            # admission normally catches this; belt-and-braces for
            # embedders that drive the scheduler without admission
            return error_response(
                request.id,
                INVALID_PARAMS,
                f"unknown tenant {request.tenant!r}; register it first "
                "(method 'register')",
                trace_id=request.trace_id,
            )
        with self._stats_lock:
            self.requests_served += 1
        obs = self.collector
        obs.count("service.requests")
        obs.count(f"service.method.{request.method}")
        obs.count(f"tenant.{request.tenant}.requests")
        # each request runs against a private sub-collector (span stacks
        # are per-thread by construction only under workers=1); its tree
        # and metrics merge into the daemon collector at completion
        req_obs = Collector(f"request:{request.trace_id}")
        ctx = RequestContext(
            request=request,
            tenant=resident or self.tenants.default,
            obs=req_obs,
            cache=CacheView(self.cache),
        )
        if resident is not None:
            # single-writer by scheduler serialization: the tenant's
            # resident state reports refresh/parse into this request's tree
            resident.state.collector = req_obs
        started = time.perf_counter()
        outcome = "ok"
        with req_obs.span(
            STAGE_SERVICE_REQUEST,
            trace_id=request.trace_id,
            method=request.method,
            tenant=request.tenant,
        ) as request_span:
            try:
                guarded = self.firewall.call(
                    lambda: self._run_handler(handler, request, ctx),
                    site="service-request",
                    label=f"{request.tenant}:{request.method}",
                    reraise=(ServiceError,),
                )
            except ServiceError as exc:
                guarded = None
                outcome = "error"
                response = error_response(
                    request.id, exc.code, str(exc), trace_id=request.trace_id
                )
        elapsed = time.perf_counter() - started
        if guarded is not None:
            if guarded.ok:
                response = result_response(
                    request.id, guarded.value, trace_id=request.trace_id
                )
            else:
                outcome = "crashed"
                incident = guarded.incident
                response = error_response(
                    request.id,
                    REQUEST_FAILED,
                    f"request crashed: {incident.exception}: {incident.message}",
                    incident=incident.to_json(),
                    trace_id=request.trace_id,
                )
        if resident is not None:
            resident.served += 1
        self.collector.merge(req_obs)
        self._finish_request(
            request,
            request_span,
            response,
            outcome,
            elapsed,
            cache_delta={"hits": ctx.cache.hits, "misses": ctx.cache.misses},
        )
        return response

    def _finish_request(
        self,
        request: Request,
        request_span: Span,
        response: dict,
        outcome: str,
        elapsed: float,
        cache_delta: Dict[str, int],
    ) -> None:
        """Post-response telemetry: latency/stage distributions, the slow
        exemplar, the journal record. Never fails the request — a broken
        journal disk degrades into a ``journal.error`` counter."""
        obs = self.collector
        obs.observe("service.request.seconds", elapsed)
        obs.observe(f"tenant.{request.tenant}.request.seconds", elapsed)
        if request.method not in ADMISSION_EXEMPT:
            # analysis durations price the retry_after hint on depth sheds
            self.admission.observe_duration(elapsed)
        stages: Dict[str, float] = {}
        for span in request_span.walk():
            if span is request_span:
                continue
            stages[span.name] = stages.get(span.name, 0.0) + span.seconds
        for name, seconds in stages.items():
            obs.observe(f"stage.{name}.seconds", seconds)
        slow = elapsed >= self.slow_threshold_seconds
        exemplar: Optional[dict] = None
        if slow:
            obs.count("service.slow-requests")
            exemplar = {
                "trace_id": request.trace_id,
                "method": request.method,
                "tenant": request.tenant,
                "elapsed_seconds": elapsed,
                "queue_wait_seconds": request.queue_wait_seconds,
                "spans": request_span.to_dict(),
            }
            self.exemplars.append(exemplar)
        if self.journal is None:
            return
        result = response.get("result")
        incidents = 0
        if isinstance(result, dict) and isinstance(result.get("incidents"), list):
            incidents = len(result["incidents"])
        elif "error" in response and "incident" in response["error"]:
            incidents = 1
        record = request_record(
            trace_id=request.trace_id,
            method=request.method,
            outcome=outcome,
            elapsed_seconds=elapsed,
            queue_wait_seconds=request.queue_wait_seconds,
            tenant=request.tenant,
            priority=request.priority,
            code=result.get("code") if isinstance(result, dict) else None,
            reports=len(result["reports"])
            if isinstance(result, dict) and isinstance(result.get("reports"), list)
            else None,
            generation=result.get("generation") if isinstance(result, dict) else None,
            stages=stages,
            cache=cache_delta if any(cache_delta.values()) else None,
            incidents=incidents,
            slow=slow,
            exemplar=exemplar,
        )
        try:
            self.journal.append(record)
        except OSError:
            obs.count("journal.error")

    def _run_handler(self, handler, request: Request, ctx: RequestContext):
        label = f"{request.tenant}:{request.method}"
        maybe_fault("service-scheduler", label)
        maybe_fault("service-request", label)
        return handler(request.params, ctx)

    def _refresh(self, ctx: RequestContext):
        """Refresh behind its own firewall: a broken edit (parse error,
        vanished file) keeps the previous generation serving and surfaces
        as an incident, exactly like any other degraded unit."""
        guarded = self.firewall.call(
            ctx.tenant.state.refresh,
            site="service-request",
            label=f"{ctx.request.tenant}:refresh",
        )
        if guarded.ok:
            return guarded.value, None
        return None, guarded.incident

    # -- methods -----------------------------------------------------------

    def _method_ping(self, params: dict, ctx: RequestContext) -> dict:
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "project": ctx.tenant.state.path,
            "tenant": ctx.tenant.tenant_id,
            "tenants": len(self.tenants),
            "workers": self.queue.workers,
            "generation": ctx.tenant.state.generation,
            "uptime_seconds": time.monotonic() - self.started,
        }

    def _method_refresh(self, params: dict, ctx: RequestContext) -> dict:
        delta, incident = self._refresh(ctx)
        if incident is not None:
            raise ServiceError(
                REQUEST_FAILED,
                f"refresh failed: {incident.exception}: {incident.message}",
            )
        payload = delta.to_json()
        payload["noop"] = delta.is_noop()
        if params.get("plan") and not delta.is_noop():
            # optional: pre-compute the shard-level invalidation without
            # analyzing (front half of the pipeline only)
            from repro.engine.invalidate import shard_fingerprints

            new = shard_fingerprints(
                ctx.tenant.state.program,
                config=self._engine_config(ctx),
                collector=ctx.obs,
            )
            payload["invalidation"] = diff_fingerprints(
                ctx.tenant.fingerprints, new
            ).to_json()
        return payload

    def _engine_config(self, ctx: RequestContext):
        from repro.engine import EngineConfig

        return EngineConfig(
            jobs=self.jobs,
            backend=self.backend or "thread",
            cache=ctx.cache,
            budget_wall_seconds=self.budget_wall_seconds,
            budget_solver_nodes=self.budget_solver_nodes,
            solver_mode=self.solver_mode,
            disentangle=self.disentangle,
            checkers=self.checkers,
            max_retries=self.max_retries,
            retry_timeouts=self.retry_timeouts,
        )

    def _detect(
        self, params: dict, ctx: RequestContext
    ) -> "tuple[GCatchResult, Optional[dict]]":
        refresh_payload = None
        if params.get("refresh", True):
            delta, incident = self._refresh(ctx)
            if incident is not None:
                if ctx.tenant.state.program is None:
                    raise ServiceError(
                        REQUEST_FAILED,
                        f"project failed to load: {incident.message}",
                    )
                refresh_payload = {"failed": True, "incident": incident.to_json()}
            else:
                refresh_payload = delta.to_json()
                refresh_payload["noop"] = delta.is_noop()
        result = run_gcatch(
            ctx.tenant.state.program,
            disentangle=self.disentangle,
            collector=ctx.obs,
            jobs=self.jobs,
            backend=self.backend,
            cache=ctx.cache,
            budget_wall_seconds=self.budget_wall_seconds,
            budget_solver_nodes=self.budget_solver_nodes,
            max_retries=self.max_retries,
            retry_timeouts=self.retry_timeouts,
            checkers=self.checkers,
            solver_mode=self.solver_mode,
        )
        return result, refresh_payload

    def _method_detect(self, params: dict, ctx: RequestContext) -> dict:
        result, refresh_payload = self._detect(params, ctx)
        tenant = ctx.tenant
        shards = result.shards or []
        cached = sum(1 for s in shards if s.outcome == "cached")
        new_fps = {f"{s.kind}:{s.label}": s.fingerprint for s in shards}
        delta: Optional[InvalidationDelta] = None
        if tenant.fingerprints:
            delta = diff_fingerprints(tenant.fingerprints, new_fps)
        tenant.fingerprints = new_fps
        reports = result.all_reports()
        health = result.health()
        code = exit_code_for(
            len(reports),
            result.has_timeouts(),
            health,
            len(result.incidents),
            strict=bool(params.get("strict")),
            fail_on_timeout=bool(params.get("fail_on_timeout")),
        )
        tenant.last = {
            "method": "detect",
            "generation": tenant.state.generation,
            "reports": len(reports),
            "health": health,
            "code": code,
            "incidents": len(result.incidents),
        }
        payload = {
            "generation": tenant.state.generation,
            "reports": [report_to_json(r) for r in reports],
            "bmoc": len(result.bmoc.reports),
            "traditional": len(result.traditional),
            "health": health,
            "code": code,
            "timed_out": result.has_timeouts(),
            "elapsed_seconds": result.elapsed_seconds,
            "shards": {
                "total": len(shards),
                "cached": cached,
                "executed": len(shards) - cached,
                "timeout": len(result.timed_out_shards()),
                "failed": len(result.failed_shards()),
                "skip_rate": cached / len(shards) if shards else 1.0,
            },
        }
        if refresh_payload is not None:
            payload["refresh"] = refresh_payload
        if delta is not None:
            payload["delta"] = delta.to_json()
        if result.incidents:
            payload["incidents"] = incidents_to_json(result.incidents)
        return payload

    def _method_fuzz(self, params: dict, ctx: RequestContext) -> dict:
        """One fuzz-campaign shard: triage program indexes
        ``[start, start+count)`` of ``seed``. Generation is pure in
        (seed, index), so shards merged across a fleet reproduce the
        single-process campaign exactly — the triage dicts carry no
        timing, and the nondeterministic wall clock stays out of them.
        """
        seed = params.get("seed", 0)
        start = params.get("start", 0)
        count = params.get("count")
        for name, value in (("seed", seed), ("start", start), ("count", count)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ServiceError(
                    INVALID_PARAMS, f"fuzz needs integer params.{name}"
                )
        if count <= 0 or start < 0:
            raise ServiceError(
                INVALID_PARAMS, "fuzz needs count > 0 and start >= 0"
            )
        from repro.fuzz.campaign import run_campaign

        report = run_campaign(seed, count, start=start, collector=ctx.obs)
        return {
            "seed": seed,
            "start": start,
            "count": count,
            "triages": [t.to_dict() for t in report.triages],
            "buckets": report.buckets(),
            "unexplained": len(report.unexplained()),
            "crashes": len(report.crashes()),
            "elapsed_seconds": round(report.elapsed_seconds, 6),
        }

    def _method_fix(self, params: dict, ctx: RequestContext) -> dict:
        tenant = ctx.tenant
        single = tenant.state.single_source
        if single is None:
            raise ServiceError(
                INVALID_PARAMS,
                "fix needs the patchable source text, so it is only "
                "available on single-file projects",
            )
        result, refresh_payload = self._detect(params, ctx)
        bugs = result.bmoc.bmoc_channel_bugs()
        from repro.fixer.dispatcher import GFix

        gfix = GFix(tenant.state.program, single.source, collector=ctx.obs)
        summary = gfix.fix_all(bugs)
        incidents = list(result.incidents) + summary.incidents()
        fixed = summary.fixed()
        health = result.health()
        code = exit_code_for(
            0, False, health, len(incidents), strict=bool(params.get("strict"))
        )
        tenant.last = {
            "method": "fix",
            "generation": tenant.state.generation,
            "reports": len(bugs),
            "health": health,
            "code": code,
            "incidents": len(incidents),
        }
        payload = {
            "generation": tenant.state.generation,
            "bugs": len(bugs),
            "fixed": len(fixed),
            "code": code,
            "health": health,
            "fixes": [
                {
                    "description": fix.report.description,
                    "fixed": fix.fixed,
                    "strategy": fix.strategy if fix.fixed else None,
                    "diff": fix.patch.unified_diff(single.path)
                    if fix.fixed
                    else None,
                    "reason": None if fix.fixed else fix.reason,
                }
                for fix in summary.results
            ],
        }
        if refresh_payload is not None:
            payload["refresh"] = refresh_payload
        if incidents:
            payload["incidents"] = incidents_to_json(incidents)
        return payload

    def _method_register(self, params: dict, ctx: RequestContext) -> dict:
        tenant_id = params.get("tenant") or ctx.request.tenant
        if not isinstance(tenant_id, str) or not tenant_id:
            raise ServiceError(
                INVALID_PARAMS, "register needs a tenant id (params.tenant)"
            )
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise ServiceError(
                INVALID_PARAMS,
                "register needs params.path (a .go file or a project directory)",
            )
        weight = params.get("weight", 1.0)
        if not isinstance(weight, (int, float)) or isinstance(weight, bool) or weight <= 0:
            raise ServiceError(
                INVALID_PARAMS, "weight must be a positive number"
            )
        tenant = self.tenants.register(tenant_id, path, weight=float(weight))
        self.queue.set_weight(tenant.tenant_id, tenant.weight)
        payload = tenant.to_json()
        payload["ok"] = True
        return payload

    def _method_tenants(self, params: dict, ctx: RequestContext) -> dict:
        return {
            "tenants": [tenant.to_json() for tenant in self.tenants.items()],
            "depths": self.queue.depths(),
            "workers": self.queue.workers,
            "sheds": self.admission.sheds,
        }

    def _method_stats(self, params: dict, ctx: RequestContext) -> dict:
        """The full ``repro.obs/2`` snapshot of the daemon's collector."""
        extra = {
            "project": self.state.path,
            "generation": self.state.generation,
            "requests": self.requests_served,
            "tenants": len(self.tenants),
            "uptime_seconds": time.monotonic() - self.started,
        }
        if self.firewall.incidents:
            extra["incidents"] = incidents_to_json(self.firewall.incidents)
        if self.exemplars:
            extra["exemplars"] = list(self.exemplars)
        return snapshot(self.collector, extra=extra)

    def _method_metrics_text(self, params: dict, ctx: RequestContext) -> dict:
        """Prometheus text exposition of the daemon's collector, for
        scrapers (``repro client <addr> metrics_text`` prints it raw)."""
        return {
            "content_type": "text/plain; version=0.0.4",
            "text": render_prometheus(self.collector),
        }

    def _method_metrics(self, params: dict, ctx: RequestContext) -> dict:
        """The light health/metrics view: obs counters + incident ledger."""
        return {
            "counters": dict(self.collector.counters),
            "gauges": dict(self.collector.gauges),
            "incidents": incidents_to_json(self.firewall.incidents),
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "corrupt": self.cache.corrupt,
                "evicted": self.cache.evicted,
            },
            "scheduler": {
                "workers": self.queue.workers,
                "depth": self.queue.depth,
                "depths": self.queue.depths(),
                "sheds": self.admission.sheds,
            },
            "tenants": len(self.tenants),
            "requests": self.requests_served,
            "uptime_seconds": time.monotonic() - self.started,
        }

    def _method_health(self, params: dict, ctx: RequestContext) -> dict:
        """Same ok/degraded/failed semantics (and exit code) the CLI
        reports: the verdict of the tenant's last analysis, or of the
        daemon's own ledger when nothing has been analyzed yet."""
        last = ctx.tenant.last
        health = last["health"] if last is not None else "ok"
        if health == "ok" and self.firewall.incidents:
            # crashed requests since the last clean analysis degrade the
            # daemon even though that analysis itself was fine
            health = "degraded"
        return {
            "health": health,
            "code": EXIT_INCIDENT if health == "failed" else 0,
            "last": dict(last) if last is not None else None,
            "incidents": len(self.firewall.incidents),
        }

    def _method_shutdown(self, params: dict, ctx: RequestContext) -> dict:
        self._shutdown.set()
        return {"ok": True, "requests_served": self.requests_served}


# -- transports -------------------------------------------------------------


def serve_stdio(service: AnalysisService, stdin=None, stdout=None) -> int:
    """Serve the line protocol over stdio until EOF or ``shutdown``."""
    import sys

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        if not line.strip():
            continue
        response = _serve_line(service, line)
        stdout.write(encode_line(response))
        stdout.flush()
        if service.shutting_down:
            break
    service.stop()
    return 0


def _serve_line(service: AnalysisService, line: str) -> dict:
    try:
        request = decode_request(line)
    except ProtocolError as exc:
        return error_response(
            exc.request_id, exc.code, str(exc), trace_id=exc.trace_id
        )
    return service.queue.call(request)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                raw = self.rfile.readline()
            except (OSError, ValueError):
                return
            if not raw:
                return
            line = raw.decode("utf-8", "replace")
            if not line.strip():
                continue
            response = _serve_line(service, line)
            try:
                self.wfile.write(encode_line(response).encode("utf-8"))
                self.wfile.flush()
            except (OSError, ValueError):
                return
            if service.shutting_down:
                self.server.begin_shutdown()  # type: ignore[attr-defined]
                return


class ServiceServer(socketserver.ThreadingTCPServer):
    """TCP transport: threaded connections, one shared fair scheduler."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: AnalysisService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.service = service
        self._shutdown_started = False
        self._shutdown_lock = threading.Lock()

    @property
    def address(self) -> "tuple[str, int]":
        host, port = self.server_address[:2]
        return host, port

    def begin_shutdown(self) -> None:
        """Idempotent async shutdown (callable from handler threads)."""
        with self._shutdown_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self) -> int:
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.service.stop()
            self.server_close()
        return 0


def serve_tcp(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Bind (port 0 = ephemeral) and return the server; the caller runs
    :meth:`ServiceServer.serve_until_shutdown` (or drives it in a thread)."""
    return ServiceServer(service, host=host, port=port)
