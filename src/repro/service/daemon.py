"""The long-lived analysis daemon.

One :class:`AnalysisService` owns a resident project
(:class:`~repro.service.project.ProjectState`), a warm
:class:`~repro.engine.cache.ResultCache`, the daemon-lifetime
:class:`~repro.obs.Collector` and incident ledger, and a FIFO
:class:`~repro.service.queue.RequestQueue` feeding one analysis worker.
Transports — the stdio loop and the TCP server, both speaking the
line-delimited protocol of :mod:`repro.service.protocol` — only enqueue
and relay; all analysis state is single-writer.

The serving loop of one ``detect`` request:

1. **refresh** — re-read the file set; re-parse only files whose bytes
   changed; rebuild the program iff anything did (per-file AST cache);
2. **analyze** — run the detection engine against the warm cache: every
   shard whose scope fingerprint survived the edit answers from cache
   with zero solver work, only invalidated shards re-solve;
3. **delta** — diff the new shard fingerprints against the previous
   request's (:func:`repro.engine.invalidate.diff_fingerprints`) so the
   response states exactly what the edit invalidated.

Failure semantics match the CLI's: a crash inside a request degrades
into a structured incident on *that request's* error response (code
``REQUEST_FAILED``) and the daemon keeps serving — a request can fail,
the daemon cannot be crashed by one. ``health`` exposes the same
``ok``/``degraded``/``failed`` verdict (and equivalent exit code) the
one-shot CLI would have reported for the last analysis.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.detector.gcatch import (
    GCatchResult,
    resolve_checkers,
    resolve_jobs,
    resolve_max_retries,
    resolve_solver_mode,
    run_gcatch,
)
from repro.detector.reporting import BugReport
from repro.engine import ResultCache, diff_fingerprints
from repro.engine.invalidate import InvalidationDelta
from repro.obs import (
    STAGE_SERVICE_REQUEST,
    Collector,
    Span,
    TelemetryJournal,
    render_prometheus,
    request_record,
    snapshot,
)
from repro.resilience.faultinject import maybe_fault
from repro.resilience.firewall import Firewall, RetryPolicy
from repro.resilience.incidents import Incident, incidents_to_json
from repro.service.project import ProjectState
from repro.service.protocol import (
    METHOD_NOT_FOUND,
    METHODS,
    INVALID_PARAMS,
    PROTOCOL_VERSION,
    REQUEST_FAILED,
    ProtocolError,
    Request,
    decode_request,
    encode_line,
    error_response,
    result_response,
)
from repro.service.queue import RequestQueue

#: daemon exit-code policy == CLI exit-code policy (tested for equality)
from repro.cli import EXIT_INCIDENT, EXIT_TIMEOUT


class ServiceError(Exception):
    """A request-level error that is *not* a crash: wrong params, an
    unsupported method for this project shape. Mapped to a plain protocol
    error (no incident) and never counted against daemon health."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


def exit_code_for(
    reports: int,
    timed_out: bool,
    health: str,
    incidents: int,
    strict: bool = False,
    fail_on_timeout: bool = False,
) -> int:
    """The one-shot ``detect`` exit-code policy, shared with the daemon:
    1 for findings, 3 for exhausted budgets (opt-in), 4 for resilience
    failures (always on ``failed`` health, any incident under strict)."""
    code = 1 if reports else 0
    if fail_on_timeout and timed_out:
        code = EXIT_TIMEOUT
    if (strict and incidents) or health == "failed":
        code = EXIT_INCIDENT
    return code


def report_to_json(report: BugReport) -> dict:
    return {
        "category": report.category,
        "description": report.description,
        "lines": list(report.lines),
        "render": report.render(),
    }


class AnalysisService:
    """The resident analysis service behind every transport."""

    def __init__(
        self,
        path: str,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        budget_wall_seconds: Optional[float] = None,
        budget_solver_nodes: Optional[int] = None,
        max_retries: Optional[int] = None,
        retry_timeouts: bool = False,
        checkers: Optional[List[str]] = None,
        solver_mode: Optional[str] = None,
        disentangle: bool = True,
        collector: Optional[Collector] = None,
        journal_path: Optional[str] = None,
        journal_max_bytes: int = 4_000_000,
        journal_max_files: int = 3,
        slow_threshold_seconds: float = 5.0,
    ):
        self.collector = collector or Collector(f"serve:{path}")
        self.state = ProjectState(path, collector=self.collector)
        # the warm cache is the point of staying resident: its memory tier
        # carries full-fidelity shard results from request to request
        self.cache = cache or ResultCache(cache_dir)
        self.jobs = resolve_jobs(jobs)
        self.backend = backend
        self.budget_wall_seconds = budget_wall_seconds
        self.budget_solver_nodes = budget_solver_nodes
        self.max_retries = resolve_max_retries(max_retries)
        self.retry_timeouts = retry_timeouts
        self.checkers = resolve_checkers(checkers)
        self.solver_mode = resolve_solver_mode(solver_mode)
        self.disentangle = disentangle
        self.firewall = Firewall(
            collector=self.collector,
            policy=RetryPolicy(max_retries=self.max_retries),
        )
        self.queue = RequestQueue(self._handle, collector=self.collector)
        self.started = time.monotonic()
        self.requests_served = 0
        #: last detect's shard fingerprints, for the next request's delta
        self._fingerprints: Dict[str, str] = {}
        #: summary of the last completed analysis, behind ``health``
        self._last: Optional[dict] = None
        self._shutdown = threading.Event()
        #: optional persistent telemetry journal: one JSONL record per
        #: request, size-bounded rotation, survives restarts
        self.journal: Optional[TelemetryJournal] = (
            TelemetryJournal(
                journal_path,
                max_bytes=journal_max_bytes,
                max_files=journal_max_files,
            )
            if journal_path
            else None
        )
        #: requests slower than this capture a full span-tree exemplar
        self.slow_threshold_seconds = slow_threshold_seconds
        #: most recent slow-request exemplars, newest last (also journaled)
        self.exemplars: "deque[dict]" = deque(maxlen=8)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AnalysisService":
        """Load the project and start the worker; raises on a project
        that cannot even be loaded (there is nothing to serve)."""
        self.state.load()
        self.queue.start()
        return self

    def stop(self) -> None:
        self._shutdown.set()
        self.queue.stop()

    @property
    def shutting_down(self) -> bool:
        return self._shutdown.is_set()

    def call(
        self,
        method: str,
        params: Optional[dict] = None,
        deadline_seconds: Optional[float] = None,
    ) -> dict:
        """In-process convenience: one request through the real queue."""
        request = Request(
            id=None,
            method=method,
            params=params or {},
            deadline_seconds=deadline_seconds,
        )
        return self.queue.call(request)

    # -- request handling --------------------------------------------------

    def _handle(self, request: Request) -> dict:
        """One queued request: firewall around the handler, so a crash is
        an error response with an incident — never a dead daemon. Every
        path out of here echoes the request's ``trace_id``; served
        requests additionally land one telemetry-journal record."""
        handler = getattr(self, "_method_" + request.method, None)
        if request.method not in METHODS or handler is None:
            return error_response(
                request.id,
                METHOD_NOT_FOUND,
                f"unknown method {request.method!r} "
                f"(valid methods: {', '.join(METHODS)})",
                trace_id=request.trace_id,
            )
        self.requests_served += 1
        obs = self.collector
        obs.count("service.requests")
        obs.count(f"service.method.{request.method}")
        hits_before, misses_before = self.cache.hits, self.cache.misses
        started = time.perf_counter()
        outcome = "ok"
        with obs.span(
            STAGE_SERVICE_REQUEST,
            trace_id=request.trace_id,
            method=request.method,
        ) as request_span:
            try:
                guarded = self.firewall.call(
                    lambda: self._run_handler(handler, request),
                    site="service-request",
                    label=request.method,
                    reraise=(ServiceError,),
                )
            except ServiceError as exc:
                guarded = None
                outcome = "error"
                response = error_response(
                    request.id, exc.code, str(exc), trace_id=request.trace_id
                )
        elapsed = time.perf_counter() - started
        if guarded is not None:
            if guarded.ok:
                response = result_response(
                    request.id, guarded.value, trace_id=request.trace_id
                )
            else:
                outcome = "crashed"
                incident = guarded.incident
                response = error_response(
                    request.id,
                    REQUEST_FAILED,
                    f"request crashed: {incident.exception}: {incident.message}",
                    incident=incident.to_json(),
                    trace_id=request.trace_id,
                )
        self._finish_request(
            request,
            request_span,
            response,
            outcome,
            elapsed,
            cache_delta={
                "hits": self.cache.hits - hits_before,
                "misses": self.cache.misses - misses_before,
            },
        )
        return response

    def _finish_request(
        self,
        request: Request,
        request_span: Span,
        response: dict,
        outcome: str,
        elapsed: float,
        cache_delta: Dict[str, int],
    ) -> None:
        """Post-response telemetry: latency/stage distributions, the slow
        exemplar, the journal record. Never fails the request — a broken
        journal disk degrades into a ``journal.error`` counter."""
        obs = self.collector
        obs.observe("service.request.seconds", elapsed)
        stages: Dict[str, float] = {}
        for span in request_span.walk():
            if span is request_span:
                continue
            stages[span.name] = stages.get(span.name, 0.0) + span.seconds
        for name, seconds in stages.items():
            obs.observe(f"stage.{name}.seconds", seconds)
        slow = elapsed >= self.slow_threshold_seconds
        exemplar: Optional[dict] = None
        if slow:
            obs.count("service.slow-requests")
            exemplar = {
                "trace_id": request.trace_id,
                "method": request.method,
                "elapsed_seconds": elapsed,
                "queue_wait_seconds": request.queue_wait_seconds,
                "spans": request_span.to_dict(),
            }
            self.exemplars.append(exemplar)
        if self.journal is None:
            return
        result = response.get("result")
        incidents = 0
        if isinstance(result, dict) and isinstance(result.get("incidents"), list):
            incidents = len(result["incidents"])
        elif "error" in response and "incident" in response["error"]:
            incidents = 1
        record = request_record(
            trace_id=request.trace_id,
            method=request.method,
            outcome=outcome,
            elapsed_seconds=elapsed,
            queue_wait_seconds=request.queue_wait_seconds,
            code=result.get("code") if isinstance(result, dict) else None,
            reports=len(result["reports"])
            if isinstance(result, dict) and isinstance(result.get("reports"), list)
            else None,
            generation=result.get("generation") if isinstance(result, dict) else None,
            stages=stages,
            cache=cache_delta if any(cache_delta.values()) else None,
            incidents=incidents,
            slow=slow,
            exemplar=exemplar,
        )
        try:
            self.journal.append(record)
        except OSError:
            obs.count("journal.error")

    def _run_handler(self, handler, request: Request):
        maybe_fault("service-request", request.method)
        return handler(request.params)

    def _refresh(self):
        """Refresh behind its own firewall: a broken edit (parse error,
        vanished file) keeps the previous generation serving and surfaces
        as an incident, exactly like any other degraded unit."""
        guarded = self.firewall.call(
            self.state.refresh, site="service-request", label="refresh"
        )
        if guarded.ok:
            return guarded.value, None
        return None, guarded.incident

    # -- methods -----------------------------------------------------------

    def _method_ping(self, params: dict) -> dict:
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "project": self.state.path,
            "generation": self.state.generation,
            "uptime_seconds": time.monotonic() - self.started,
        }

    def _method_refresh(self, params: dict) -> dict:
        delta, incident = self._refresh()
        if incident is not None:
            raise ServiceError(
                REQUEST_FAILED,
                f"refresh failed: {incident.exception}: {incident.message}",
            )
        payload = delta.to_json()
        payload["noop"] = delta.is_noop()
        if params.get("plan") and not delta.is_noop():
            # optional: pre-compute the shard-level invalidation without
            # analyzing (front half of the pipeline only)
            from repro.engine.invalidate import shard_fingerprints

            new = shard_fingerprints(
                self.state.program,
                config=self._engine_config(),
                collector=self.collector,
            )
            payload["invalidation"] = diff_fingerprints(
                self._fingerprints, new
            ).to_json()
        return payload

    def _engine_config(self):
        from repro.engine import EngineConfig

        return EngineConfig(
            jobs=self.jobs,
            backend=self.backend or "thread",
            cache=self.cache,
            budget_wall_seconds=self.budget_wall_seconds,
            budget_solver_nodes=self.budget_solver_nodes,
            solver_mode=self.solver_mode,
            disentangle=self.disentangle,
            checkers=self.checkers,
            max_retries=self.max_retries,
            retry_timeouts=self.retry_timeouts,
        )

    def _detect(self, params: dict) -> "tuple[GCatchResult, Optional[dict]]":
        refresh_payload = None
        if params.get("refresh", True):
            delta, incident = self._refresh()
            if incident is not None:
                if self.state.program is None:
                    raise ServiceError(
                        REQUEST_FAILED,
                        f"project failed to load: {incident.message}",
                    )
                refresh_payload = {"failed": True, "incident": incident.to_json()}
            else:
                refresh_payload = delta.to_json()
                refresh_payload["noop"] = delta.is_noop()
        result = run_gcatch(
            self.state.program,
            disentangle=self.disentangle,
            collector=self.collector,
            jobs=self.jobs,
            backend=self.backend,
            cache=self.cache,
            budget_wall_seconds=self.budget_wall_seconds,
            budget_solver_nodes=self.budget_solver_nodes,
            max_retries=self.max_retries,
            retry_timeouts=self.retry_timeouts,
            checkers=self.checkers,
            solver_mode=self.solver_mode,
        )
        return result, refresh_payload

    def _method_detect(self, params: dict) -> dict:
        result, refresh_payload = self._detect(params)
        shards = result.shards or []
        cached = sum(1 for s in shards if s.outcome == "cached")
        new_fps = {f"{s.kind}:{s.label}": s.fingerprint for s in shards}
        delta: Optional[InvalidationDelta] = None
        if self._fingerprints:
            delta = diff_fingerprints(self._fingerprints, new_fps)
        self._fingerprints = new_fps
        reports = result.all_reports()
        health = result.health()
        code = exit_code_for(
            len(reports),
            result.has_timeouts(),
            health,
            len(result.incidents),
            strict=bool(params.get("strict")),
            fail_on_timeout=bool(params.get("fail_on_timeout")),
        )
        self._last = {
            "method": "detect",
            "generation": self.state.generation,
            "reports": len(reports),
            "health": health,
            "code": code,
            "incidents": len(result.incidents),
        }
        payload = {
            "generation": self.state.generation,
            "reports": [report_to_json(r) for r in reports],
            "bmoc": len(result.bmoc.reports),
            "traditional": len(result.traditional),
            "health": health,
            "code": code,
            "timed_out": result.has_timeouts(),
            "elapsed_seconds": result.elapsed_seconds,
            "shards": {
                "total": len(shards),
                "cached": cached,
                "executed": len(shards) - cached,
                "timeout": len(result.timed_out_shards()),
                "failed": len(result.failed_shards()),
                "skip_rate": cached / len(shards) if shards else 1.0,
            },
        }
        if refresh_payload is not None:
            payload["refresh"] = refresh_payload
        if delta is not None:
            payload["delta"] = delta.to_json()
        if result.incidents:
            payload["incidents"] = incidents_to_json(result.incidents)
        return payload

    def _method_fix(self, params: dict) -> dict:
        single = self.state.single_source
        if single is None:
            raise ServiceError(
                INVALID_PARAMS,
                "fix needs the patchable source text, so it is only "
                "available on single-file projects",
            )
        result, refresh_payload = self._detect(params)
        bugs = result.bmoc.bmoc_channel_bugs()
        from repro.fixer.dispatcher import GFix

        gfix = GFix(self.state.program, single.source, collector=self.collector)
        summary = gfix.fix_all(bugs)
        incidents = list(result.incidents) + summary.incidents()
        fixed = summary.fixed()
        health = result.health()
        code = exit_code_for(
            0, False, health, len(incidents), strict=bool(params.get("strict"))
        )
        self._last = {
            "method": "fix",
            "generation": self.state.generation,
            "reports": len(bugs),
            "health": health,
            "code": code,
            "incidents": len(incidents),
        }
        payload = {
            "generation": self.state.generation,
            "bugs": len(bugs),
            "fixed": len(fixed),
            "code": code,
            "health": health,
            "fixes": [
                {
                    "description": fix.report.description,
                    "fixed": fix.fixed,
                    "strategy": fix.strategy if fix.fixed else None,
                    "diff": fix.patch.unified_diff(single.path)
                    if fix.fixed
                    else None,
                    "reason": None if fix.fixed else fix.reason,
                }
                for fix in summary.results
            ],
        }
        if refresh_payload is not None:
            payload["refresh"] = refresh_payload
        if incidents:
            payload["incidents"] = incidents_to_json(incidents)
        return payload

    def _method_stats(self, params: dict) -> dict:
        """The full ``repro.obs/2`` snapshot of the daemon's collector."""
        extra = {
            "project": self.state.path,
            "generation": self.state.generation,
            "requests": self.requests_served,
            "uptime_seconds": time.monotonic() - self.started,
        }
        if self.firewall.incidents:
            extra["incidents"] = incidents_to_json(self.firewall.incidents)
        if self.exemplars:
            extra["exemplars"] = list(self.exemplars)
        return snapshot(self.collector, extra=extra)

    def _method_metrics_text(self, params: dict) -> dict:
        """Prometheus text exposition of the daemon's collector, for
        scrapers (``repro client <addr> metrics_text`` prints it raw)."""
        return {
            "content_type": "text/plain; version=0.0.4",
            "text": render_prometheus(self.collector),
        }

    def _method_metrics(self, params: dict) -> dict:
        """The light health/metrics view: obs counters + incident ledger."""
        return {
            "counters": dict(self.collector.counters),
            "gauges": dict(self.collector.gauges),
            "incidents": incidents_to_json(self.firewall.incidents),
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "corrupt": self.cache.corrupt,
                "evicted": self.cache.evicted,
            },
            "requests": self.requests_served,
            "uptime_seconds": time.monotonic() - self.started,
        }

    def _method_health(self, params: dict) -> dict:
        """Same ok/degraded/failed semantics (and exit code) the CLI
        reports: the verdict of the last analysis, or of the daemon's own
        ledger when nothing has been analyzed yet."""
        health = self._last["health"] if self._last is not None else "ok"
        if health == "ok" and self.firewall.incidents:
            # crashed requests since the last clean analysis degrade the
            # daemon even though that analysis itself was fine
            health = "degraded"
        return {
            "health": health,
            "code": EXIT_INCIDENT if health == "failed" else 0,
            "last": dict(self._last) if self._last is not None else None,
            "incidents": len(self.firewall.incidents),
        }

    def _method_shutdown(self, params: dict) -> dict:
        self._shutdown.set()
        return {"ok": True, "requests_served": self.requests_served}


# -- transports -------------------------------------------------------------


def serve_stdio(service: AnalysisService, stdin=None, stdout=None) -> int:
    """Serve the line protocol over stdio until EOF or ``shutdown``."""
    import sys

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        if not line.strip():
            continue
        response = _serve_line(service, line)
        stdout.write(encode_line(response))
        stdout.flush()
        if service.shutting_down:
            break
    service.stop()
    return 0


def _serve_line(service: AnalysisService, line: str) -> dict:
    try:
        request = decode_request(line)
    except ProtocolError as exc:
        return error_response(
            exc.request_id, exc.code, str(exc), trace_id=exc.trace_id
        )
    return service.queue.call(request)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                raw = self.rfile.readline()
            except (OSError, ValueError):
                return
            if not raw:
                return
            line = raw.decode("utf-8", "replace")
            if not line.strip():
                continue
            response = _serve_line(service, line)
            try:
                self.wfile.write(encode_line(response).encode("utf-8"))
                self.wfile.flush()
            except (OSError, ValueError):
                return
            if service.shutting_down:
                self.server.begin_shutdown()  # type: ignore[attr-defined]
                return


class ServiceServer(socketserver.ThreadingTCPServer):
    """TCP transport: threaded connections, one shared FIFO queue."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: AnalysisService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.service = service
        self._shutdown_started = False
        self._shutdown_lock = threading.Lock()

    @property
    def address(self) -> "tuple[str, int]":
        host, port = self.server_address[:2]
        return host, port

    def begin_shutdown(self) -> None:
        """Idempotent async shutdown (callable from handler threads)."""
        with self._shutdown_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self) -> int:
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.service.stop()
            self.server_close()
        return 0


def serve_tcp(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Bind (port 0 = ephemeral) and return the server; the caller runs
    :meth:`ServiceServer.serve_until_shutdown` (or drives it in a thread)."""
    return ServiceServer(service, host=host, port=port)
