"""Client for a running analysis daemon (TCP transport).

Small by design: connect, send request lines, read response lines. Used
by ``repro client``, the CI smoke job, and the service tests; any
language that can write a JSON line to a socket can do the same.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.service.protocol import DEFAULT_TENANT, Request, encode_line, is_error


class ServiceConnectionError(ConnectionError):
    """Could not reach (or lost) the daemon."""


class ServiceClient:
    """One connection to a daemon; request ids are assigned per client."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: Optional[float] = 30.0
    ):
        self.host = host
        self.port = port
        self._next_id = 0
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceConnectionError(
                f"cannot connect to daemon at {host}:{port}: {exc}"
            ) from exc
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def call(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        tenant: str = DEFAULT_TENANT,
        priority: str = "normal",
    ) -> dict:
        """Send one request, wait for its response dict (result or error)."""
        self._next_id += 1
        request = Request(
            id=self._next_id,
            method=method,
            params=params or {},
            tenant=tenant,
            priority=priority,
        )
        try:
            self._sock.sendall(encode_line(request.to_json()).encode("utf-8"))
            line = self._reader.readline()
        except OSError as exc:
            raise ServiceConnectionError(f"daemon connection lost: {exc}") from exc
        if not line:
            raise ServiceConnectionError("daemon closed the connection")
        import json

        response = json.loads(line)
        if not isinstance(response, dict):
            raise ServiceConnectionError(f"malformed response: {line!r}")
        return response

    def result(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        tenant: str = DEFAULT_TENANT,
        priority: str = "normal",
    ) -> Any:
        """Like :meth:`call` but unwraps ``result`` and raises on ``error``."""
        response = self.call(method, params, tenant=tenant, priority=priority)
        if is_error(response):
            error = response["error"]
            raise ServiceRequestError(error.get("code"), error.get("message"), error)
        return response.get("result")

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServiceRequestError(Exception):
    """The daemon answered with a protocol ``error`` object."""

    def __init__(self, code: Optional[int], message: Optional[str], error: dict):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.error = error


__all__ = [
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceRequestError",
]
