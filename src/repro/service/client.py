"""Client for a running analysis daemon (TCP transport).

Small by design: connect, send request lines, read response lines. Used
by ``repro client``, the CI smoke job, and the service tests; any
language that can write a JSON line to a socket can do the same.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from repro.service.protocol import DEFAULT_TENANT, Request, encode_line, is_error

#: default window for establishing the TCP connection; a daemon that is
#: still binding its port is retried with deterministic exponential
#: backoff (0.05, 0.1, 0.2, ... seconds, no jitter) until it elapses
DEFAULT_CONNECT_TIMEOUT = 5.0

CONNECT_BACKOFF_BASE = 0.05


class ServiceConnectionError(ConnectionError):
    """Could not reach (or lost) the daemon."""


class ServiceClient:
    """One connection to a daemon; request ids are assigned per client.

    ``connect_timeout`` bounds the whole connection-establishment phase:
    a refused connection (daemon spawned but not yet listening) is
    retried with deterministic exponential backoff until the deadline,
    so spawning a daemon and connecting to it does not race. ``timeout``
    is the per-request socket timeout once connected.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = 30.0,
        connect_timeout: Optional[float] = DEFAULT_CONNECT_TIMEOUT,
        _sleep=time.sleep,
        _clock=time.monotonic,
    ):
        self.host = host
        self.port = port
        self._next_id = 0
        self.connect_attempts = 0
        budget = connect_timeout if connect_timeout is not None else 0.0
        deadline = _clock() + budget
        attempt = 0
        while True:
            self.connect_attempts = attempt + 1
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as exc:
                delay = CONNECT_BACKOFF_BASE * (2 ** attempt)
                if _clock() + delay > deadline:
                    raise ServiceConnectionError(
                        f"cannot connect to daemon at {host}:{port} "
                        f"after {self.connect_attempts} attempt(s): {exc}"
                    ) from exc
                _sleep(delay)
                attempt += 1
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def call(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        tenant: str = DEFAULT_TENANT,
        priority: str = "normal",
    ) -> dict:
        """Send one request, wait for its response dict (result or error)."""
        self._next_id += 1
        request = Request(
            id=self._next_id,
            method=method,
            params=params or {},
            tenant=tenant,
            priority=priority,
        )
        try:
            self._sock.sendall(encode_line(request.to_json()).encode("utf-8"))
            line = self._reader.readline()
        except OSError as exc:
            raise ServiceConnectionError(f"daemon connection lost: {exc}") from exc
        if not line:
            raise ServiceConnectionError("daemon closed the connection")
        import json

        response = json.loads(line)
        if not isinstance(response, dict):
            raise ServiceConnectionError(f"malformed response: {line!r}")
        return response

    def result(
        self,
        method: str,
        params: Optional[Dict[str, Any]] = None,
        tenant: str = DEFAULT_TENANT,
        priority: str = "normal",
    ) -> Any:
        """Like :meth:`call` but unwraps ``result`` and raises on ``error``."""
        response = self.call(method, params, tenant=tenant, priority=priority)
        if is_error(response):
            error = response["error"]
            raise ServiceRequestError(error.get("code"), error.get("message"), error)
        return response.get("result")

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServiceRequestError(Exception):
    """The daemon answered with a protocol ``error`` object."""

    def __init__(self, code: Optional[int], message: Optional[str], error: dict):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.error = error


__all__ = [
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceRequestError",
]
