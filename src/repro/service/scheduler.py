"""Weighted-fair request scheduler with a worker pool.

The FIFO queue of PR 5 serialized *everything* behind one worker; this
scheduler keeps what made that design sound — per-tenant analysis state
stays single-writer — while letting independent tenants run
concurrently and none of them starve:

* **per-tenant sub-queues**: each tenant owns one FIFO deque per
  priority class, so one flooding tenant queues behind itself, not in
  front of everyone else;
* **strict priority classes** (``high`` > ``normal`` > ``low``): a class
  is drained before the next is touched;
* **deficit round-robin** within a class: each visit tops a tenant's
  deficit counter up by its weight (only when it cannot afford a
  request), serves while the deficit covers a request (requests cost
  1.0), and rotates — a weight-2 tenant gets two consecutive turns per
  round, a weight-0.5 tenant one turn every other round, and a
  low-traffic tenant's queue wait is bounded by one round regardless of
  any other tenant's backlog;
* **per-tenant in-flight serialization**: a tenant with a request
  running is skipped by the ring, so its resident
  :class:`~repro.service.project.ProjectState`, fingerprints and health
  are only ever touched by one worker at a time — concurrency lives
  *across* tenants, determinism *within* one;
* **deadline machinery unchanged**: deadlines are submit-relative and a
  request that waits out its deadline is answered ``DEADLINE_EXCEEDED``
  at dispatch, without running;
* **admission hook**: an optional ``admit`` callable runs under the
  scheduler lock at submit time (so queue-depth decisions are exact) and
  may return a complete error response to shed the request;
* **drain-on-stop**: :meth:`stop` answers every still-queued request
  with ``SHUTTING_DOWN`` *immediately* — in-flight requests complete,
  queued ones are not run — so shutdown latency is one request, not one
  queue.

Fault sites: ``service-scheduler`` fires per dispatched request (via the
daemon's handler) and ``service-admission`` inside the daemon's
admission hook; see :mod:`repro.resilience.faultinject`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.obs import NULL, Collector
from repro.service.protocol import (
    DEADLINE_EXCEEDED,
    PRIORITIES,
    SHUTTING_DOWN,
    Request,
    error_response,
)


@dataclass
class _Pending:
    request: Request
    future: "Future[dict]"
    enqueued: float  # monotonic submit time

    def expired(self, now: float) -> bool:
        deadline = self.request.deadline_seconds
        return deadline is not None and (now - self.enqueued) > deadline


class _Lane:
    """One tenant's scheduling state: a FIFO per priority class plus the
    deficit counters the round-robin spends."""

    __slots__ = ("tenant", "weight", "queues", "deficits")

    def __init__(self, tenant: str, weight: float = 1.0):
        self.tenant = tenant
        self.weight = max(1e-3, float(weight))
        self.queues: Dict[str, Deque[_Pending]] = {p: deque() for p in PRIORITIES}
        self.deficits: Dict[str, float] = {p: 0.0 for p in PRIORITIES}

    def depth(self) -> int:
        return sum(len(q) for q in self.queues.values())


class FairScheduler:
    """Worker pool + weighted-fair queues; ``handler(Request) -> dict``.

    ``admit(request, global_depth, tenant_depth)`` (optional) runs under
    the scheduler lock and returns ``None`` to admit or a complete
    response dict to reject; ``on_reject(request, response)`` (optional)
    runs outside the lock for every request answered without being
    served (sheds, dispatch-time deadline expiry, shutdown flushes) so
    the daemon can journal them.
    """

    def __init__(
        self,
        handler: Callable[[Request], dict],
        workers: int = 1,
        collector: Optional[Collector] = None,
        admit: Optional[Callable[[Request, int, int], Optional[dict]]] = None,
        on_reject: Optional[Callable[[Request, dict], None]] = None,
        weight_of: Optional[Callable[[str], float]] = None,
    ):
        self.handler = handler
        self.workers = max(1, int(workers))
        self.collector = collector or NULL
        self.admit = admit
        self.on_reject = on_reject
        self.weight_of = weight_of
        self._cond = threading.Condition()
        self._lanes: Dict[str, _Lane] = {}
        #: per-priority rotation order: tenant ids with queued work
        self._rings: Dict[str, Deque[str]] = {p: deque() for p in PRIORITIES}
        self._busy: set = set()  # tenants with a request in flight
        self._depth = 0  # queued (not in-flight) requests
        self._threads: List[threading.Thread] = []
        self._stopping = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0) -> None:
        """Drain-and-stop with the hardened semantics: requests already
        running complete; requests still queued are answered with a
        structured ``SHUTTING_DOWN`` error immediately (they are *not*
        run); new submits are refused."""
        with self._cond:
            self._stopping = True
            flushed = self._flush_locked()
            self._cond.notify_all()
        for pending in flushed:
            self._resolve_unserved(
                pending.request,
                error_response(
                    pending.request.id,
                    SHUTTING_DOWN,
                    "daemon is shutting down",
                    trace_id=pending.request.trace_id,
                ),
                pending.future,
            )
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def _flush_locked(self) -> List[_Pending]:
        flushed: List[_Pending] = []
        for lane in self._lanes.values():
            for queue in lane.queues.values():
                flushed.extend(queue)
                queue.clear()
            lane.deficits = {p: 0.0 for p in PRIORITIES}
        for ring in self._rings.values():
            ring.clear()
        self._depth = 0
        return flushed

    # -- submission ---------------------------------------------------------

    def submit(self, request: Request) -> "Future[dict]":
        """Enqueue one request; the returned future resolves to its
        response dict (futures never carry exceptions — a handler crash
        is already a structured error response by the time it lands)."""
        future: "Future[dict]" = Future()
        rejection: Optional[dict] = None
        with self._cond:
            if self._stopping:
                rejection = error_response(
                    request.id,
                    SHUTTING_DOWN,
                    "daemon is shutting down",
                    trace_id=request.trace_id,
                )
            else:
                lane = self._lanes.get(request.tenant)
                tenant_depth = lane.depth() if lane is not None else 0
                if self.admit is not None:
                    # under the lock on purpose: depth limits must see the
                    # exact queue state, or two bursts race past the bound
                    rejection = self.admit(request, self._depth, tenant_depth)
                if rejection is None:
                    if lane is None:
                        lane = self._make_lane(request.tenant)
                    priority = (
                        request.priority if request.priority in PRIORITIES else "normal"
                    )
                    lane.queues[priority].append(
                        _Pending(
                            request=request,
                            future=future,
                            enqueued=time.monotonic(),
                        )
                    )
                    ring = self._rings[priority]
                    if request.tenant not in ring:
                        ring.append(request.tenant)
                    self._depth += 1
                    depth = self._depth
                    self._cond.notify()
        if rejection is not None:
            self._resolve_unserved(request, rejection, future)
            return future
        if self.collector:
            self.collector.gauge("service.queue-depth", depth)
        return future

    def call(self, request: Request, timeout: Optional[float] = None) -> dict:
        """Submit and wait: the synchronous convenience used by transports."""
        return self.submit(request).result(timeout=timeout)

    def _make_lane(self, tenant: str) -> _Lane:
        weight = 1.0
        if self.weight_of is not None:
            try:
                weight = float(self.weight_of(tenant))
            except Exception:
                weight = 1.0
        lane = self._lanes[tenant] = _Lane(tenant, weight=weight)
        return lane

    def set_weight(self, tenant: str, weight: float) -> None:
        with self._cond:
            lane = self._lanes.get(tenant)
            if lane is None:
                lane = self._lanes[tenant] = _Lane(tenant, weight=weight)
            else:
                lane.weight = max(1e-3, float(weight))

    # -- introspection ------------------------------------------------------

    def depths(self) -> Dict[str, int]:
        """Queued requests per tenant (snapshot, for metrics/tenants)."""
        with self._cond:
            return {
                tenant: lane.depth()
                for tenant, lane in self._lanes.items()
                if lane.depth()
            }

    @property
    def depth(self) -> int:
        with self._cond:
            return self._depth

    # -- workers ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                pending = self._next_locked()
                while pending is None:
                    if self._stopping:
                        return
                    self._cond.wait()
                    pending = self._next_locked()
                tenant = pending.request.tenant
                self._busy.add(tenant)
                self._depth -= 1
            try:
                self._dispatch(pending)
            finally:
                with self._cond:
                    self._busy.discard(tenant)
                    # a parked teammate may now be able to take this
                    # tenant's next request (or any request at all)
                    self._cond.notify_all()

    def _dispatch(self, pending: _Pending) -> None:
        request = pending.request
        now = time.monotonic()
        request.queue_wait_seconds = max(0.0, now - pending.enqueued)
        if self.collector:
            self.collector.observe(
                "service.queue.wait_seconds", request.queue_wait_seconds
            )
            self.collector.observe(
                f"tenant.{request.tenant}.queue.wait_seconds",
                request.queue_wait_seconds,
            )
        if pending.expired(now):
            if self.collector:
                self.collector.count("service.deadline-exceeded")
            self._resolve_unserved(
                request,
                error_response(
                    request.id,
                    DEADLINE_EXCEEDED,
                    f"deadline of {request.deadline_seconds}s expired "
                    "while queued",
                    trace_id=request.trace_id,
                ),
                pending.future,
            )
            return
        try:
            response = self.handler(request)
        except BaseException as exc:  # the handler's own firewall failed
            response = error_response(
                request.id,
                SHUTTING_DOWN if self._stopping else -32603,
                f"handler error: {type(exc).__name__}: {exc}",
                trace_id=request.trace_id,
            )
        pending.future.set_result(response)

    def _resolve_unserved(
        self, request: Request, response: dict, future: "Future[dict]"
    ) -> None:
        """Answer a request that was never handed to the handler, then
        let the daemon journal it (outside the scheduler lock)."""
        future.set_result(response)
        if self.on_reject is not None:
            try:
                self.on_reject(request, response)
            except Exception:
                pass  # telemetry must never fail the response

    # -- deficit round-robin -------------------------------------------------

    def _next_locked(self) -> Optional[_Pending]:
        """Pick the next runnable request: strict priority order across
        classes, deficit round-robin across tenants inside a class,
        skipping tenants that are busy or whose deficit cannot yet afford
        a request. Caller holds the lock."""
        for priority in PRIORITIES:
            pending = self._take_locked(priority)
            if pending is not None:
                return pending
        return None

    def _take_locked(self, priority: str) -> Optional[_Pending]:
        ring = self._rings[priority]
        while ring:
            any_eligible = False
            for _ in range(len(ring)):
                if not ring:
                    break
                tenant = ring[0]
                lane = self._lanes[tenant]
                queue = lane.queues[priority]
                if not queue:
                    # stale ring entry (queue emptied by a flush)
                    ring.popleft()
                    lane.deficits[priority] = 0.0
                    continue
                if tenant in self._busy:
                    ring.rotate(-1)
                    continue
                any_eligible = True
                deficit = lane.deficits[priority]
                if deficit < 1.0:
                    deficit += lane.weight
                if deficit >= 1.0:
                    deficit -= 1.0
                    pending = queue.popleft()
                    if not queue:
                        # an emptied lane leaves the ring with its credit
                        # zeroed: deficits never accumulate across idle time
                        ring.popleft()
                        lane.deficits[priority] = 0.0
                    else:
                        lane.deficits[priority] = deficit
                        if deficit < 1.0:
                            ring.rotate(-1)
                        # else: stay at the head — a weight-N tenant gets
                        # N consecutive turns per round
                    return pending
                lane.deficits[priority] = deficit
                ring.rotate(-1)
            if not any_eligible:
                return None
            # every eligible lane is under-deficit (fractional weights):
            # run another accumulation round; bounded by ceil(1/min weight)
        return None
