"""The tenant registry: N resident projects behind one daemon.

Each tenant owns one :class:`~repro.service.project.ProjectState` (plus
the per-tenant request bookkeeping the daemon used to keep globally:
detect fingerprints for the incremental delta, the last detect result
for ``health``, a scheduling weight and served/shed counters). The
``default`` tenant is the project the daemon was started with, so
requests that never mention a tenant behave exactly as before.

Isolation is by construction, not by locking: the scheduler serializes
requests *within* a tenant (one in flight at a time), so a tenant's
``ProjectState``/fingerprints/health are single-writer; the registry's
own map is lock-protected because ``register`` races with dispatch.

What tenants deliberately *share* is the result cache: scope
fingerprints are content-addressed (file bytes → function digests →
scope fingerprint, no paths), so identical code submitted by different
tenants keys the same :class:`~repro.engine.cache.ResultCache` entries
— tenant B warm-hits on code tenant A already analyzed. That sharing is
safe precisely because a fingerprint commits to everything the analysis
reads; see DESIGN §15.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import NULL, Collector
from repro.service.project import ProjectState
from repro.service.protocol import DEFAULT_TENANT, INVALID_PARAMS, ServiceError


@dataclass
class TenantState:
    """One registered tenant: its resident project + request bookkeeping."""

    tenant_id: str
    state: ProjectState
    weight: float = 1.0
    #: scope fingerprints from this tenant's last detect, for the
    #: incremental delta (was daemon-global before multi-tenancy)
    fingerprints: Dict[str, str] = field(default_factory=dict)
    #: last successful detect payload, backing ``health``
    last: Optional[dict] = None
    served: int = 0
    shed: int = 0

    def to_json(self) -> dict:
        return {
            "tenant": self.tenant_id,
            "path": self.state.path,
            "weight": self.weight,
            "generation": self.state.generation,
            "files": len(self.state.files),
            "served": self.served,
            "shed": self.shed,
        }


class TenantRegistry:
    """Tenant id → :class:`TenantState`, with the default tenant resident
    from construction."""

    def __init__(self, path: str, collector: Optional[Collector] = None):
        self.collector = collector or NULL
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}
        default = TenantState(
            tenant_id=DEFAULT_TENANT,
            state=ProjectState(path, collector=self.collector),
        )
        self._tenants[DEFAULT_TENANT] = default

    @property
    def default(self) -> TenantState:
        return self._tenants[DEFAULT_TENANT]

    def get(self, tenant_id: str) -> TenantState:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise ServiceError(
                INVALID_PARAMS,
                f"unknown tenant {tenant_id!r}; register it first "
                "(method 'register')",
            )
        return tenant

    def maybe(self, tenant_id: str) -> Optional[TenantState]:
        with self._lock:
            return self._tenants.get(tenant_id)

    def register(
        self, tenant_id: str, path: str, weight: float = 1.0
    ) -> TenantState:
        """Register (and load) a project under ``tenant_id``.

        Re-registering the same path is a no-op returning the resident
        tenant (weight still updates); a different path replaces the
        resident project. The default tenant cannot be re-pointed — it
        *is* the daemon's project.
        """
        resolved = os.path.abspath(path)
        with self._lock:
            existing = self._tenants.get(tenant_id)
        if tenant_id == DEFAULT_TENANT and (
            existing is None or existing.state.path != resolved
        ):
            raise ServiceError(
                INVALID_PARAMS,
                "tenant 'default' is the daemon's own project and cannot "
                "be re-registered to a different path",
            )
        if existing is not None and existing.state.path == resolved:
            existing.weight = max(1e-3, float(weight))
            return existing
        # load outside the lock: parsing a project can be slow, and a
        # failed load must leave the registry untouched
        state = ProjectState(resolved, collector=self.collector)
        try:
            state.load()
        except Exception as exc:
            raise ServiceError(
                INVALID_PARAMS,
                f"cannot load project for tenant {tenant_id!r} from "
                f"{path!r}: {type(exc).__name__}: {exc}",
            ) from exc
        tenant = TenantState(
            tenant_id=tenant_id, state=state, weight=max(1e-3, float(weight))
        )
        with self._lock:
            self._tenants[tenant_id] = tenant
        return tenant

    def weight_of(self, tenant_id: str) -> float:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        return tenant.weight if tenant is not None else 1.0

    def ids(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def items(self) -> List[TenantState]:
        with self._lock:
            return [self._tenants[key] for key in sorted(self._tenants)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants
