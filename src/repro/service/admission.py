"""Admission control and load shedding for the analysis daemon.

The daemon's first line of overload defense runs at *submit* time,
before a request ever reaches the scheduler's queues. A request that
cannot be served soon is rejected with a structured error (and a
``retry_after`` hint) instead of growing the queue:

* **global queue-depth limit** (``max_queue``): once the scheduler holds
  this many queued requests, new analysis work is ``OVERLOADED``;
* **per-tenant queue-depth limit** (``tenant_max_queue``): one tenant
  cannot occupy the whole queue, regardless of the global bound;
* **per-tenant token-bucket quota** (``quota_rate``/``quota_burst``):
  sustained request rate above the quota is ``QUOTA_EXCEEDED``, with
  ``retry_after`` computed from the bucket's refill rate;
* **degraded-mode shedding**: while the daemon's health is degraded
  (crashed requests on the ledger), low-priority analysis requests are
  shed first so the remaining capacity serves interactive traffic.

Checks run in that order — unknown tenants are rejected even earlier —
and the *deadline always wins*: the daemon answers a request that is
both past-deadline and sheddable with ``DEADLINE_EXCEEDED``, because
that is the truth the caller's timeout logic needs (the shed would be
retried; the deadline would not).

Operational methods (``ping``, ``health``, ``metrics``, ``stats``,
``shutdown``, ...) are **exempt**: an overloaded daemon must remain
observable and stoppable, which is the whole point of shedding.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.service.protocol import OVERLOADED, QUOTA_EXCEEDED, Request

#: methods admission never sheds: the daemon must stay observable,
#: registerable and stoppable under overload
ADMISSION_EXEMPT = frozenset(
    {
        "ping",
        "health",
        "metrics",
        "metrics_text",
        "stats",
        "register",
        "tenants",
        "shutdown",
    }
)


@dataclass
class AdmissionConfig:
    """The overload policy knobs (``None`` disables a check)."""

    max_queue: Optional[int] = None  # global queued-request bound
    tenant_max_queue: Optional[int] = None  # per-tenant queued bound
    quota_rate: Optional[float] = None  # tokens/second per tenant
    quota_burst: Optional[float] = None  # bucket size (default max(rate, 1))

    def burst(self) -> float:
        if self.quota_burst is not None:
            return max(1.0, float(self.quota_burst))
        return max(1.0, float(self.quota_rate or 1.0))


@dataclass
class Rejection:
    """One shed decision: the wire code, a short reason tag (journal
    ``outcome``), the human message, and the retry hint."""

    code: int
    reason: str  # 'overloaded' | 'quota'
    message: str
    retry_after: Optional[float] = None


class TokenBucket:
    """A per-tenant quota bucket: ``rate`` tokens/second, ``burst`` cap.

    The clock is injectable so tests can drain and refill
    deterministically; the daemon uses ``time.monotonic``.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = max(0.0, float(rate))
        self.burst = max(1.0, float(burst))
        self.clock = clock
        self.tokens = self.burst
        self._refilled = clock()

    def take(self) -> Optional[float]:
        """Consume one token; returns ``None`` when admitted, else the
        seconds until the next token exists (the ``retry_after`` hint)."""
        now = self.clock()
        if self.rate > 0:
            self.tokens = min(self.burst, self.tokens + (now - self._refilled) * self.rate)
        self._refilled = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        if self.rate <= 0:
            # a zero-rate quota admits only its initial burst; there is
            # no refill, so the hint is just "much later"
            return 60.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class AdmissionController:
    """Stateful admission policy: quota buckets + a duration EWMA that
    prices the ``retry_after`` hint for depth-based sheds."""

    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        #: exponentially-weighted mean request duration, fed by the
        #: daemon after every served request; prices depth sheds
        self.ewma_seconds = 0.0
        self.sheds = 0

    # -- accounting ---------------------------------------------------------

    def observe_duration(self, seconds: float) -> None:
        with self._lock:
            if self.ewma_seconds == 0.0:
                self.ewma_seconds = seconds
            else:
                self.ewma_seconds += 0.2 * (seconds - self.ewma_seconds)

    def _depth_hint(self, depth: int) -> float:
        return max(0.1, (depth + 1) * self.ewma_seconds)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                rate=float(self.config.quota_rate or 0.0),
                burst=self.config.burst(),
                clock=self.clock,
            )
        return bucket

    # -- the decision --------------------------------------------------------

    def decide(
        self,
        request: Request,
        global_depth: int,
        tenant_depth: int,
        degraded: bool = False,
    ) -> Optional[Rejection]:
        """``None`` admits; a :class:`Rejection` sheds. Depths are the
        scheduler's *queued* counts at submit time (in-flight excluded)."""
        if request.method in ADMISSION_EXEMPT:
            return None
        config = self.config
        if degraded and request.priority == "low":
            self._count_shed()
            return Rejection(
                OVERLOADED,
                "overloaded",
                "daemon health is degraded; low-priority requests are "
                "shed first (retry at normal priority or later)",
                retry_after=self._depth_hint(global_depth),
            )
        if config.max_queue is not None and global_depth >= config.max_queue:
            self._count_shed()
            return Rejection(
                OVERLOADED,
                "overloaded",
                f"queue is full ({global_depth}/{config.max_queue} requests queued)",
                retry_after=self._depth_hint(global_depth),
            )
        if (
            config.tenant_max_queue is not None
            and tenant_depth >= config.tenant_max_queue
        ):
            self._count_shed()
            return Rejection(
                OVERLOADED,
                "overloaded",
                f"tenant {request.tenant!r} queue is full "
                f"({tenant_depth}/{config.tenant_max_queue} requests queued)",
                retry_after=self._depth_hint(tenant_depth),
            )
        if config.quota_rate is not None:
            with self._lock:
                retry_after = self._bucket(request.tenant).take()
            if retry_after is not None:
                self._count_shed()
                return Rejection(
                    QUOTA_EXCEEDED,
                    "quota",
                    f"tenant {request.tenant!r} exceeded its quota of "
                    f"{self.config.quota_rate:g} requests/second",
                    retry_after=retry_after,
                )
        return None

    def _count_shed(self) -> None:
        with self._lock:
            self.sheds += 1
