"""repro.service — the long-lived, multi-tenant analysis daemon.

The one-shot pipeline re-parses, re-builds SSA and re-solves from
scratch on every invocation; this package keeps projects *resident* and
serves detect/fix/stats requests over a line-delimited JSON protocol,
re-analyzing only what an edit invalidated. One daemon holds N tenants
(registered projects) behind a pool of analysis workers with weighted
fair scheduling, admission control and load shedding:

* :mod:`repro.service.project` — per-file AST cache + function-digest
  diffing (re-parse only changed files);
* :mod:`repro.service.tenants` — the tenant registry: N resident
  projects keyed by tenant id (``default`` = the daemon's own project);
* :mod:`repro.service.daemon` — the :class:`AnalysisService` core, the
  request methods, and the stdio/TCP transports;
* :mod:`repro.service.scheduler` — the worker pool behind per-tenant
  deficit-round-robin queues with priority classes and per-request
  deadlines;
* :mod:`repro.service.admission` — queue-depth limits, per-tenant
  token-bucket quotas and degraded-mode shedding (structured
  ``OVERLOADED``/``QUOTA_EXCEEDED`` with ``retry_after``);
* :mod:`repro.service.queue` — the PR-5 FIFO surface, now an alias for
  the scheduler pinned to one worker;
* :mod:`repro.service.protocol` — the wire protocol;
* :mod:`repro.service.client` — the TCP client (``repro client``);
* :mod:`repro.service.watch` — polling watcher + the ``repro watch``
  loop (re-run on change, print deltas).

Incremental invalidation itself lives with the engine
(:mod:`repro.engine.invalidate`): the service diffs scope fingerprints,
the engine's content-addressed cache guarantees a reused fingerprint
would reproduce the cached result byte-for-byte — which is also why the
cache is safely *shared across tenants*.
"""

from repro.service.admission import (
    ADMISSION_EXEMPT,
    AdmissionConfig,
    AdmissionController,
    Rejection,
    TokenBucket,
)
from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceRequestError,
)
from repro.service.daemon import (
    AnalysisService,
    RequestContext,
    ServiceServer,
    exit_code_for,
    serve_stdio,
    serve_tcp,
)
from repro.service.project import ProjectState, RefreshDelta, project_source_paths
from repro.service.protocol import (
    DEFAULT_TENANT,
    METHODS,
    OVERLOADED,
    PRIORITIES,
    PROTOCOL_VERSION,
    QUOTA_EXCEEDED,
    Request,
    ServiceError,
    decode_request,
    encode_line,
)
from repro.service.queue import RequestQueue
from repro.service.scheduler import FairScheduler
from repro.service.tenants import TenantRegistry, TenantState
from repro.service.watch import Watcher, run_watch

__all__ = [
    "ADMISSION_EXEMPT",
    "AdmissionConfig",
    "AdmissionController",
    "AnalysisService",
    "DEFAULT_TENANT",
    "FairScheduler",
    "METHODS",
    "OVERLOADED",
    "PRIORITIES",
    "PROTOCOL_VERSION",
    "ProjectState",
    "QUOTA_EXCEEDED",
    "RefreshDelta",
    "Rejection",
    "Request",
    "RequestContext",
    "RequestQueue",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceRequestError",
    "ServiceServer",
    "TenantRegistry",
    "TenantState",
    "TokenBucket",
    "Watcher",
    "decode_request",
    "encode_line",
    "exit_code_for",
    "project_source_paths",
    "run_watch",
    "serve_stdio",
    "serve_tcp",
]
