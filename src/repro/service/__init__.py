"""repro.service — the long-lived analysis daemon.

The one-shot pipeline re-parses, re-builds SSA and re-solves from
scratch on every invocation; this package keeps a project *resident* and
serves detect/fix/stats requests over a line-delimited JSON protocol,
re-analyzing only what an edit invalidated:

* :mod:`repro.service.project` — per-file AST cache + function-digest
  diffing (re-parse only changed files);
* :mod:`repro.service.daemon` — the :class:`AnalysisService` core, the
  request methods, and the stdio/TCP transports;
* :mod:`repro.service.queue` — FIFO request queue with per-request
  deadlines, one analysis worker;
* :mod:`repro.service.protocol` — the wire protocol;
* :mod:`repro.service.client` — the TCP client (``repro client``);
* :mod:`repro.service.watch` — polling watcher + the ``repro watch``
  loop (re-run on change, print deltas).

Incremental invalidation itself lives with the engine
(:mod:`repro.engine.invalidate`): the service diffs scope fingerprints,
the engine's content-addressed cache guarantees a reused fingerprint
would reproduce the cached result byte-for-byte.
"""

from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceRequestError,
)
from repro.service.daemon import (
    AnalysisService,
    ServiceError,
    ServiceServer,
    exit_code_for,
    serve_stdio,
    serve_tcp,
)
from repro.service.project import ProjectState, RefreshDelta, project_source_paths
from repro.service.protocol import (
    METHODS,
    PROTOCOL_VERSION,
    Request,
    decode_request,
    encode_line,
)
from repro.service.queue import RequestQueue
from repro.service.watch import Watcher, run_watch

__all__ = [
    "AnalysisService",
    "METHODS",
    "PROTOCOL_VERSION",
    "ProjectState",
    "RefreshDelta",
    "Request",
    "RequestQueue",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceRequestError",
    "ServiceServer",
    "Watcher",
    "decode_request",
    "encode_line",
    "exit_code_for",
    "project_source_paths",
    "run_watch",
    "serve_stdio",
    "serve_tcp",
]
