"""Setuptools entry point.

Kept alongside pyproject.toml because the offline toolchain lacks the
``wheel`` package, which pip's PEP 660 editable-install path requires;
``python setup.py develop`` installs the package without it.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
