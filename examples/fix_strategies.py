#!/usr/bin/env python3
"""All three GFix strategies on the paper's figure examples.

* Figure 1 (Docker)      -> Strategy I:   increase buffer size (1 line)
* Figure 3 (etcd)        -> Strategy II:  defer the unblocking op (4 lines)
* Figure 4 (Go-Ethereum) -> Strategy III: add a stop channel (~8 lines)

For each: detect, patch, show the diff, and stress-test original vs patched.

Run:  python examples/fix_strategies.py
"""

from repro import Project
from repro.corpus.snippets import ALL_SNIPPETS


def demonstrate(snippet) -> None:
    banner = f"== {snippet.figure}: {snippet.name} =="
    print(banner)
    print(snippet.description)
    print()

    project = Project.from_source(snippet.source, snippet.name + ".go")
    entry = "main" if "main" in project.program.functions else snippet.entry

    bugs = project.detect().bmoc.bmoc_channel_bugs()
    blocked = bugs[0].blocked_ops[0]
    print(f"GCatch: {blocked} can block forever")

    fix = project.fix(bugs[0])
    print(f"GFix:   Strategy '{fix.strategy}', {fix.patch.changed_lines()} line(s) changed")
    print()
    print(fix.patch.unified_diff(snippet.name + ".go"))

    patched = project.apply_fix(fix)
    original_leaks = sum(
        r.blocked_forever for r in project.stress(entry=entry, seeds=20, max_steps=20000)
    )
    patched_leaks = sum(
        r.blocked_forever for r in patched.stress(entry=entry, seeds=20, max_steps=20000)
    )
    print(f"\nvalidation: original leaks on {original_leaks}/20 schedules, "
          f"patched on {patched_leaks}/20")
    assert patched_leaks == 0
    print()


def main() -> None:
    for snippet in ALL_SNIPPETS:
        demonstrate(snippet)
    print("all three strategies reproduced the paper's patches.")


if __name__ == "__main__":
    main()
