#!/usr/bin/env python3
"""Quickstart: detect and fix the paper's Figure 1 Docker bug.

This walks the full GCatch + GFix pipeline (the paper's Figure 2) on the
previously-unknown Docker bug the paper opens with:

1. load the MiniGo program;
2. GCatch finds the child goroutine's send that can block forever;
3. GFix patches it by bumping the channel buffer from 0 to 1 (Strategy I);
4. the runtime validates: the original leaks a goroutine on some schedules,
   the patched version never does.

Run:  python examples/quickstart.py
"""

from repro import Project
from repro.corpus.snippets import FIGURE1


def main() -> None:
    print("== Figure 1: the Docker Exec() bug ==\n")
    print(FIGURE1.source)

    project = Project.from_source(FIGURE1.source, "docker_exec.go")

    # --- GCatch ------------------------------------------------------------
    result = project.detect()
    bugs = result.bmoc.bmoc_channel_bugs()
    print(f"GCatch found {len(bugs)} BMOC bug(s):")
    for bug in bugs:
        print(bug.render())
        print()

    # --- GFix --------------------------------------------------------------
    fix = project.fix(bugs[0])
    print(f"GFix strategy: {fix.strategy} "
          f"({fix.patch.changed_lines()} line(s) changed)\n")
    print(fix.patch.unified_diff("docker_exec.go"))
    print()

    # --- dynamic validation --------------------------------------------------
    patched = project.apply_fix(fix)
    original_leaks = sum(
        r.blocked_forever for r in project.stress(entry="main", seeds=25, max_steps=20000)
    )
    patched_leaks = sum(
        r.blocked_forever for r in patched.stress(entry="main", seeds=25, max_steps=20000)
    )
    print(f"original: goroutine leaked on {original_leaks}/25 schedules")
    print(f"patched:  goroutine leaked on {patched_leaks}/25 schedules")
    assert patched.detect().bmoc.reports == []
    assert patched_leaks == 0
    print("\npatched program is clean: no reports, no leaks.")


if __name__ == "__main__":
    main()
