// Figure 3 of the GCatch/GFix paper (ASPLOS 2021)
// etcd's TestRWDialer(): t.Fatalf() exits the test before the stop send executes, leaving the child blocked. GFix defers the send.
package main

func Dial() (int, int) {
	e := 0
	flip := make(chan struct{}, 1)
	go func() {
		e = 1
		flip <- struct{}{}
	}()
	select {
	case <-flip:
	default:
	}
	return 0, e
}

func Start(stop chan struct{}) {
	<-stop
}

func TestRWDialer(t *testing.T) {
	stop := make(chan struct{})
	go Start(stop)
	conn, err := Dial()
	if err != 0 {
		t.Fatalf("dial failed")
	}
	println("dialed", conn)
	stop <- struct{}{}
}
