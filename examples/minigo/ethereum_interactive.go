// Figure 4 of the GCatch/GFix paper (ASPLOS 2021)
// Go-Ethereum's Interactive(): the child keeps sending lines in a loop; once the parent returns via abort, the child blocks at the next send. GFix adds a stop channel closed via defer.
package main

func Input() (string, int) {
	return "line", 0
}

func Interactive(abort chan struct{}) {
	scheduler := make(chan string)
	go func() {
		for {
			line, err := Input()
			if err != 0 {
				close(scheduler)
				return
			}
			scheduler <- line
		}
	}()
	for {
		select {
		case <-abort:
			return
		case _, ok := <-scheduler:
			if !ok {
				return
			}
		}
	}
}

func main() {
	abort := make(chan struct{})
	close(abort)
	Interactive(abort)
}
