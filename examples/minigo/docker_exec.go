// Figure 1 of the GCatch/GFix paper (ASPLOS 2021)
// Docker's Exec(): the child sends its error on an unbuffered channel; if the parent takes the ctx.Done() case, the child blocks forever. GFix bumps the buffer size to one.
package main

func StdCopy() int {
	return 0
}

func Exec(ctx context.Context) int {
	outDone := make(chan int)
	go func() {
		err := StdCopy()
		outDone <- err
	}()
	select {
	case err := <-outDone:
		if err != 0 {
			return err
		}
	case <-ctx.Done():
		return 1
	}
	return 0
}

func main() {
	ctx, cancel := context.WithCancel()
	cancel()
	r := Exec(ctx)
	println("exec result", r)
}
