#!/usr/bin/env python3
"""Regenerate the paper's Table 1 over the 21-application corpus.

Runs GCatch (the BMOC detector plus the five traditional checkers) and
GFix on every synthetic application and prints the evaluation table in the
paper's layout, followed by the §5.2/§5.3 summary statistics:

* BMOC false positives by cause (paper: 20 infeasible / 17 alias / 14 CG);
* GFix strategy totals and unfixed-bug reasons (paper: 99+4+21 = 124 fixed,
  9 parent-blocked / 10 side-effects / 1 recv-used / 3 complex unfixed);
* patch readability (paper: 2.67 changed lines on average).

Run:  python examples/full_evaluation.py           (all 21 apps, ~15 s)
      python examples/full_evaluation.py bbolt gRPC   (a subset)
"""

import statistics
import sys
from collections import Counter

from repro.report.experiments import evaluate_corpus


def main() -> None:
    names = sys.argv[1:] or None
    evaluation = evaluate_corpus(names)
    print(evaluation.render())
    print()

    causes = evaluation.fp_causes()
    print("BMOC false positives by cause (paper: infeasible 20, alias 17, call-graph 14):")
    for cause, count in sorted(causes.items()):
        print(f"  {cause}: {count}")
    print()

    fixes = evaluation.fix_totals()
    print(f"GFix: Strategy I={fixes['buffer']}  II={fixes['defer']}  III={fixes['stop']}  "
          f"total={sum(fixes.values())} (paper: 99/4/21 = 124)")

    reasons = Counter()
    changed = []
    for app_eval in evaluation.evaluations:
        for fix in app_eval.fixes:
            if fix.fixed:
                changed.append(fix.patch.changed_lines())
            else:
                reasons[fix.reason] += 1
    if changed:
        print(f"average changed lines per patch: {statistics.mean(changed):.2f} (paper: 2.67)")
    print("unfixed bugs by reason (paper: 9 parent / 10 side-effects / 1 recv-used / 3 complex):")
    for reason, count in reasons.most_common():
        print(f"  {reason}: {count}")


if __name__ == "__main__":
    main()
