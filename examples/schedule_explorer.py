#!/usr/bin/env python3
"""Use the runtime substrate directly: explore schedules of a racy program.

The interpreter's seeded nondeterministic scheduler is the reproduction's
testbed — the same role as the paper's unit-test-plus-random-sleep
validation (§5.1). This example writes a small producer/consumer program
with a schedule-dependent leak and maps out which seeds trigger it, then
switches to the systematic explorer: instead of sampling schedules it
*enumerates* them (pruning commuting orders), proves how many distinct
outcomes exist, and replays a leaking schedule deterministically from its
recorded choice trace. Finally the detector flags the same line statically.

Run:  python examples/schedule_explorer.py
"""

from repro import Project

SOURCE = """package main

func fanOut(n int) int {
	results := make(chan int)
	quit := make(chan struct{})
	go func() {
		total := 0
		for i := 0; i < n; i++ {
			total = total + i
		}
		results <- total
	}()
	go func() {
		close(quit)
	}()
	select {
	case v := <-results:
		return v
	case <-quit:
		return -1
	}
}

func main() {
	v := fanOut(3)
	println("fanOut:", v)
}
"""


def main() -> None:
    project = Project.from_source(SOURCE, "fanout.go")

    print("exploring 40 schedules of fanOut(3)...\n")
    leaky, clean = [], []
    for outcome in project.stress(entry="main", seeds=40, max_steps=20000):
        (leaky if outcome.blocked_forever else clean).append(outcome)

    print(f"clean schedules: {len(clean)}   leaking schedules: {len(leaky)}")
    if leaky:
        sample = leaky[0]
        leak = sample.leaked[0]
        print(f"example leak (seed {sample.seed}): goroutine {leak.gid} in "
              f"{leak.function} parked forever at a {leak.blocked_kind} on line "
              f"{leak.blocked_line}")

    print("\nexhaustive mode: enumerating every schedule (modulo commutation)...")
    exploration = project.explore(entry="main")
    print(exploration.render())
    status = "a PROOF of the outcome set" if exploration.complete else "bounded"
    print(f"this search is {status}: random sampling above was only evidence.")
    if exploration.leaking():
        witness = exploration.leaking()[0]
        replayed = project.replay(witness.choice_trace)
        print(f"replaying the {len(witness.choice_trace)}-choice leaking trace: "
              f"{'same leak reproduced' if replayed.blocked_forever else 'DIVERGED'}")

    print("\nGCatch on the same program:")
    for bug in project.detect().bmoc.bmoc_channel_bugs():
        for op in bug.blocked_ops:
            print(f"  static report: {op}")
        dynamic_lines = {leak.blocked_line for r in leaky for leak in r.leaked}
        static_lines = set(bug.lines)
        print(f"  dynamic blocked lines {sorted(dynamic_lines)} vs "
              f"static {sorted(static_lines)}")
        assert static_lines & dynamic_lines
    print("\nthe detector's witness line matches what actually blocks.")


if __name__ == "__main__":
    main()
