#!/usr/bin/env python3
"""The §6 extension: detecting non-blocking misuse-of-channel bugs.

The paper sketches extending GCatch beyond blocking bugs: a send whose
order variable can exceed a close's on the same channel panics. This
example runs the implemented extension on a send/close race and a
double-close race, and confirms both against the runtime (which reproduces
the actual Go panics).

Run:  python examples/nonblocking_bugs.py
"""

from repro import Project
from repro.detector.nonblocking import detect_nonblocking

SEND_CLOSE_RACE = """package main

func producer(ch chan int) {
	ch <- 1
}

func main() {
	ch := make(chan int, 1)
	go producer(ch)
	close(ch)
}
"""

DOUBLE_CLOSE_RACE = """package main

func shutdown(done chan struct{}) {
	close(done)
}

func main() {
	done := make(chan struct{})
	go shutdown(done)
	close(done)
}
"""


def demonstrate(title: str, source: str) -> None:
    print(f"== {title} ==")
    project = Project.from_source(source, "nb.go")
    result = detect_nonblocking(project.program)
    for report in result.reports:
        print(f"static:  [{report.category}] {report.description}")
    panics = [r for r in project.stress(entry="main", seeds=30, max_steps=5000) if r.panicked]
    print(f"dynamic: panicked on {len(panics)}/30 schedules "
          f"({panics[0].panic_message if panics else 'never'})")
    assert result.reports and panics
    print()


def main() -> None:
    demonstrate("send on closed channel (race)", SEND_CLOSE_RACE)
    demonstrate("double close (race)", DOUBLE_CLOSE_RACE)
    print("both §6 extension patterns detected and confirmed at runtime.")


if __name__ == "__main__":
    main()
