#!/usr/bin/env python3
"""Compare GCatch against the paper's baselines (§7) on Figure 1.

* vet/staticcheck-style static suites: pattern matchers that cover very
  specific shapes — they see nothing wrong with Figure 1 (paper: 0/149
  BMOC bugs detected);
* Go's built-in dynamic deadlock detector: fires only when *all*
  goroutines are asleep, so the leaked child of Figure 1 — main keeps
  running — is invisible to it;
* GCatch: finds the bug statically with a witness schedule, and GFix's
  patch passes the automated validation framework.

Run:  python examples/baseline_comparison.py
"""

from repro import Project
from repro.corpus.snippets import FIGURE1
from repro.detector.baselines import run_dynamic_deadlock_detector, run_static_suites
from repro.fixer.validate import validate_patch


def main() -> None:
    project = Project.from_source(FIGURE1.source, "docker_exec.go")

    print("== baseline 1: vet/staticcheck-style suites ==")
    suites = run_static_suites(project.program)
    print(f"reports: {len(suites.reports)} "
          "(the suites' patterns do not cover misuse of channels)\n")

    print("== baseline 2: Go's runtime deadlock detector ==")
    dynamic = run_dynamic_deadlock_detector(project.program, entry="main", seeds=20)
    print(f"schedules: {dynamic.schedules}  global deadlocks flagged: "
          f"{dynamic.global_deadlocks}  leaked-child schedules missed: "
          f"{dynamic.partial_deadlocks_missed}\n")

    print("== GCatch + GFix ==")
    result = project.detect()
    bug = result.bmoc.bmoc_channel_bugs()[0]
    print(bug.render())
    fix = project.fix(bug)
    print(f"\nGFix: strategy {fix.strategy}, {fix.patch.changed_lines()} line changed")
    validation = validate_patch(FIGURE1.source, fix, entry="main", seeds=20)
    print(validation.render())

    assert not suites.reports
    assert dynamic.global_deadlocks == 0 and dynamic.partial_deadlocks_missed > 0
    assert validation.correct
    print("\nonly GCatch sees the bug; only GFix's patch survives validation.")


if __name__ == "__main__":
    main()
