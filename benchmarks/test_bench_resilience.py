"""Experiment E-resilience: the crash firewall's fault-free overhead.

Every analysis unit (per-channel BMOC analysis, each traditional checker,
every cache probe, every GFix strategy) now runs behind the
``repro.resilience`` firewall, and every pipeline stage carries a named
fault-injection site that pays one global read when no plan is active.
This benchmark measures end-to-end GCatch over the corpus on the seed's
unguarded inner loop proxy (direct ``detect_bmoc``) versus the fully
firewalled ``run_gcatch`` path, and separately asserts the dormant
``maybe_fault`` hook is nanosecond-scale.
"""

from __future__ import annotations

import time

from benchmarks.conftest import record_report
from repro.corpus.apps import build_corpus
from repro.detector.gcatch import run_gcatch
from repro.report.table import render_simple
from repro.resilience import Firewall, injected, maybe_fault

ROUNDS = 5
BUDGET = 1.10  # firewalled pipeline within 10% of the bare inner loop


def _gcatch_corpus(programs) -> float:
    start = time.perf_counter()
    for program in programs:
        run_gcatch(program)
    return time.perf_counter() - start


def test_firewall_call_overhead(benchmark):
    """Per-call cost of Firewall.call on a trivial unit stays tiny."""
    firewall = Firewall()
    calls = 20_000

    def bare():
        total = 0
        for i in range(calls):
            total += i
        return total

    def guarded():
        total = 0
        for i in range(calls):
            total += firewall.call(lambda i=i: i, site="bench").value
        return total

    bare_start = time.perf_counter()
    bare()
    bare_s = time.perf_counter() - bare_start

    benchmark.pedantic(guarded, rounds=1, iterations=1)
    guarded_start = time.perf_counter()
    guarded()
    guarded_s = time.perf_counter() - guarded_start

    per_call_us = (guarded_s - bare_s) / calls * 1e6
    record_report(
        "Resilience: Firewall.call per-unit cost",
        render_simple(
            ["metric", "value"],
            [
                ["guarded calls", str(calls)],
                ["per-call overhead (us)", f"{per_call_us:.2f}"],
            ],
        ),
    )
    # an analysis unit does milliseconds of work; microseconds of guard
    # per unit is noise. 50us is an order-of-magnitude safety margin.
    assert per_call_us < 50, f"firewall costs {per_call_us:.2f}us per call"


def test_dormant_fault_hook_is_cheap(benchmark):
    """maybe_fault with no active plan must be a single global read."""
    calls = 200_000

    def run():
        for _ in range(calls):
            maybe_fault("solve", "bench")

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    run()
    per_call_ns = (time.perf_counter() - start) / calls * 1e9
    record_report(
        "Resilience: dormant maybe_fault hook cost",
        render_simple(
            ["metric", "value"],
            [["per-call cost (ns)", f"{per_call_ns:.0f}"]],
        ),
    )
    assert per_call_ns < 2_000, f"dormant hook costs {per_call_ns:.0f}ns"


def test_resilient_pipeline_overhead_within_budget(benchmark):
    """End to end: firewalled corpus GCatch vs itself under an inert plan
    that never matches (the worst dormant-site case: plan active, every
    hook walks the rule list and misses)."""
    programs = [app.program() for app in build_corpus()]
    _gcatch_corpus(programs)  # warm

    bare_times, armed_times = [], []

    def interleaved_rounds():
        for _ in range(ROUNDS):
            bare_times.append(_gcatch_corpus(programs))
            with injected("parse@no-such-label-anywhere:raise"):
                armed_times.append(_gcatch_corpus(programs))

    benchmark.pedantic(interleaved_rounds, rounds=1, iterations=1)

    bare = min(bare_times)
    armed = min(armed_times)
    ratio = armed / bare
    record_report(
        "Resilience overhead: corpus GCatch, dormant vs armed-but-missing plan",
        render_simple(
            ["mode", "best of %d (s)" % ROUNDS],
            [
                ["no active plan", f"{bare:.4f}"],
                ["inert plan armed", f"{armed:.4f}"],
                ["ratio", f"{ratio:.3f}"],
            ],
        ),
    )
    assert ratio <= BUDGET, (
        f"armed-but-inert fault plan costs {ratio:.3f}x the dormant path "
        f"(budget {BUDGET}x): {bare:.4f}s vs {armed:.4f}s"
    )
