"""Experiment E-diff: static↔dynamic differential study over the 49-bug set.

The paper evaluates GCatch's coverage by hand-classifying 49 known BMOC
bugs (§5.2, 33/49 detected). Here both oracles run mechanically: GCatch's
static verdict is diffed against the systematic schedule explorer's
dynamic verdict on every corpus program. Every detected bug must be
dynamically confirmed by an exhibited leaking schedule, and every
dynamic-only leak must carry the corpus' documented miss reason — zero
unexplained disagreements.
"""

from __future__ import annotations

from benchmarks.conftest import record_report
from repro.diffcheck import AGREE_BUG, DYNAMIC_ONLY, run_diffcheck
from repro.obs import Collector, render_stats


def test_differential_oracle_agreement(benchmark):
    collector = Collector("diffcheck")
    report = benchmark.pedantic(
        run_diffcheck, kwargs={"collector": collector}, rounds=1, iterations=1
    )

    record_report(
        "Static vs dynamic differential (paper: 33/49 detected = 67%)",
        report.render(),
    )
    record_report(
        "Differential sweep per-stage cost (repro.obs)",
        render_stats(collector),
    )
    assert report.trace is collector

    assert len(report.verdicts) == 49
    # every statically detected bug is dynamically confirmed within bound
    static_bugs = [v for v in report.verdicts if v.static_bug]
    assert static_bugs and all(v.classification == AGREE_BUG for v in static_bugs)
    # every dynamic-only leak has a documented miss reason
    assert all(v.explained for v in report.by_class(DYNAMIC_ONLY))
    assert report.unexplained() == []
    # the agreement rate reproduces the paper's coverage figure
    assert abs(report.agreement_rate - 33 / 49) < 1e-9
