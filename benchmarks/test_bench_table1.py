"""Experiment T1: reproduce Table 1 — GCatch detections and GFix fixes over
the 21-application corpus.

Paper: 149 BMOC bugs (147 channel-only + 2 channel+mutex) with 51 FPs,
119 traditional bugs with 67 FPs, and GFix patching 124 bugs (99/4/21 per
strategy). The harness runs the full pipeline and regenerates every cell.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from repro.corpus.specs import TABLE1
from repro.report.experiments import evaluate_corpus


@pytest.fixture(scope="module")
def corpus_evaluation():
    return evaluate_corpus()


def test_table1_full_reproduction(benchmark, corpus_evaluation):
    # benchmark the per-app pipeline on a representative mid-size app
    from repro.corpus.apps import corpus_app
    from repro.report.experiments import evaluate_app

    app = corpus_app("Prometheus")
    benchmark.pedantic(lambda: evaluate_app(app), rounds=3, iterations=1)

    evaluation = corpus_evaluation
    record_report("Table 1 (GCatch + GFix over the 21-app corpus)", evaluation.render())

    # every row matches its Table 1 spec exactly
    for app_eval, spec in zip(evaluation.evaluations, TABLE1):
        assert app_eval.app.name == spec.name
        assert app_eval.bmoc_counts("bmoc-chan") == (spec.bmoc_c.real, spec.bmoc_c.fp), spec.name
        assert app_eval.bmoc_counts("bmoc-mutex") == (spec.bmoc_m.real, spec.bmoc_m.fp), spec.name
        fixes = app_eval.fix_counts()
        assert fixes["buffer"] == spec.fix_s1, spec.name
        assert fixes["defer"] == spec.fix_s2, spec.name
        assert fixes["stop"] == spec.fix_s3, spec.name

    # headline totals
    grand = evaluation.totals()
    assert grand["bmoc_c"] == (147, 46)
    assert grand["bmoc_m"] == (2, 5)
    assert grand["forget_unlock"] == (32, 15)
    assert grand["double_lock"] == (19, 16)
    assert grand["conflict_lock"] == (9, 5)
    assert grand["struct_field"] == (33, 31)
    assert grand["fatal"] == (26, 0)
    fixes = evaluation.fix_totals()
    assert fixes == {"buffer": 99, "defer": 4, "stop": 21}
    assert sum(fixes.values()) == 124
