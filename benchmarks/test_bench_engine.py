"""Experiment E-engine: sharded detection engine scalability + warm cache.

The engine turns per-primitive BMOC analysis into independent shards, so
detection time should drop as ``--jobs`` grows (on machines with the cores
to back it) while the report set stays byte-identical to the serial
detector. A warm content-addressed cache should skip (nearly) all solver
work on an unchanged program.

Parity and the cache skip rate are asserted unconditionally; the >= 2x
speedup at jobs=4 is asserted only when the host actually has >= 4 CPUs —
on smaller containers the measured numbers are still recorded in the
report table.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import record_report
from repro.corpus import templates
from repro.detector.gcatch import run_gcatch
from repro.engine import ResultCache
from repro.obs import Collector
from repro.report.table import render_simple
from repro.ssa.builder import build_program

CHANNEL_FACTORIES = [
    factory
    for group in templates.REAL_BMOCC_BY_STRATEGY.values()
    for factory in group
] + list(templates.BENIGN_TEMPLATES)

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_detect.json")


def build_wide_program():
    """A program wide enough to shard: ~2x each channel template."""
    parts = ["package main"]
    uid = 0
    for _ in range(2):
        for factory in CHANNEL_FACTORIES:
            parts.append(factory(f"W{uid}").code.rstrip())
            uid += 1
    return build_program("\n\n".join(parts) + "\n", "bench_engine.go")


def keys(result):
    return sorted(r.identity() for r in result.all_reports())


def test_engine_speedup_and_warm_cache(benchmark):
    program = build_wide_program()

    def measure():
        rows = {}
        start = time.perf_counter()
        serial = run_gcatch(program)
        rows["serial"] = (time.perf_counter() - start, serial)
        for jobs in (1, 2, 4):
            start = time.perf_counter()
            result = run_gcatch(program, jobs=jobs)
            rows[f"jobs={jobs}"] = (time.perf_counter() - start, result)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    # parity: every engine configuration reproduces the serial report set
    serial_seconds, serial = rows["serial"]
    for label, (_, result) in rows.items():
        assert keys(result) == keys(serial), f"{label} diverged from serial"

    # solver modes: the batched session vs classic per-group solving at
    # jobs=1 — the ISSUE-8 cold-detect trajectory point. Parity is part
    # of the measurement: both modes must reproduce the serial reports.
    mode_seconds = {}
    mode_obs = {}
    for mode in ("batched", "classic"):
        collector = Collector(f"mode-{mode}")
        start = time.perf_counter()
        moded = run_gcatch(program, jobs=1, solver_mode=mode, collector=collector)
        mode_seconds[mode] = time.perf_counter() - start
        mode_obs[mode] = collector
        assert keys(moded) == keys(serial), f"solver_mode={mode} diverged"
    session_reuse = mode_obs["batched"].counters.get("solver.session.reuse", 0)
    intern_hits = mode_obs["batched"].counters.get("solver.intern.hit", 0)
    assert session_reuse > 0 and intern_hits > 0  # the session engaged

    # warm cache: a re-run on an unchanged program skips >= 90% of solver calls
    cache = ResultCache()
    cold_obs, warm_obs = Collector("cold"), Collector("warm")
    start = time.perf_counter()
    run_gcatch(program, jobs=2, cache=cache, collector=cold_obs)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_gcatch(program, jobs=2, cache=cache, collector=warm_obs)
    warm_seconds = time.perf_counter() - start
    cold_calls = cold_obs.counters["solver.calls"]
    warm_calls = warm_obs.counters.get("solver.calls", 0)
    skip_rate = 1.0 - warm_calls / cold_calls
    assert skip_rate >= 0.9
    assert keys(warm) == keys(serial)

    table = [
        [label, f"{seconds:.3f}", f"{serial_seconds / seconds:.2f}x"]
        for label, (seconds, _) in rows.items()
    ]
    table.append(["cache cold (jobs=2)", f"{cold_seconds:.3f}", "-"])
    table.append(["cache warm (jobs=2)", f"{warm_seconds:.3f}", "-"])
    for mode, seconds in mode_seconds.items():
        table.append([f"solver_mode={mode} (jobs=1)", f"{seconds:.3f}", "-"])
    record_report(
        f"Detection engine scalability ({os.cpu_count()} CPUs; "
        f"warm-cache solver skip rate {skip_rate:.0%}; "
        f"session reuse {session_reuse}, intern hits {intern_hits})",
        render_simple(["configuration", "seconds", "speedup vs serial"], table),
    )

    # the detect-side perf trajectory artifact: cold vs warm latency and
    # the warm-cache solver skip rate, one number each per configuration
    artifact = {
        "bench": "detect",
        "cpus": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "jobs_seconds": {
            label.split("=", 1)[1]: round(seconds, 3)
            for label, (seconds, _) in rows.items()
            if label.startswith("jobs=")
        },
        "cache_cold_seconds": round(cold_seconds, 3),
        "cache_warm_seconds": round(warm_seconds, 3),
        "solver_skip_rate": round(skip_rate, 4),
        "solver_calls_cold": cold_calls,
        "solver_calls_warm": warm_calls,
        "solver_mode_seconds": {
            mode: round(seconds, 3) for mode, seconds in mode_seconds.items()
        },
        "session_reuse": session_reuse,
        "session_intern_hits": intern_hits,
    }
    with open(ARTIFACT, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # the >= 2x claim needs real cores behind the pool
    if (os.cpu_count() or 1) >= 4:
        jobs4_seconds = rows["jobs=4"][0]
        assert serial_seconds / jobs4_seconds >= 2.0
