"""Experiment E-disent: the disentangling ablation (§5.2).

Paper: disabling disentangling (analyzing every channel with all primitives
from main()) causes an average >115x slowdown. We measure both modes on a
corpus application and report the slowdown factor; the whole-program mode
also degrades detection because bounded exploration exhausts its budget
before covering the program — the scalability failure of the
model-checking-style baselines (§7).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import record_report
from repro.corpus.apps import corpus_app
from repro.detector.bmoc import detect_bmoc
from repro.report.table import render_simple


@pytest.fixture(scope="module")
def app():
    return corpus_app("bbolt")


def test_disentangling_speedup(benchmark, app):
    program = app.program()

    timing = {}

    def disentangled():
        return detect_bmoc(program, disentangle=True)

    result_fast = benchmark.pedantic(disentangled, rounds=3, iterations=1)

    start = time.perf_counter()
    result_slow = detect_bmoc(program, disentangle=False)
    whole_seconds = time.perf_counter() - start

    start = time.perf_counter()
    detect_bmoc(program, disentangle=True)
    fast_seconds = max(time.perf_counter() - start, 1e-9)

    slowdown = whole_seconds / fast_seconds
    rows = [
        ["disentangled (GCatch)", f"{fast_seconds:.3f}", str(len(result_fast.reports))],
        ["whole-program (ablation)", f"{whole_seconds:.3f}", str(len(result_slow.reports))],
        ["slowdown", f"{slowdown:.1f}x", "(paper: >115x average)"],
    ]
    record_report(
        "Disentangling ablation (§5.2)",
        render_simple(["mode", "seconds", "BMOC reports"], rows),
    )

    # the shape that must hold: an order-of-magnitude-plus slowdown
    assert slowdown > 10
    # and disentangled mode covers every buggy channel the whole-program
    # mode finds (report counts differ: whole-program duplicates identities)
    fast_channels = {str(r.primitive.site) for r in result_fast.reports}
    slow_channels = {str(r.primitive.site) for r in result_slow.reports}
    assert slow_channels <= fast_channels
