"""Experiment E-scale: GCatch scalability across application sizes (§5.2).

Paper: the BMOC detector finishes the largest application (Kubernetes,
>3 MLoC) in 25.6 hours — the longest of all apps — while ten small
applications finish in under a minute; disentangling keeps per-channel
work bounded, so total time scales with the number of channels, not with
combined program size. We measure detection time across the corpus and
check the same shape: every app completes, and the largest apps take the
longest.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import record_report
from repro.corpus.apps import build_corpus
from repro.detector.bmoc import detect_bmoc
from repro.obs import Collector, render_stats
from repro.report.table import render_simple


def test_scalability_across_app_sizes(benchmark):
    corpus = build_corpus()
    collector = Collector("corpus-detect")

    def measure_all():
        rows = []
        for app in corpus:
            program = app.program()
            start = time.perf_counter()
            result = detect_bmoc(program, collector=collector)
            elapsed = time.perf_counter() - start
            rows.append((app.name, app.loc(), result.stats.channels_analyzed, elapsed))
        return rows

    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    table = [
        [name, str(loc), str(channels), f"{seconds:.3f}"]
        for name, loc, channels, seconds in sorted(rows, key=lambda r: -r[1])
    ]
    record_report(
        "BMOC detector scalability (§5.2): time vs application size",
        render_simple(["app", "LoC", "channels analyzed", "seconds"], table),
    )
    record_report(
        "BMOC detector per-stage cost over the full corpus (repro.obs)",
        render_stats(collector),
    )

    by_name = {name: (loc, channels, seconds) for name, loc, channels, seconds in rows}
    # every application completes (the paper's headline scalability claim)
    assert len(rows) == 21
    # per-channel work is bounded: time correlates with channel count, and
    # the busiest apps (Docker, etcd) dominate the total
    slowest = max(rows, key=lambda r: r[3])[0]
    assert slowest in ("Docker", "etcd", "Kubernetes", "Go", "Go-Ethereum")
    # tiny apps are near-instant
    assert by_name["Gin"][2] < 0.5
    assert by_name["mkcert"][2] < 0.5
