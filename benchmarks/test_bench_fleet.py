"""Experiment E-fleet: corpus-sweep scaling and resume overhead.

Sweeps a 49-unit corpus across 1, 2 and 3 **process-mode** daemons
(thread-mode daemons share the GIL, so only separate processes show
real CPU scaling) and measures dispatch throughput at each width.

The public 49-program bug set makes a poor *scaling* corpus: each case
detects in ~6 ms, so a sweep is driver-overhead bound and adding
daemons buys nothing. The benchmark corpus instead composes 24
real-template BMOC instances per unit (~50-60 ms of detector work
each), so the server-side cost dominates and the width sweep measures
what it claims to. Parity of the *bug-set* corpus against the serial
reference is covered by tests/test_fleet_resume.py; parity of this
corpus is asserted here at every width.

Daemon spawn cost is measured separately: it is a fixed per-width
price paid once per sweep (concurrently across the fleet), not a
per-unit cost.

Then the 3-daemon sweep re-runs against its own manifest to measure
resume overhead (every unit skips — the cost is fingerprinting +
replay).

Asserted floors (generous — CI containers are noisy):

* every fleet width is byte-identical to the serial reference;
* 3 daemons beat 1 daemon on dispatch wall clock — asserted only with
  >= 3 real cores behind the fleet (same gate as E-engine: a 1-core
  container cannot parallelise CPU-bound daemons, it can only time-slice
  them); everywhere, width 3 must stay within 1.5x of width 1, so fleet
  coordination overhead regressions still fail the bench;
* a full-skip resume costs < 50% of the 1-daemon dispatch time.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from benchmarks.conftest import record_report
from repro.corpus import templates
from repro.fleet import (
    FleetSupervisor,
    canonical_bytes,
    plan_corpus,
    run_sweep,
    serial_sweep,
)
from repro.report.table import render_simple

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_fleet.json")

WIDTHS = (1, 2, 3)
UNITS = 49
#: template-instance multiplier per unit (6 factories x 2 = 12 instances,
#: ~25-30 ms of detect work — heavy enough that daemons, not the driver,
#: are the bottleneck)
MULT = 2


def materialize_heavy_corpus(root: str) -> None:
    factories = [
        factory
        for group in templates.REAL_BMOCC_BY_STRATEGY.values()
        for factory in group
    ]
    for i in range(UNITS):
        body = "\n".join(
            factory(f"U{i:02d}x{j}").code
            for j, factory in enumerate(factories * MULT)
        )
        unit_dir = os.path.join(root, f"unit{i:02d}")
        os.makedirs(unit_dir, exist_ok=True)
        with open(os.path.join(unit_dir, "main.go"), "w") as handle:
            handle.write("package main\n" + body + "\n")


def test_fleet_scaling_and_resume_overhead():
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        corpus = os.path.join(tmp, "corpus")
        materialize_heavy_corpus(corpus)
        plan = plan_corpus(corpus)
        assert len(plan.units) == UNITS
        seed_path = plan.units[0].path

        serial_started = time.perf_counter()
        serial = serial_sweep(plan)
        serial_seconds = time.perf_counter() - serial_started
        assert serial.complete()
        reference = canonical_bytes(serial.report())

        by_width = {}
        for width in WIDTHS:
            spawn_started = time.perf_counter()
            supervisor = FleetSupervisor(width, seed_path, mode="process").start()
            spawn_seconds = time.perf_counter() - spawn_started
            try:
                result = run_sweep(
                    plan,
                    manifest_path=os.path.join(tmp, f"m{width}.jsonl"),
                    supervisor=supervisor,
                )
            finally:
                supervisor.stop()
            assert result.complete() and not result.failed
            assert canonical_bytes(result.report()) == reference
            tel = result.telemetry()
            by_width[width] = {
                "spawn_seconds": round(spawn_seconds, 4),
                "dispatch_seconds": round(tel["elapsed_seconds"], 4),
                "units_per_second": round(tel["units_per_second"], 2),
                "unit_p50_seconds": tel["unit_p50_seconds"],
                "unit_p95_seconds": tel["unit_p95_seconds"],
                "by_daemon": tel["by_daemon"],
            }

        # resume against the 3-daemon manifest: all units skip, so the
        # daemons never hear about them — measure with a live fleet anyway
        supervisor = FleetSupervisor(3, seed_path, mode="process").start()
        try:
            resume_started = time.perf_counter()
            resumed = run_sweep(
                plan,
                manifest_path=os.path.join(tmp, "m3.jsonl"),
                supervisor=supervisor,
            )
            resume_seconds = time.perf_counter() - resume_started
        finally:
            supervisor.stop()
        assert resumed.complete()
        assert resumed.telemetry()["skipped"] == UNITS
        assert canonical_bytes(resumed.report()) == reference

    # speedup needs real cores behind the daemons (same gate as E-engine);
    # the overhead ceiling holds everywhere — a fleet must never cost more
    # than 1.5x the single-daemon sweep just for being a fleet
    if (os.cpu_count() or 1) >= 3:
        assert by_width[3]["dispatch_seconds"] < by_width[1]["dispatch_seconds"]
    assert by_width[3]["dispatch_seconds"] < 1.5 * by_width[1]["dispatch_seconds"]
    assert resume_seconds < 0.5 * by_width[1]["dispatch_seconds"]

    rows = [
        ["serial (in-process)", f"{serial_seconds:.2f}",
         f"{UNITS / serial_seconds:.1f}", "-", "-"]
    ] + [
        [
            f"{width} daemon(s)",
            f"{by_width[width]['dispatch_seconds']:.2f}",
            f"{by_width[width]['units_per_second']:.1f}",
            f"{by_width[width]['spawn_seconds']:.2f}",
            "yes",
        ]
        for width in WIDTHS
    ] + [
        [f"resume (all {UNITS} skip)", f"{resume_seconds:.2f}", "-", "-", "yes"],
    ]
    body = render_simple(
        ["configuration", "dispatch s", "units/s", "spawn s", "byte-parity"],
        rows,
        title=f"{UNITS}-unit composed corpus sweep (process-mode daemons)",
    )
    record_report("E-fleet: sweep scaling and resume overhead", body)

    with open(ARTIFACT, "w") as handle:
        json.dump(
            {
                "experiment": "fleet-sweep-scaling",
                "mode": "process",
                "cpus": os.cpu_count(),
                "units": UNITS,
                "instances_per_unit": 6 * MULT,
                "serial_seconds": round(serial_seconds, 4),
                "by_daemons": {str(w): by_width[w] for w in WIDTHS},
                "resume_seconds": round(resume_seconds, 4),
                "resume_overhead_vs_one_daemon": round(
                    resume_seconds / by_width[1]["dispatch_seconds"], 4
                ),
                "byte_parity": True,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
