"""Experiment E-overhead: runtime overhead of GFix patches (§5.3).

Paper: across 116 patched bugs with unit tests, the average patch overhead
is 0.26%, the maximum 3.77%. We measure interpreter steps of the buggy
function's driver, original vs patched, across seeds. Seeds on which the
original bug actually fires are excluded (the paper measures the overhead
of passing unit-test executions); the patched version must never block.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import record_report
from repro.api import Project
from repro.corpus.snippets import FIGURE1
from repro.corpus import templates as T
from repro.report.table import render_simple

SEEDS = 20


def _mean_steps(project: Project, entry: str, skip_triggered: bool) -> float:
    totals = []
    for seed in range(SEEDS):
        outcome = project.run(entry=entry, seed=seed, max_steps=50_000)
        if outcome.blocked_forever:
            assert skip_triggered, f"{entry} leaked on seed {seed} after patching"
            continue
        totals.append(sum(outcome.goroutine_steps.values()))
    assert totals, f"no completing schedules for {entry}"
    return statistics.mean(totals)


def _overhead_cases():
    """(name, source, entry) for fixable bugs with runnable drivers."""
    cases = [("figure1-Exec", FIGURE1.source, "Exec")]
    for i, factory in enumerate((T.bmocc_s1_ctx, T.bmocc_s1_race, T.bmocc_s2_fatal)):
        instance = factory(f"Ovh{i}")
        entry = {
            "bmocc_s1_ctx": f"execAttachOvh{i}",
            "bmocc_s1_race": f"fetchPageOvh{i}",
            "bmocc_s2_fatal": f"TestDialerOvh{i}",
        }[instance.template]
        cases.append((instance.template, "package main\n" + instance.code, entry))
    return cases


def test_patch_overhead(benchmark):
    def measure_all():
        results = []
        for name, source, entry in _overhead_cases():
            project = Project.from_source(source, name + ".go")
            bugs = project.detect().bmoc.bmoc_channel_bugs()
            fix = project.fix(bugs[0])
            assert fix.fixed, name
            patched = project.apply_fix(fix)
            base = _mean_steps(project, entry, skip_triggered=True)
            after = _mean_steps(patched, entry, skip_triggered=False)
            results.append((name, fix.strategy, base, after))
        return results

    results = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    rows = []
    overheads = []
    for name, strategy, base, after in results:
        overhead = (after - base) / base * 100.0
        overheads.append(overhead)
        rows.append([name, strategy, f"{base:.1f}", f"{after:.1f}", f"{overhead:+.2f}%"])
    avg = statistics.mean(overheads)
    worst = max(overheads, key=abs)
    rows.append(["average", "", "", "", f"{avg:+.2f}% (paper: 0.26%)"])
    rows.append(["max", "", "", "", f"{worst:+.2f}% (paper: 3.77%)"])
    record_report(
        "Patch runtime overhead (§5.3)",
        render_simple(["bug", "strategy", "orig steps", "patched steps", "overhead"], rows),
    )

    # the shape: patches are effectively free
    assert abs(avg) < 8.0
    assert abs(worst) < 20.0
