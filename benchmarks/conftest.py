"""Benchmark-suite plumbing: collects each experiment's rendered report and
prints them all in the terminal summary, so `pytest benchmarks/
--benchmark-only | tee bench_output.txt` captures the reproduced tables."""

from __future__ import annotations

from typing import Dict, List

_REPORTS: List[tuple] = []


def record_report(title: str, body: str) -> None:
    _REPORTS.append((title, body))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper results")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {title} ====")
        for line in body.split("\n"):
            terminalreporter.write_line(line)
